"""Legacy installation shim.

Offline environments without the ``wheel`` package cannot use
``pip install -e .`` (PEP 517 metadata generation requires
``bdist_wheel``); ``python setup.py develop`` installs equivalently.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
