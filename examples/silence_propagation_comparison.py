"""Comparing silence-propagation strategies on a distributed deployment.

Run:  python examples/silence_propagation_comparison.py

Recreates the paper's Figure 5 scenario interactively: two constant-time
senders on one engine, a merger on another, a real link in between —
then runs the identical workload under non-deterministic scheduling and
under deterministic scheduling with each silence policy, printing the
latency ladder.  Lazy silence is the cautionary tale; curiosity keeps
determinism affordable; aggressive heartbeats trade background messages
for even less waiting.
"""

from repro import (
    AggressiveSilencePolicy,
    CuriositySilencePolicy,
    Deployment,
    EngineConfig,
    LazySilencePolicy,
    Placement,
    ms,
    us,
)
from repro.apps.fanin import build_fanin_app, request_factory
from repro.apps.wordcount import birth_of
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Normal
from repro.sim.jitter import NormalTickJitter

N_REQUESTS = 1000

POLICIES = {
    "non-deterministic": None,
    "det + lazy silence": LazySilencePolicy,
    "det + curiosity": CuriositySilencePolicy,
    "det + aggressive": lambda: AggressiveSilencePolicy(interval=us(200)),
}


def run(policy_name):
    policy_factory = POLICIES[policy_name]
    app = build_fanin_app(2)
    config = EngineConfig(
        mode="nondeterministic" if policy_factory is None else "deterministic",
        policy_factory=policy_factory or CuriositySilencePolicy,
        jitter=NormalTickJitter(),
    )
    deployment = Deployment(
        app,
        Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=config,
        default_link=LinkParams(delay=Normal(us(100), us(10))),
        control_delay=us(5),
        birth_of=birth_of,
        master_seed=42,
    )
    for i in (1, 2):
        deployment.add_poisson_producer(
            f"ext{i}", request_factory(),
            mean_interarrival=us(1250), max_messages=N_REQUESTS // 2,
        )
    deployment.run(until=ms(1.25 * N_REQUESTS * 4))
    return deployment.metrics


def main():
    print(f"{N_REQUESTS} web requests through 2 senders -> merger, "
          f"100us link\n")
    baseline = None
    header = (f"{'mode':>22}  {'mean':>9}  {'p95':>9}  {'overhead':>9}  "
              f"{'probes/msg':>10}  {'advances':>8}")
    print(header)
    print("-" * len(header))
    for name in POLICIES:
        metrics = run(name)
        mean = metrics.mean_latency_us()
        if baseline is None:
            baseline = mean
        overhead = (mean - baseline) / baseline * 100
        print(f"{name:>22}  {mean:>7.0f}us  "
              f"{metrics.latency_percentile_us(95):>7.0f}us  "
              f"{overhead:>8.1f}%  "
              f"{metrics.probes_per_message():>10.2f}  "
              f"{metrics.counter('silence_advances_sent'):>8}")
    print("\npaper's Figure 5 finding: curiosity stays within ~20% of the "
          "non-deterministic baseline;\nlazy silence costs multiples of it.")


if __name__ == "__main__":
    main()
