"""Time-aware components: user-supplied virtual times as deadlines.

Run:  python examples/deadline_scheduling.py

The paper's discussion anticipates "combining components with
automatically-generated estimators with time-aware components with
user-generated timestamps, in which timestamps represent arrival
deadlines."  This example builds exactly that: an Escalator service
schedules a follow-up check a fixed virtual interval after each alert
(via ``send_at``), and a Resolver merges the original alerts with the
deadline-stamped follow-ups — all deterministically, so the whole thing
remains recoverable by checkpoint-replay.
"""

from repro import (
    Component,
    Deployment,
    EngineConfig,
    FailureInjector,
    Placement,
    fixed_cost,
    ms,
    on_message,
    seconds,
    us,
)
from repro.runtime.app import Application
from repro.sim.jitter import NormalTickJitter

#: Follow-up fires this much virtual time after the alert.
FOLLOW_UP_AFTER = ms(5)


class Escalator(Component):
    """Forwards each alert and schedules a deadline-stamped follow-up."""

    def setup(self):
        self.open_alerts = self.state.map("open_alerts")
        self.alerts = self.output_port("alerts")
        self.followups = self.output_port("followups")

    @on_message("input", cost=fixed_cost(us(40)))
    def handle(self, payload):
        alert_id = payload["id"]
        self.open_alerts[alert_id] = payload["severity"]
        self.alerts.send({"id": alert_id, "severity": payload["severity"],
                          "birth": payload["birth"]})
        # The follow-up is *scheduled in virtual time*: it will be
        # processed at now + FOLLOW_UP_AFTER, deterministically.
        self.followups.send_at(
            {"id": alert_id, "birth": payload["birth"]},
            self.now() + us(40) + FOLLOW_UP_AFTER,
        )


class Resolver(Component):
    """Resolves alerts; a follow-up that finds its alert open escalates."""

    def setup(self):
        self.resolved = self.state.map("resolved")
        self.escalated = self.state.value("escalated", 0)
        self.out = self.output_port("out")

    @on_message("alert", cost=fixed_cost(us(60)))
    def on_alert(self, payload):
        # Low-severity alerts resolve immediately; high ones linger.
        if payload["severity"] < 7:
            self.resolved[payload["id"]] = True

    @on_message("followup", cost=fixed_cost(us(30)))
    def on_followup(self, payload):
        if not self.resolved.get(payload["id"]):
            self.escalated.set(self.escalated.get() + 1)
            self.out.send({"escalation": payload["id"],
                           "count": self.escalated.get(),
                           "birth": payload["birth"]})


def build(seed=0):
    app = Application("deadlines")
    app.add_component("escalator", Escalator)
    app.add_component("resolver", Resolver)
    app.external_input("alerts_in", "escalator", "input")
    app.wire("escalator", "alerts", "resolver", "alert")
    app.wire("escalator", "followups", "resolver", "followup")
    app.external_output("resolver", "out", "escalations")

    deployment = Deployment(
        app, Placement({"escalator": "E1", "resolver": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=ms(25)),
        control_delay=us(5),
        birth_of=lambda p: p.get("birth"),
        master_seed=seed,
    )

    def alerts(rng, index, now):
        return {"id": index, "severity": rng.randint(1, 10), "birth": now}

    deployment.add_poisson_producer("alerts_in", alerts,
                                    mean_interarrival=ms(2))
    return deployment


def escalations(deployment):
    return [(p["escalation"], p["count"])
            for p in deployment.consumer("escalations").payloads()]


def main():
    clean = build()
    clean.run(until=seconds(1))
    print(f"alerts escalated after their {FOLLOW_UP_AFTER / 1e6:.0f}ms "
          f"virtual deadline: {len(escalations(clean))}")

    # Deadlines survive failover like everything else.
    faulty = build()
    FailureInjector(faulty).kill_engine("E2", at=ms(400),
                                        detection_delay=ms(2))
    faulty.run(until=seconds(1))
    identical = escalations(faulty) == escalations(clean)
    print(f"after mid-run resolver crash + failover, identical "
          f"escalation stream: {identical}")
    assert identical


if __name__ == "__main__":
    main()
