"""Stream-processing pipeline surviving cascading trouble.

Run:  python examples/stream_pipeline_recovery.py

The motivating workload of the paper's introduction: a stateful
event-processing pipeline (parse -> enrich -> aggregate), each stage on
its own engine.  We hit it with a link outage, steady packet loss, AND
an engine crash — and show the windowed reports still come out exactly
as in an undisturbed run (module the re-deliveries the paper calls
output stutter).
"""

from repro import Deployment, EngineConfig, FailureInjector, Placement, ms, seconds, us
from repro.apps.pipeline import build_pipeline_app, reading_factory
from repro.apps.wordcount import birth_of
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter


def build(seed=0):
    app = build_pipeline_app(window=25)
    deployment = Deployment(
        app,
        Placement({"parser": "E1", "enricher": "E2", "aggregator": "E3"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=ms(40)),
        default_link=LinkParams(delay=Constant(us(60))),
        control_delay=us(5),
        birth_of=birth_of,
        master_seed=seed,
    )
    deployment.add_poisson_producer("readings", reading_factory(n_devices=12),
                                    mean_interarrival=us(700))
    return deployment


def reports(deployment):
    return [(p["report_no"], p["devices"], p["grand_total"])
            for p in deployment.consumer("sink").payloads()]


def main():
    clean = build()
    clean.run(until=seconds(2))
    clean_reports = reports(clean)
    print(f"failure-free: {len(clean_reports)} reports, "
          f"last = {clean_reports[-1]}")

    chaos = build()
    injector = FailureInjector(chaos)
    injector.set_link_impairment("E1", "E2", loss_prob=0.05, dup_prob=0.05)
    injector.link_outage("E2", "E3", start=ms(300), duration=ms(80))
    injector.kill_engine("E2", at=ms(900), detection_delay=ms(3))
    chaos.run(until=seconds(2))
    chaos_reports = reports(chaos)
    print(f"with loss+outage+crash: {len(chaos_reports)} reports, "
          f"last = {chaos_reports[-1] if chaos_reports else None}")
    print(f"stutter: {chaos.consumer('sink').stutter}, "
          f"replayed: {chaos.metrics.counter('messages_replayed')}, "
          f"duplicates discarded: "
          f"{chaos.metrics.counter('duplicates_discarded')}")

    identical = chaos_reports == clean_reports
    print(f"reports identical to failure-free run: {identical}")
    assert identical


if __name__ == "__main__":
    main()
