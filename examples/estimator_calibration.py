"""Estimator lifecycle: rough guess -> regression fit -> live re-tuning.

Run:  python examples/estimator_calibration.py

Walks the paper's estimator story end to end:

1. measure service times of Code Body 1 on a jittery machine (Figure 2),
2. fit tau = beta * iterations by least squares and inspect R-squared
   and the residual shape,
3. deploy with a deliberately bad coefficient and watch the drift
   monitor fire a determinism fault that installs the fitted one, with
   the switchover virtual time recorded in the stable fault log,
4. compare latency before and after the re-calibration.
"""

from repro import Deployment, EngineConfig, LinearEstimator, ms, seconds, us
from repro.apps.wordcount import (
    birth_of,
    build_wordcount_app,
    make_merger_class,
    make_sender_class,
    sentence_factory,
)
from repro.core.calibration import LinearRegressionCalibrator
from repro.runtime.placement import single_engine_placement
from repro.sim.jitter import NormalTickJitter
from repro.sim.rng import RngRegistry
from repro.sim.trace import synthesize_service_trace
from repro.vt.time import TICKS_PER_US


def step1_measure_and_fit():
    print("== step 1-2: measure 10,000 executions, fit by regression ==")
    rng = RngRegistry(0).stream("calibration-example")
    trace = synthesize_service_trace(rng, n=10_000)
    calibrator = LinearRegressionCalibrator(["loop"], fit_intercept=False)
    for iterations, duration in trace.samples:
        calibrator.add_sample({"loop": iterations}, duration)
    fit = calibrator.fit()
    print(f"fitted: tau = {fit.coefficient('loop') / TICKS_PER_US:.3f}us "
          f"* iterations   (paper: 61.827us)")
    print(f"R^2 = {fit.r_squared:.4f} (paper: 0.9154), residual skew = "
          f"{fit.residual_skewness:.1f} (right-skewed), "
          f"residual/iteration corr = {fit.residual_feature_corr[0]:.4f}")
    return fit


def step3_live_retuning():
    print("\n== step 3-4: deploy with a bad coefficient, let TART re-tune ==")
    bad = make_sender_class(
        per_iteration_true=us(60),
        estimator=LinearEstimator({"loop": us(95)}),  # 58% over-estimate
    )
    app = build_wordcount_app(2, bad, make_merger_class())
    deployment = Deployment(
        app, single_engine_placement(app.component_names()),
        engine_config=EngineConfig(
            jitter=NormalTickJitter(),
            calibrate=True, drift_window=100,
            recalibrate_cooldown_samples=200,
        ),
        control_delay=us(10), birth_of=birth_of,
    )
    factory = sentence_factory()
    for i in (1, 2):
        deployment.add_poisson_producer(f"ext{i}", factory,
                                        mean_interarrival=ms(1))
    deployment.run(until=seconds(6))

    latencies = deployment.metrics.latencies
    half = len(latencies) // 2
    first = sum(latencies[:half]) / half / TICKS_PER_US
    second = sum(latencies[half:]) / (len(latencies) - half) / TICKS_PER_US
    faults = deployment.fault_logs["engine0"].records()
    print(f"determinism faults logged: {len(faults)}")
    for record in faults:
        coeffs = dict(tuple(c) for c in record.coefficients)
        print(f"  {record.component}.{record.handler}: new coefficients "
              f"{ {k: v / 1000 for k, v in coeffs.items()} } us/unit, "
              f"effective at vt {record.effective_vt / 1_000_000:.1f}ms")
    print(f"mean latency, first half : {first:.0f}us")
    print(f"mean latency, second half: {second:.0f}us "
          f"({(first - second) / first * 100:.1f}% better after re-tuning)")


def main():
    step1_measure_and_fit()
    step3_live_retuning()


if __name__ == "__main__":
    main()
