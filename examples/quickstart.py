"""Quickstart: write two components, deploy them, survive a crash.

Run:  python examples/quickstart.py

Builds the smallest interesting TART application — a stateful
word-counter feeding an aggregator — deploys each component on its own
engine with a passive replica, pushes a workload through, then kills an
engine mid-run and shows the failover producing the exact same output a
failure-free run would.
"""

from repro import (
    Component,
    Deployment,
    EngineConfig,
    FailureInjector,
    LinearCost,
    Placement,
    fixed_cost,
    ms,
    on_message,
    seconds,
    us,
)
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.runtime.app import Application


class WordCounter(Component):
    """Counts word occurrences; cost is linear in sentence length."""

    def setup(self):
        self.counts = self.state.map("counts")          # checkpointed
        self.out = self.output_port("out")

    @on_message("sentences", cost=LinearCost(
        {"word": us(50)}, features=lambda p: {"word": len(p["words"])}))
    def count(self, payload):
        total = 0
        for word in payload["words"]:
            seen = self.counts.get(word, 0)
            self.counts[word] = seen + 1
            total += seen
        self.out.send({"repeats": total, "birth": payload["birth"]})


class Aggregator(Component):
    """Keeps a running total of repeat counts."""

    def setup(self):
        self.total = self.state.value("total", 0)
        self.out = self.output_port("out")

    @on_message("input", cost=fixed_cost(us(120)))
    def add(self, payload):
        self.total.set(self.total.get() + payload["repeats"])
        self.out.send({"running_total": self.total.get(),
                       "birth": payload["birth"]})


def build(seed=0):
    app = Application("quickstart")
    app.add_component("counter", WordCounter)
    app.add_component("aggregator", Aggregator)
    app.external_input("sentences", "counter", "sentences")
    app.wire("counter", "out", "aggregator", "input")
    app.external_output("aggregator", "out", "sink")

    deployment = Deployment(
        app,
        Placement({"counter": "E1", "aggregator": "E2"}),
        engine_config=EngineConfig(
            jitter=NormalTickJitter(),          # imperfect hardware
            checkpoint_interval=ms(25),         # soft checkpoints -> replica
        ),
        default_link=LinkParams(delay=Constant(us(80))),
        control_delay=us(5),
        birth_of=lambda p: p.get("birth"),
        master_seed=seed,
    )

    vocabulary = ["tart", "virtual", "time", "replay", "silence"]

    def sentences(rng, index, now):
        words = [vocabulary[rng.randrange(len(vocabulary))]
                 for _ in range(rng.randint(1, 6))]
        return {"words": words, "birth": now}

    deployment.add_poisson_producer("sentences", sentences,
                                    mean_interarrival=ms(1))
    return deployment


def totals(deployment):
    return [p["running_total"]
            for p in deployment.consumer("sink").payloads()]


def main():
    print("== failure-free run ==")
    clean = build()
    clean.run(until=seconds(1))
    clean_totals = totals(clean)
    print(f"outputs: {len(clean_totals)}, final total {clean_totals[-1]}, "
          f"mean latency {clean.metrics.mean_latency_us():.0f}us")

    print("\n== same workload, but E2 crashes at t=400ms ==")
    faulty = build()
    FailureInjector(faulty).kill_engine("E2", at=ms(400),
                                        detection_delay=ms(2))
    faulty.run(until=seconds(1))
    faulty_totals = totals(faulty)
    print(f"outputs: {len(faulty_totals)}, final total {faulty_totals[-1]}, "
          f"stutter (re-deliveries): {faulty.consumer('sink').stutter}, "
          f"failovers: {faulty.recovery.failover_count()}")

    identical = faulty_totals == clean_totals
    print(f"\neffective output identical to failure-free run: {identical}")
    assert identical, "determinism violated!"


if __name__ == "__main__":
    main()
