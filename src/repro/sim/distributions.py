"""Sampling distributions used by workload generators and jitter models.

All distributions sample from an explicitly supplied :class:`random.Random`
stream (see :mod:`repro.sim.rng`), never from the global RNG, so every
experiment is reproducible and modes can share identical workloads.

Distributions that model durations return **integer ticks** and are
truncated at zero where the mathematical support includes negatives.
"""

from __future__ import annotations

import bisect
import math
import random
from abc import ABC, abstractmethod
from typing import List, Sequence


class Distribution(ABC):
    """A distribution over integer tick durations."""

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw one sample using ``rng``."""

    @abstractmethod
    def mean(self) -> float:
        """Theoretical mean (used for utilisation accounting in tests)."""


class Constant(Distribution):
    """Degenerate distribution: always ``value`` ticks."""

    def __init__(self, value: int):
        if value < 0:
            raise ValueError("constant duration must be non-negative")
        self.value = int(value)

    def sample(self, rng: random.Random) -> int:
        return self.value

    def mean(self) -> float:
        return float(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Uniform(Distribution):
    """Continuous uniform over ``[low, high]`` ticks."""

    def __init__(self, low: int, high: int):
        if not 0 <= low <= high:
            raise ValueError("require 0 <= low <= high")
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: random.Random) -> int:
        return int(round(rng.uniform(self.low, self.high)))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class UniformInt(Distribution):
    """Discrete uniform over the integers ``low..high`` inclusive.

    This is the paper's "uniform random distribution of from 1 to 19
    iterations" — used for iteration counts rather than raw durations.
    """

    def __init__(self, low: int, high: int):
        if low > high:
            raise ValueError("require low <= high")
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def variance(self) -> float:
        n = self.high - self.low + 1
        return (n * n - 1) / 12.0

    def __repr__(self) -> str:
        return f"UniformInt({self.low}, {self.high})"


class Exponential(Distribution):
    """Exponential with the given ``mean`` in ticks (Poisson inter-arrivals)."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError("mean must be positive")
        self._mean = float(mean)

    def sample(self, rng: random.Random) -> int:
        return max(0, int(round(rng.expovariate(1.0 / self._mean))))

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class Normal(Distribution):
    """Normal(mu, sigma) truncated at zero.

    Used for the paper's Figure 3 jitter model: "a normal distribution
    with mean of one tick and a standard deviation of 0.1 ticks" applied
    per virtual tick of progress.
    """

    def __init__(self, mu: float, sigma: float):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: random.Random) -> int:
        return max(0, int(round(rng.gauss(self.mu, self.sigma))))

    def mean(self) -> float:
        # Truncation bias is negligible for the parameters we use
        # (mu >> sigma); report the untruncated mean.
        return self.mu

    def __repr__(self) -> str:
        return f"Normal({self.mu}, {self.sigma})"


class LogNormal(Distribution):
    """Log-normal parameterised by the *target* mean and sigma of the log.

    ``mean`` is the desired arithmetic mean of the samples; ``sigma`` the
    standard deviation of the underlying normal.  Right-skewed — the shape
    the paper observed for real execution-time residuals.
    """

    def __init__(self, mean: float, sigma: float):
        if mean <= 0 or sigma < 0:
            raise ValueError("mean must be positive and sigma non-negative")
        self.target_mean = float(mean)
        self.sigma = float(sigma)
        # Solve E[X] = exp(mu + sigma^2/2) = mean for mu.
        self.mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random) -> int:
        return max(0, int(round(rng.lognormvariate(self.mu, self.sigma))))

    def mean(self) -> float:
        return self.target_mean

    def __repr__(self) -> str:
        return f"LogNormal(mean={self.target_mean}, sigma={self.sigma})"


class Empirical(Distribution):
    """Samples uniformly from a list of observed values.

    Backs the paper's Figure 4 methodology: "We imported 10000 of these
    execution time measurements into our simulation".
    """

    def __init__(self, samples: Sequence[int]):
        if not samples:
            raise ValueError("empirical distribution needs at least one sample")
        self._samples: List[int] = [int(s) for s in samples]
        self._mean = sum(self._samples) / len(self._samples)

    def sample(self, rng: random.Random) -> int:
        return self._samples[rng.randrange(len(self._samples))]

    def mean(self) -> float:
        return self._mean

    def quantile(self, q: float) -> int:
        """The ``q``-quantile of the sample set (0 <= q <= 1)."""
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, max(0, int(q * (len(ordered) - 1))))
        return ordered[idx]

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return f"Empirical(n={len(self._samples)}, mean={self._mean:.1f})"


class Shifted(Distribution):
    """A distribution shifted right by a constant offset (ticks)."""

    def __init__(self, base: Distribution, offset: int):
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.base = base
        self.offset = int(offset)

    def sample(self, rng: random.Random) -> int:
        return self.base.sample(rng) + self.offset

    def mean(self) -> float:
        return self.base.mean() + self.offset

    def __repr__(self) -> str:
        return f"Shifted({self.base!r}, +{self.offset})"


class Mixture(Distribution):
    """Finite mixture of distributions with given weights.

    Used by the synthetic service-time trace to add the heavy right tail
    (occasional GC pause / OS interrupt) on top of the lognormal body.
    """

    def __init__(self, parts: Sequence[Distribution], weights: Sequence[float]):
        if len(parts) != len(weights) or not parts:
            raise ValueError("parts and weights must be equal-length and non-empty")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        total = float(sum(weights))
        self.parts = list(parts)
        self._cum: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self._weights = [w / total for w in weights]

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        idx = bisect.bisect_left(self._cum, u)
        idx = min(idx, len(self.parts) - 1)
        return self.parts[idx].sample(rng)

    def mean(self) -> float:
        return sum(w * p.mean() for w, p in zip(self._weights, self.parts))

    def __repr__(self) -> str:
        return f"Mixture({self.parts!r})"
