"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-heap simulator with a few properties that
the TART reproduction leans on heavily:

* **Total determinism.**  Events are ordered by ``(time, sequence)`` where
  the sequence number is assigned at scheduling time.  Two runs that
  schedule the same events in the same order execute identically, which is
  what lets the test suite assert *exact* replay equality for the
  deterministic runtime.
* **Integer time.**  Time is measured in integer ticks (1 tick = 1 ns, as
  in the paper), so there is no floating-point drift between runs.
* **Cancellable events.**  Schedulers need to retract timers (e.g. a
  curiosity probe made redundant by an arriving silence advance); events
  carry a cancelled flag rather than being removed from the heap.

The kernel deliberately has no notion of processes or channels; those are
built on top (see :mod:`repro.runtime`).  Keeping the kernel minimal makes
its determinism easy to audit.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError

#: Number of simulated ticks per microsecond.  The paper uses 1 tick = 1 ns.
TICKS_PER_US = 1_000

#: Number of simulated ticks per millisecond.
TICKS_PER_MS = 1_000_000

#: Number of simulated ticks per second.
TICKS_PER_S = 1_000_000_000


def us(n: float) -> int:
    """Convert microseconds to integer ticks."""
    return int(round(n * TICKS_PER_US))


def ms(n: float) -> int:
    """Convert milliseconds to integer ticks."""
    return int(round(n * TICKS_PER_MS))


def seconds(n: float) -> int:
    """Convert seconds to integer ticks."""
    return int(round(n * TICKS_PER_S))


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)``; ``seq`` is a kernel-wide counter
    assigned when the event is scheduled, making the execution order a
    deterministic function of the scheduling order.
    """

    __slots__ = ("time", "seq", "fn", "label", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None], label: str):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} {self.label}{state}>"


class Simulator:
    """Deterministic event-heap simulator.

    Parameters
    ----------
    trace_hook:
        Optional callable invoked as ``trace_hook(time, label)`` before
        each event fires; used by tests to record execution order.
    """

    def __init__(self, trace_hook: Optional[Callable[[int, str], None]] = None):
        self._now = 0
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._trace_hook = trace_hook
        self._event_count = 0
        #: Arbitrary per-simulation metadata; experiments stash config here.
        self.context: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostic)."""
        return self._event_count

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` at absolute ``time``.

        ``time`` must not be in the past.  Returns the :class:`Event`,
        which may later be cancelled.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event '{label}' at {time}, now is {self._now}"
            )
        ev = Event(int(time), self._seq, fn, label)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def after(self, delay: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` after a non-negative ``delay`` in ticks."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event '{label}'")
        return self.at(self._now + int(delay), fn, label)

    def call_soon(self, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` at the current time, after pending same-time events."""
        return self.at(self._now, fn, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``False`` when the heap is exhausted.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap time went backwards")
            self._now = ev.time
            if self._trace_hook is not None:
                self._trace_hook(ev.time, ev.label)
            self._event_count += 1
            ev.fn()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap empties, ``until`` is reached, or ``max_events``.

        When ``until`` is given, all events strictly before it are
        executed and the clock is advanced to ``until``; events at or
        after ``until`` stay queued so the simulation can be resumed.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time >= until:
                    break
                self.step()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def _peek(self) -> Optional[Event]:
        """Return the next live event without executing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def next_event_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the heap is empty."""
        ev = self._peek()
        return ev.time if ev is not None else None


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Used by schedulers for timeout-style behaviour (e.g. aggressive
    silence heartbeats): ``restart`` cancels any pending firing and
    schedules a new one.
    """

    def __init__(self, sim: Simulator, fn: Callable[[], None], label: str = "timer"):
        self._sim = sim
        self._fn = fn
        self._label = label
        self._event: Optional[Event] = None

    def restart(self, delay: int) -> None:
        """(Re)arm the timer to fire ``delay`` ticks from now."""
        self.cancel()
        self._event = self._sim.after(delay, self._fire, self._label)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending firing."""
        return self._event is not None and not self._event.cancelled

    def _fire(self) -> None:
        self._event = None
        self._fn()


class Processor:
    """A single logical processor that serves work items one at a time.

    The paper's simulation study gives each component thread a dedicated
    processor; this class models exactly that: non-preemptive, FIFO by
    request order at equal times (deterministic via the kernel's event
    sequencing).  ``busy_until`` exposes the earliest time new work could
    start, which silence policies use to answer curiosity probes.
    """

    def __init__(self, sim: Simulator, name: str):
        self._sim = sim
        self.name = name
        self._busy_until = 0
        self._busy = False
        #: Total ticks spent executing work (utilisation accounting).
        self.busy_ticks = 0

    @property
    def busy(self) -> bool:
        """Whether the processor is currently executing a work item."""
        return self._busy

    @property
    def busy_until(self) -> int:
        """Simulated time at which the current work item completes."""
        return self._busy_until

    def execute(self, duration: int, on_done: Callable[[], None], label: str = "work") -> None:
        """Occupy the processor for ``duration`` ticks, then call ``on_done``.

        The processor must be idle; schedulers are responsible for
        queueing.  This keeps queue policy (the interesting part) out of
        the substrate.
        """
        if self._busy:
            raise SimulationError(f"processor {self.name} is busy")
        if duration < 0:
            raise SimulationError(f"negative work duration {duration}")
        self._busy = True
        self._busy_until = self._sim.now + duration
        self.busy_ticks += duration

        def _done() -> None:
            self._busy = False
            on_done()

        self._sim.after(duration, _done, f"{self.name}:{label}")

    def utilization(self) -> float:
        """Fraction of elapsed simulated time spent busy."""
        if self._sim.now == 0:
            return 0.0
        return self.busy_ticks / self._sim.now


class ProcessorPool:
    """``n_cpus`` processors shared by several logical threads.

    Models the paper's II.G.2 setting — "thread scheduling (if threads
    compete for processors)" — where component threads outnumber CPUs.
    Scheduling is non-preemptive: when a CPU frees, the highest-priority
    waiting thread runs (ties broken by arrival order, so execution is a
    deterministic function of the priority decisions).

    ``priority_fn(thread_name) -> float`` is consulted at every pick, so
    priorities may be *dynamic* — e.g. the lag between real time and a
    component's virtual time, the paper's suggested remedy for threads
    that run consistently behind their estimates.  Priorities only move
    work around in real time; virtual-time outcomes are untouched.
    """

    def __init__(self, sim: Simulator, name: str, n_cpus: int,
                 priority_fn: Optional[Callable[[str], float]] = None):
        if n_cpus < 1:
            raise SimulationError("pool needs at least one cpu")
        self._sim = sim
        self.name = name
        self.n_cpus = n_cpus
        self._priority_fn = priority_fn or (lambda _thread: 0.0)
        self._running = 0
        self._seq = 0
        #: Waiting jobs: (thread, seq, duration, on_done).
        self._waiting: List[tuple] = []
        self._ports: Dict[str, "PooledProcessor"] = {}
        #: Total ticks all CPUs spent executing (utilization accounting).
        self.busy_ticks = 0
        #: Total ticks jobs spent waiting for a CPU (contention metric).
        self.queued_ticks = 0

    def port(self, thread_name: str) -> "PooledProcessor":
        """The processor facade for one logical thread."""
        port = self._ports.get(thread_name)
        if port is None:
            port = PooledProcessor(self, thread_name)
            self._ports[thread_name] = port
        return port

    def set_priority_fn(self, fn: Callable[[str], float]) -> None:
        """Replace the priority function (engines install theirs late)."""
        self._priority_fn = fn

    # -- internal ---------------------------------------------------------
    def _submit(self, thread: str, duration: int, on_done) -> None:
        self._seq += 1
        self._waiting.append((thread, self._seq, duration, on_done,
                              self._sim.now))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._running < self.n_cpus and self._waiting:
            best_idx = 0
            best_key = None
            for idx, (thread, seq, _d, _cb, _t) in enumerate(self._waiting):
                key = (-self._priority_fn(thread), seq)
                if best_key is None or key < best_key:
                    best_key = key
                    best_idx = idx
            thread, seq, duration, on_done, queued_at = \
                self._waiting.pop(best_idx)
            self.queued_ticks += self._sim.now - queued_at
            self._running += 1
            self.busy_ticks += duration

            def _finish(thread=thread, on_done=on_done):
                self._running -= 1
                self._ports[thread]._job_done()
                on_done()
                self._dispatch()

            self._sim.after(duration, _finish, f"{self.name}:{thread}")

    def utilization(self) -> float:
        """Mean per-CPU utilization so far."""
        if self._sim.now == 0:
            return 0.0
        return self.busy_ticks / (self._sim.now * self.n_cpus)


class PooledProcessor:
    """Per-thread facade over a :class:`ProcessorPool`.

    Implements the same ``busy`` / ``execute`` contract as
    :class:`Processor`: one outstanding work item per thread, but the
    item may have to wait for a free CPU.
    """

    def __init__(self, pool: ProcessorPool, thread_name: str):
        self._pool = pool
        self.name = thread_name
        self._busy = False

    @property
    def busy(self) -> bool:
        """Whether this thread has work queued or running."""
        return self._busy

    def execute(self, duration: int, on_done: Callable[[], None],
                label: str = "work") -> None:
        """Submit one work item; ``on_done`` fires after it has both
        acquired a CPU and run for ``duration`` ticks."""
        if self._busy:
            raise SimulationError(f"thread {self.name} already has work")
        if duration < 0:
            raise SimulationError(f"negative work duration {duration}")
        self._busy = True
        self._pool._submit(self.name, duration, on_done)

    def _job_done(self) -> None:
        self._busy = False
