"""Discrete-event simulation substrate.

Everything in this reproduction — including the "real two-machine
distributed implementation" of the paper's Figure 5 — executes on this
kernel.  Simulated time plays the role of the paper's *real* time;
TART's *virtual* time lives one layer above, in :mod:`repro.vt`.

Public surface:

* :class:`~repro.sim.kernel.Simulator` — the event loop.
* :class:`~repro.sim.rng.RngRegistry` — named deterministic RNG streams.
* :mod:`~repro.sim.distributions` — sampling distributions.
* :mod:`~repro.sim.jitter` — execution-time jitter models.
* :mod:`~repro.sim.trace` — synthetic measured-service-time traces.
"""

from repro.sim.kernel import Event, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.distributions import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Normal,
    Uniform,
    UniformInt,
)
from repro.sim.jitter import JitterModel, NoJitter, NormalTickJitter, TraceJitter
from repro.sim.trace import ServiceTimeTrace, synthesize_service_trace

__all__ = [
    "Constant",
    "Distribution",
    "Empirical",
    "Event",
    "Exponential",
    "JitterModel",
    "LogNormal",
    "NoJitter",
    "Normal",
    "NormalTickJitter",
    "RngRegistry",
    "ServiceTimeTrace",
    "Simulator",
    "TraceJitter",
    "Uniform",
    "UniformInt",
    "synthesize_service_trace",
]
