"""Execution-time jitter models.

A component handler has a *nominal* cost (a deterministic function of its
input, e.g. 60 µs per loop iteration) and an *actual* cost: what the
hardware, OS and language runtime really take.  TART's determinism rests
on virtual time being computed from the nominal cost, while real scheduling
experiences the actual cost.  A :class:`JitterModel` maps nominal cost to
actual cost.

Two models mirror the paper's two simulation studies:

* :class:`NormalTickJitter` — section III.A: "the program progress[es]
  each virtual tick by an amount of real time governed by a normal
  distribution with mean of one tick and a standard deviation of 0.1
  ticks".  The paper calls this "an unrealistic approximation".
* :class:`TraceJitter` — section III.B: actual costs drawn from a trace of
  measured executions with the same iteration count ("a random
  measurement from our imported set having the same iteration count").
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from repro.errors import SimulationError


class JitterModel(ABC):
    """Maps a nominal duration (ticks) to an actual duration (ticks)."""

    @abstractmethod
    def actual_duration(
        self,
        rng: random.Random,
        nominal: int,
        features: Optional[Mapping[str, int]] = None,
    ) -> int:
        """Sample the real execution time for work of ``nominal`` cost.

        ``features`` carries the cost-model feature vector (e.g. loop
        iteration counts) for models that condition on it.
        """


class NoJitter(JitterModel):
    """Actual time equals nominal time — an ideal machine."""

    def actual_duration(self, rng, nominal, features=None) -> int:
        return int(nominal)

    def __repr__(self) -> str:
        return "NoJitter()"


class NormalTickJitter(JitterModel):
    """Per-tick normal jitter (paper Figure 3 model).

    Each virtual tick of progress takes N(``mean_per_tick``,
    ``sd_per_tick``) real ticks.  Summing ``nominal`` independent draws
    gives exactly N(nominal * mean, sd * sqrt(nominal)), which we sample
    directly instead of drawing per tick.

    ``correlated=True`` switches to a single multiplicative draw per work
    item (actual = nominal * N(mean, sd)), modelling slow phases that
    persist for a whole message (CPU frequency, cache state).  Both
    readings of the paper's sentence are available; experiments state
    which they use.
    """

    def __init__(self, mean_per_tick: float = 1.0, sd_per_tick: float = 0.1,
                 correlated: bool = False):
        if mean_per_tick <= 0 or sd_per_tick < 0:
            raise SimulationError("invalid jitter parameters")
        self.mean_per_tick = float(mean_per_tick)
        self.sd_per_tick = float(sd_per_tick)
        self.correlated = bool(correlated)

    def actual_duration(self, rng, nominal, features=None) -> int:
        nominal = int(nominal)
        if nominal <= 0:
            return 0
        if self.correlated:
            factor = rng.gauss(self.mean_per_tick, self.sd_per_tick)
            return max(0, int(round(nominal * factor)))
        mu = nominal * self.mean_per_tick
        sigma = self.sd_per_tick * math.sqrt(nominal)
        return max(0, int(round(rng.gauss(mu, sigma))))

    def __repr__(self) -> str:
        kind = "correlated" if self.correlated else "per-tick"
        return (f"NormalTickJitter(mean={self.mean_per_tick}, "
                f"sd={self.sd_per_tick}, {kind})")


class TraceJitter(JitterModel):
    """Actual times replayed from measured (feature -> duration) samples.

    Built from a :class:`repro.sim.trace.ServiceTimeTrace`: for a work
    item whose feature vector contains ``key`` (default ``"loop"``, the
    iteration count), a measurement with the *same* count is drawn
    uniformly — exactly the paper's Figure 4 methodology.
    """

    def __init__(self, buckets: Dict[int, list], key: str = "loop"):
        if not buckets:
            raise SimulationError("trace jitter needs at least one bucket")
        self._buckets = {int(k): list(v) for k, v in buckets.items()}
        for k, v in self._buckets.items():
            if not v:
                raise SimulationError(f"empty trace bucket for feature {k}")
        self.key = key

    def actual_duration(self, rng, nominal, features=None) -> int:
        if not features or self.key not in features:
            # Work without the keyed feature (e.g. the merger's fixed
            # 400 µs service) is outside the measured trace; it runs at
            # its nominal cost.
            return int(nominal)
        count = int(features[self.key])
        bucket = self._buckets.get(count)
        if bucket is None:
            # Extrapolate: scale the nearest bucket linearly in the count.
            nearest = min(self._buckets, key=lambda k: abs(k - count))
            base = self._buckets[nearest][rng.randrange(len(self._buckets[nearest]))]
            if nearest == 0:
                return int(base)
            return max(0, int(round(base * count / nearest)))
        return int(bucket[rng.randrange(len(bucket))])

    def bucket_counts(self) -> Dict[int, int]:
        """Number of samples per feature value (diagnostic)."""
        return {k: len(v) for k, v in sorted(self._buckets.items())}

    def __repr__(self) -> str:
        return f"TraceJitter(buckets={len(self._buckets)}, key={self.key!r})"
