"""Synthetic measured-service-time traces.

The paper's Figure 2 plots 10,000 measured executions of Code Body 1 on a
ThinkPad T42: service time is nearly linear in the loop iteration count
(fitted slope 61.827 µs/iteration, R² = 0.9154), the residual distribution
is "highly right-skewed", and residuals are almost uncorrelated with the
iteration count.  We do not have that laptop, so this module *synthesises*
a trace with the same statistical signature:

* service time = slope · iterations + skewed zero-mean noise,
* noise body: shifted log-normal (models allocator / cache variation),
* rare heavy outliers (models GC pauses and OS interrupts),
* everything floored at a physically sensible minimum.

The synthesised trace drives the Figure 2 regression experiment and, via
:class:`repro.sim.jitter.TraceJitter`, the Figure 4 realistic-jitter
study.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.distributions import UniformInt
from repro.sim.kernel import us


@dataclass
class ServiceTimeTrace:
    """A set of (iteration_count, service_time_ticks) measurements."""

    samples: List[Tuple[int, int]] = field(default_factory=list)

    def add(self, iterations: int, duration: int) -> None:
        """Record one measurement."""
        self.samples.append((int(iterations), int(duration)))

    def __len__(self) -> int:
        return len(self.samples)

    def buckets(self) -> Dict[int, List[int]]:
        """Group durations by iteration count (for :class:`TraceJitter`)."""
        out: Dict[int, List[int]] = {}
        for k, d in self.samples:
            out.setdefault(k, []).append(d)
        return out

    def iteration_counts(self) -> List[int]:
        """The iteration count of every sample, in order."""
        return [k for k, _ in self.samples]

    def durations(self) -> List[int]:
        """The duration of every sample, in order."""
        return [d for _, d in self.samples]

    def mean_duration(self) -> float:
        """Arithmetic mean service time in ticks."""
        if not self.samples:
            return 0.0
        return sum(d for _, d in self.samples) / len(self.samples)


def synthesize_service_trace(
    rng: random.Random,
    n: int = 10_000,
    slope_ticks: int = us(61.827),
    iterations_low: int = 1,
    iterations_high: int = 19,
    noise_sigma: float = 1.0,
    noise_sd_ticks: int = us(92),
    outlier_prob: float = 0.001,
    outlier_low: int = us(500),
    outlier_high: int = us(2_000),
    floor_ticks: int = us(2),
) -> ServiceTimeTrace:
    """Generate a trace matching Figure 2's statistical signature.

    Parameters
    ----------
    rng:
        Source of randomness (a named stream from :class:`RngRegistry`).
    n:
        Number of measurements (the paper took 10,000).
    slope_ticks:
        True per-iteration cost in ticks; the regression should recover
        approximately this value.
    iterations_low, iterations_high:
        Discrete-uniform support of the iteration count.
    noise_sigma:
        Sigma of the log-normal noise body (controls skewness).
    noise_sd_ticks:
        Target standard deviation of the noise body; with the default
        slope and U(1,19) iterations this puts R² near the paper's 0.915.
    outlier_prob, outlier_low, outlier_high:
        Rare long-pause mixture component (GC / interrupts).
    floor_ticks:
        Minimum possible service time.
    """
    import math

    if n <= 0:
        raise ValueError("n must be positive")
    iters = UniformInt(iterations_low, iterations_high)

    # Log-normal with arithmetic mean m and log-sigma s has
    # sd = m * sqrt(exp(s^2) - 1); solve for m given the target sd.
    spread = math.sqrt(math.exp(noise_sigma**2) - 1.0)
    body_mean = noise_sd_ticks / spread
    body_mu = math.log(body_mean) - noise_sigma**2 / 2.0
    outlier_mean = (outlier_low + outlier_high) / 2.0
    # Total noise mean, subtracted so that noise is (nearly) zero-mean and
    # the through-origin regression recovers the true slope.
    noise_mean = (1.0 - outlier_prob) * body_mean + outlier_prob * outlier_mean

    trace = ServiceTimeTrace()
    for _ in range(n):
        k = iters.sample(rng)
        noise = rng.lognormvariate(body_mu, noise_sigma)
        if rng.random() < outlier_prob:
            noise = rng.uniform(outlier_low, outlier_high)
        duration = slope_ticks * k + noise - noise_mean
        trace.add(k, max(floor_ticks, int(round(duration))))
    return trace
