"""Named deterministic random-number streams.

The evaluation compares scheduling modes (non-deterministic, deterministic,
prescient) on *identical workloads*.  To make that comparison honest, every
source of randomness draws from its own named stream, seeded from a master
seed and the stream name — so changing how one part of the system consumes
randomness (e.g. the scheduler) never perturbs another part (e.g. the
arrival process).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of independent, reproducible random streams.

    Each distinct ``name`` maps to a :class:`random.Random` seeded by
    ``sha256(master_seed || name)``.  Requesting the same name twice
    returns the same stream object.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, suffix: str) -> "RngRegistry":
        """Derive a registry whose streams are independent of this one.

        Useful for running several trials of an experiment: each trial
        forks with its trial index so trials differ but remain
        reproducible.
        """
        digest = hashlib.sha256(
            f"{self.master_seed}/fork:{suffix}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def names(self):
        """Names of streams created so far (diagnostic)."""
        return sorted(self._streams)
