"""TART — Time-Aware Run-Time.

A from-scratch Python reproduction of *"Deterministic Replay for
Transparent Recovery in Component-Oriented Middleware"* (Strom, Dorai,
Feng, Zheng — ICDCS 2009): stateful components communicating by one-way
sends and two-way calls are transparently augmented with virtual times
so they execute deterministically, making checkpoint + replay a complete
recovery story with a single passive replica.

Quick tour:

* write components: subclass :class:`~repro.core.component.Component`,
  declare state/ports in ``setup()``, register handlers with
  :func:`~repro.core.component.on_message` /
  :func:`~repro.core.component.on_call` and a cost model;
* declare the graph with :class:`~repro.runtime.app.Application`;
* deploy with :class:`~repro.runtime.app.Deployment` (placement, engine
  configs, link parameters), attach producers, ``run()``;
* inject failures with :class:`~repro.runtime.failure.FailureInjector`
  and watch the replica take over;
* reproduce the paper's evaluation via :mod:`repro.experiments`.
"""

from repro.core.component import Component, on_call, on_message
from repro.core.cost import CostModel, LinearCost, SegmentedCost, fixed_cost
from repro.core.estimators import (
    ConstantEstimator,
    Estimator,
    LinearEstimator,
    SwitchableEstimator,
)
from repro.core.calibration import LinearRegressionCalibrator, RegressionResult
from repro.core.estimators import QueueCorrelatedDelayEstimator
from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    BiasSilencePolicy,
    CuriositySilencePolicy,
    HyperAggressiveSilencePolicy,
    LazySilencePolicy,
    PreProbingCuriositySilencePolicy,
    SilencePolicy,
)
from repro.runtime.tracing import ExecutionTracer, explain_hold, render_hold_report
from repro.errors import TartError
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import (
    Placement,
    round_robin_placement,
    single_engine_placement,
)
from repro.runtime.transport import LinkParams
from repro.sim.kernel import Simulator, ms, seconds, us

__version__ = "1.0.0"

__all__ = [
    "AggressiveSilencePolicy",
    "Application",
    "BiasSilencePolicy",
    "Component",
    "ExecutionTracer",
    "ConstantEstimator",
    "CostModel",
    "CuriositySilencePolicy",
    "Deployment",
    "EngineConfig",
    "Estimator",
    "FailureInjector",
    "HyperAggressiveSilencePolicy",
    "LazySilencePolicy",
    "LinearCost",
    "LinearEstimator",
    "LinearRegressionCalibrator",
    "LinkParams",
    "Placement",
    "PreProbingCuriositySilencePolicy",
    "QueueCorrelatedDelayEstimator",
    "RegressionResult",
    "SegmentedCost",
    "SilencePolicy",
    "Simulator",
    "SwitchableEstimator",
    "TartError",
    "explain_hold",
    "fixed_cost",
    "render_hold_report",
    "ms",
    "on_call",
    "on_message",
    "round_robin_placement",
    "seconds",
    "single_engine_placement",
    "us",
    "__version__",
]
