"""TART core: the paper's primary contribution.

This package implements the deterministic component runtime:

* the component programming model (:mod:`~repro.core.component`,
  :mod:`~repro.core.state`, :mod:`~repro.core.ports`),
* virtual-time estimation (:mod:`~repro.core.cost`,
  :mod:`~repro.core.estimators`, :mod:`~repro.core.calibration`),
* deterministic pessimistic scheduling (:mod:`~repro.core.scheduler`)
  and the non-deterministic baseline
  (:mod:`~repro.core.nondet_scheduler`),
* silence propagation policies (:mod:`~repro.core.silence_policy`),
* determinism faults (:mod:`~repro.core.determinism_fault`).
"""

from repro.core.component import Component, on_message, on_call
from repro.core.cost import CostModel, LinearCost, SegmentedCost, fixed_cost
from repro.core.estimators import (
    ConstantEstimator,
    Estimator,
    LinearEstimator,
    SwitchableEstimator,
)
from repro.core.calibration import LinearRegressionCalibrator, RegressionResult
from repro.core.message import (
    CallReply,
    CallRequest,
    CheckpointAck,
    CheckpointData,
    CuriosityProbe,
    DataMessage,
    ReplayRequest,
    SilenceAdvance,
    StableNotice,
)
from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    BiasSilencePolicy,
    CuriositySilencePolicy,
    HyperAggressiveSilencePolicy,
    LazySilencePolicy,
    PreProbingCuriositySilencePolicy,
    SilencePolicy,
)
from repro.core.state import MapCell, StateRegistry, ValueCell

__all__ = [
    "AggressiveSilencePolicy",
    "BiasSilencePolicy",
    "CallReply",
    "CallRequest",
    "CheckpointAck",
    "CheckpointData",
    "Component",
    "ConstantEstimator",
    "CostModel",
    "CuriosityProbe",
    "CuriositySilencePolicy",
    "DataMessage",
    "Estimator",
    "HyperAggressiveSilencePolicy",
    "LazySilencePolicy",
    "LinearCost",
    "LinearEstimator",
    "LinearRegressionCalibrator",
    "MapCell",
    "PreProbingCuriositySilencePolicy",
    "RegressionResult",
    "ReplayRequest",
    "SegmentedCost",
    "SilenceAdvance",
    "SilencePolicy",
    "StableNotice",
    "StateRegistry",
    "SwitchableEstimator",
    "ValueCell",
    "fixed_cost",
    "on_call",
    "on_message",
]
