"""Wire-level message types.

Everything that travels between engines (or between components within an
engine) is one of the dataclasses below.  Data-plane messages carry a
virtual time; control-plane messages implement silence propagation,
curiosity, replay, and checkpoint shipping.

All payloads are required to be values (no shared mutable objects) — the
Python analogue of the paper's "components do not share memory"
restriction, enforced by deep-copying payloads at the wire in strict
mode (see :class:`repro.runtime.transport.Transport`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Tuple, Type

from repro.vt.time import MessageKey


@dataclass(frozen=True)
class DataMessage:
    """A data tick: one one-way message on a wire.

    ``seq`` is the wire-local sequence number assigned by the sender's
    :class:`~repro.vt.ticks.TickStreamSender`; ``vt`` is the virtual time
    at which the message is to be processed at the receiver.
    """

    wire_id: int
    seq: int
    vt: int
    payload: Any

    def key(self) -> MessageKey:
        """Deterministic scheduling key (vt, wire, seq)."""
        return MessageKey(self.vt, self.wire_id, self.seq)


@dataclass(frozen=True)
class CallRequest(DataMessage):
    """A two-way service call.  ``call_id`` routes the eventual reply."""

    call_id: int = 0
    reply_wire_id: int = 0


@dataclass(frozen=True)
class CallReply(DataMessage):
    """The reply to a :class:`CallRequest` with the same ``call_id``."""

    call_id: int = 0


@dataclass(frozen=True)
class SilenceAdvance:
    """Sender promises wire ``wire_id`` is silent through ``through_vt``."""

    wire_id: int
    through_vt: int


@dataclass(frozen=True)
class CuriosityProbe:
    """Receiver asks the sender of ``wire_id`` for a fresh silence fact.

    ``want_vt`` is advisory: the virtual time the receiver is trying to
    clear.  Senders may use it to avoid answering with an already-known
    horizon.
    """

    wire_id: int
    want_vt: int


@dataclass(frozen=True)
class ReplayRequest:
    """Receiver asks the sender of ``wire_id`` to re-send ticks.

    Sent after failover (the restored checkpoint is in the past) or when
    a sequence gap reveals message loss.
    """

    wire_id: int
    from_seq: int


@dataclass(frozen=True)
class StableNotice:
    """Receiver engine tells a sender that ticks through ``through_seq``
    on ``wire_id`` are covered by a stable checkpoint and may be trimmed
    from the sender's retained replay buffer."""

    wire_id: int
    through_seq: int


@dataclass(frozen=True)
class CheckpointData:
    """A soft checkpoint shipped from an active engine to its replica.

    ``incremental`` distinguishes delta checkpoints (containing only
    dirty state) from full ones; ``blob`` is the serialized state.
    """

    engine_id: str
    cp_seq: int
    incremental: bool
    blob: bytes


@dataclass(frozen=True)
class CheckpointAck:
    """Replica acknowledges that checkpoint ``cp_seq`` is stable.

    ``replica_id`` identifies the acknowledging follower so an engine
    shipping its chain to several followers can wait for *all* of them
    before declaring a checkpoint stable.  Empty (the pre-group legacy
    form) means "the engine's only replica" and counts as a full
    acknowledgement.
    """

    engine_id: str
    cp_seq: int
    replica_id: str = ""


@dataclass(frozen=True)
class DeterminismFaultRecord:
    """A synchronously-logged estimator re-calibration (paper II.G.4).

    The new estimator takes effect for messages dequeued at virtual time
    >= ``effective_vt``; replay applies the old estimator before that.
    """

    component: str
    handler: str
    effective_vt: int
    coefficients: tuple
    intercept: int = 0


# ----------------------------------------------------------------------
# Wire round-trip support (used by repro.net.codec)
# ----------------------------------------------------------------------

#: Every message class defined here that may cross a real network
#: socket, in a fixed order.  :mod:`repro.net.codec` assigns each a
#: permanent wire-format type tag from this tuple plus the transport-
#: level types it adds (heartbeats, cluster control); the order below is
#: therefore part of the wire format and entries must only ever be
#: appended.  Subclasses are listed before their base so exact-type
#: round-trips are unambiguous.
WIRE_MESSAGE_TYPES: Tuple[Type, ...] = (
    CallRequest,
    CallReply,
    DataMessage,
    SilenceAdvance,
    CuriosityProbe,
    ReplayRequest,
    StableNotice,
    CheckpointData,
    CheckpointAck,
    DeterminismFaultRecord,
)


def message_fields(msg: Any) -> Dict[str, Any]:
    """Shallow field dict of one wire message, in declaration order.

    Unlike :func:`dataclasses.asdict` this does not recurse into
    payloads, so arbitrary payload values survive a round-trip through
    ``cls(**message_fields(msg))`` unchanged.
    """
    return {f.name: getattr(msg, f.name) for f in dataclasses.fields(msg)}
