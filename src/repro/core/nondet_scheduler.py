"""The non-deterministic baseline scheduler (paper's "Non-deterministic"
execution mode).

"The Merger processes messages in real-time arrival order."  This is the
conventional JVM behaviour TART's overhead is measured against: one
logical queue per component, served FIFO by *arrival* time, with no
silence tracking and no pessimism delay.

The baseline shares everything else with the deterministic runtime —
cost models, jitter, transport, metrics — so latency comparisons isolate
the cost of determinism.  Virtual times are still stamped on outputs
(they are cheap and let experiments count how often real arrival order
disagrees with virtual-time order), but they never influence scheduling.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.message import DataMessage
from repro.core.scheduler import ComponentRuntime, InWireState
from repro.errors import SchedulingError


class NonDeterministicComponentRuntime(ComponentRuntime):
    """Arrival-order variant of :class:`ComponentRuntime`."""

    deterministic = False

    def __init__(self, component, processor, services, silence_policy):
        super().__init__(component, processor, services, silence_policy)
        #: Wire ids in message-arrival order; the front identifies the
        #: next message (FIFO within a wire, so the front of that wire's
        #: pending queue is the referenced message).
        self._arrival_order: Deque[int] = deque()

    def on_data(self, msg: DataMessage) -> None:
        wire = self.in_wires.get(msg.wire_id)
        if wire is None:
            raise SchedulingError(
                f"{self.component.name}: data on unknown wire {msg.wire_id}"
            )
        verdict = wire.receiver.accept(msg.seq, msg.vt)
        if verdict != "deliver":
            # The baseline has no recovery; duplicates/gaps only occur in
            # fault experiments, which run deterministically.
            self.services.metrics.count("baseline_anomalies")
            return
        if msg.vt < self._max_arrived_vt:
            self.services.metrics.count("out_of_order_arrivals")
        self._max_arrived_vt = max(self._max_arrived_vt, msg.vt)
        wire.pending.append(msg)
        self._arrival_order.append(msg.wire_id)
        if self.observer is not None:
            self.observer.on_arrival(self, msg)
        self.maybe_dispatch()

    def on_silence(self, adv) -> None:
        # Silence is meaningless to the baseline; tolerate and drop so a
        # deterministic upstream can coexist in mixed experiments.
        return

    def maybe_dispatch(self) -> None:
        if self._busy is not None or self.processor.busy:
            return
        nxt = self._next_arrival()
        if nxt is None:
            return
        msg, wire = nxt
        self._dispatch(msg, wire)

    def _next_arrival(self) -> Optional[Tuple[DataMessage, InWireState]]:
        while self._arrival_order:
            wire_id = self._arrival_order[0]
            wire = self.in_wires[wire_id]
            if not wire.pending:
                # Stale reference (should not happen: dispatch pops both).
                self._arrival_order.popleft()
                continue
            self._arrival_order.popleft()
            return wire.pending[0], wire
        return None
