"""Determinism faults: synchronously logged estimator re-calibrations.

Paper II.G.4: "If the system consistently has virtual time out-of-sync
with real time ... it may be necessary to re-calibrate the estimators.
Since detecting and reacting to such a condition non-deterministically
affects virtual times, we must treat such a situation as an exception to
the determinism principle — a determinism fault.  In order for replay to
work correctly in the presence of determinism faults, we must log these
events synchronously."

The manager below:

* picks a safe effective virtual time — beyond everything the component
  has processed *and* beyond every silence promise its old estimator has
  produced, so no promised-silent tick can acquire data under the new
  estimator;
* appends the fault record to a stable log **before** applying it (if
  the append raises, the fault is not applied);
* applies it as a revision on the handler's
  :class:`~repro.core.estimators.SwitchableEstimator`;
* on recovery, replays the logged records into a freshly restored
  runtime so replayed messages see exactly the estimator that stamped
  them originally.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.estimators import ConstantEstimator, Estimator, LinearEstimator
from repro.core.message import DeterminismFaultRecord
from repro.errors import DeterminismFaultError

#: Marker used to encode a ConstantEstimator in a fault record.
_CONST_KEY = "__const__"


def estimator_to_fields(estimator: Estimator) -> Tuple[Tuple, int]:
    """Flatten an estimator into (coefficients, intercept) record fields."""
    if isinstance(estimator, ConstantEstimator):
        return ((_CONST_KEY, estimator.ticks),), 0
    if isinstance(estimator, LinearEstimator):
        coeffs = tuple(sorted(estimator.per_feature.items()))
        return coeffs, estimator.intercept
    raise DeterminismFaultError(
        f"cannot log estimator of type {type(estimator).__name__}"
    )


def fields_to_estimator(coefficients: Tuple, intercept: int) -> Estimator:
    """Rebuild an estimator from record fields."""
    coeffs = [tuple(item) for item in coefficients]
    if len(coeffs) == 1 and coeffs[0][0] == _CONST_KEY:
        return ConstantEstimator(coeffs[0][1])
    return LinearEstimator(dict(coeffs), intercept)


class DeterminismFaultManager:
    """Logs and applies estimator revisions for one engine.

    ``stable_log`` is any object with ``append(record)`` and
    ``records()`` whose contents survive the engine's failure (in this
    reproduction, an object owned by the stable side of the deployment,
    like the external message log).
    """

    def __init__(self, stable_log):
        self._log = stable_log

    def recalibrate(self, runtime, input_name: str,
                    new_estimator: Estimator) -> DeterminismFaultRecord:
        """Synchronously log and then apply a re-calibration.

        The effective virtual time is chosen so the switch cannot
        invalidate any promise already made with the old estimator: it
        exceeds the component's current virtual time and every out-wire's
        promised-silence horizon.
        """
        handler_spec = self._handler_spec(runtime, input_name)
        floor = runtime.component_vt
        for sender in runtime.out_senders.values():
            floor = max(floor, sender.silence_promised, sender.floor_vt)
        effective_vt = floor + 1

        coefficients, intercept = estimator_to_fields(new_estimator)
        record = DeterminismFaultRecord(
            component=runtime.component.name,
            handler=input_name,
            effective_vt=effective_vt,
            coefficients=coefficients,
            intercept=intercept,
        )
        # Log synchronously; only a successful append may change behaviour.
        self._log.append(record)
        handler_spec.cost.estimator.revise(effective_vt, new_estimator)
        runtime.services.metrics.count("determinism_faults")
        return record

    def replay_into(self, runtime) -> int:
        """Re-apply logged revisions to a restored runtime.

        Returns the number of records applied.  Called during failover,
        after the component instance (and therefore a fresh copy of its
        declared cost models) has been created but before any message is
        replayed.
        """
        applied = 0
        for record in self._log.records():
            if not isinstance(record, DeterminismFaultRecord):
                continue
            if record.component != runtime.component.name:
                continue
            spec = self._handler_spec(runtime, record.handler)
            estimator = fields_to_estimator(record.coefficients, record.intercept)
            spec.cost.estimator.revise(record.effective_vt, estimator)
            applied += 1
        return applied

    @staticmethod
    def _handler_spec(runtime, input_name: str):
        for wire in runtime.in_wires.values():
            if wire.spec.dst_input == input_name:
                return wire.handler_spec
        raise DeterminismFaultError(
            f"{runtime.component.name}: no wired handler for '{input_name}'"
        )


class ListFaultLog:
    """A trivially stable in-memory fault log (survives engine objects).

    Deployments hold one per engine *outside* the engine, mirroring the
    paper's stable storage.  Appends are synchronous; ``latency_ticks``
    lets experiments charge the synchronous-logging cost.
    """

    def __init__(self):
        self._records: List[DeterminismFaultRecord] = []

    def append(self, record: DeterminismFaultRecord) -> None:
        """Persist one record."""
        self._records.append(record)

    def records(self) -> List[DeterminismFaultRecord]:
        """All records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)
