"""Checkpointable component state cells.

The paper's transparency story: "State need not be stored in special
objects, but instead in ordinary instance variables", with the deployment
step *transforming* the class to add checkpoint capture.  Python has no
bytecode-transformation step in this reproduction, so the same product is
reached through a thin declaration API: a component declares its state as
cells on ``self.state`` and then uses them like ordinary values.

Two cell kinds mirror the paper's section II.F.2:

* :class:`ValueCell` — a scalar copied whole into every checkpoint.
* :class:`MapCell` — a dict with *incremental* checkpointing: "For large
  structures like hash tables needing incremental checkpointing, updates
  since the last checkpoint are stored in an auxiliary structure."  Only
  dirty keys (and deletions) since the previous checkpoint travel in a
  delta checkpoint.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, Optional, Set, Tuple

from repro.errors import StateError

#: Sentinel marking a deleted key inside a delta snapshot.
_DELETED = "__tart_deleted__"


class ValueCell:
    """A single checkpointed value."""

    def __init__(self, name: str, initial: Any = None):
        self.name = name
        self._value = initial
        self._dirty = True

    def get(self) -> Any:
        """Current value."""
        return self._value

    def set(self, value: Any) -> None:
        """Replace the value (marks the cell dirty)."""
        self._value = value
        self._dirty = True

    # -- checkpoint protocol ------------------------------------------
    def full_snapshot(self) -> Any:
        """Deep copy of the value."""
        return copy.deepcopy(self._value)

    def delta_snapshot(self) -> Tuple[bool, Any]:
        """``(changed, value)`` since the last :meth:`mark_clean`."""
        if self._dirty:
            return True, copy.deepcopy(self._value)
        return False, None

    def mark_clean(self) -> None:
        """Forget dirtiness (called after a checkpoint is captured)."""
        self._dirty = False

    def restore_full(self, snap: Any) -> None:
        """Load state from a full snapshot."""
        self._value = copy.deepcopy(snap)
        self._dirty = False

    def apply_delta(self, delta: Tuple[bool, Any]) -> None:
        """Apply a delta snapshot on a replica's shadow state."""
        changed, value = delta
        if changed:
            self._value = copy.deepcopy(value)

    def __repr__(self) -> str:
        return f"ValueCell({self.name}={self._value!r})"


class MapCell:
    """A dict-like cell with incremental checkpoint capture.

    Mutations go through this wrapper so the dirty-key set stays exact.
    Iteration order is insertion order (plain dict semantics); checkpoint
    encodings sort keys so the serialized form is canonical.
    """

    def __init__(self, name: str, initial: Optional[Dict] = None):
        self.name = name
        self._data: Dict = dict(initial or {})
        # Everything present initially is dirty until the first checkpoint.
        self._dirty_keys: Set = set(self._data)
        self._deleted_keys: Set = set()

    # -- dict-like interface ------------------------------------------
    def get(self, key, default=None):
        """dict.get."""
        return self._data.get(key, default)

    def __getitem__(self, key):
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        self._data[key] = value
        self._dirty_keys.add(key)
        self._deleted_keys.discard(key)

    def __delitem__(self, key) -> None:
        del self._data[key]
        self._dirty_keys.discard(key)
        self._deleted_keys.add(key)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def items(self):
        """dict.items."""
        return self._data.items()

    def keys(self):
        """dict.keys."""
        return self._data.keys()

    def values(self):
        """dict.values."""
        return self._data.values()

    def clear(self) -> None:
        """Remove every key (all become deletions for the next delta)."""
        for key in list(self._data):
            del self[key]

    # -- checkpoint protocol ------------------------------------------
    def full_snapshot(self) -> Dict:
        """Deep copy of the whole map."""
        return copy.deepcopy(self._data)

    def delta_snapshot(self) -> Dict:
        """Dirty entries and deletions since the last :meth:`mark_clean`.

        Deletions are encoded with the :data:`_DELETED` sentinel, so a
        delta is a single flat dict — compact to serialize.
        """
        delta: Dict = {k: copy.deepcopy(self._data[k]) for k in self._dirty_keys}
        for k in self._deleted_keys:
            delta[k] = _DELETED
        return delta

    def mark_clean(self) -> None:
        """Reset the auxiliary dirty structures after a checkpoint."""
        self._dirty_keys.clear()
        self._deleted_keys.clear()

    def restore_full(self, snap: Dict) -> None:
        """Load state from a full snapshot."""
        self._data = copy.deepcopy(snap)
        self.mark_clean()

    def apply_delta(self, delta: Dict) -> None:
        """Apply a delta snapshot on a replica's shadow state."""
        for k, v in delta.items():
            if isinstance(v, str) and v == _DELETED:
                self._data.pop(k, None)
            else:
                self._data[k] = copy.deepcopy(v)

    def dirty_count(self) -> int:
        """Number of entries the next delta checkpoint will carry."""
        return len(self._dirty_keys) + len(self._deleted_keys)

    def __repr__(self) -> str:
        return f"MapCell({self.name}, n={len(self._data)}, dirty={self.dirty_count()})"


class StateRegistry:
    """All checkpointable state of one component.

    Components obtain cells via :meth:`value` and :meth:`map` during
    ``setup()``; the engine drives the checkpoint protocol across every
    cell.  Declaring two cells with one name, or declaring cells after
    setup has finished, is an error — the cell set must be identical on
    the active engine and on the replica.
    """

    def __init__(self, component_name: str):
        self.component_name = component_name
        self._cells: Dict[str, Any] = {}
        self._sealed = False

    def value(self, name: str, initial: Any = None) -> ValueCell:
        """Declare (or on a replica: re-declare) a scalar cell."""
        return self._add(name, ValueCell(name, initial))

    def map(self, name: str, initial: Optional[Dict] = None) -> MapCell:
        """Declare a dict cell with incremental checkpointing."""
        return self._add(name, MapCell(name, initial))

    def _add(self, name: str, cell):
        if self._sealed:
            raise StateError(
                f"{self.component_name}: state cell '{name}' declared after setup"
            )
        if name in self._cells:
            raise StateError(
                f"{self.component_name}: duplicate state cell '{name}'"
            )
        self._cells[name] = cell
        return cell

    def seal(self) -> None:
        """Freeze the cell set (called by the engine after ``setup()``)."""
        self._sealed = True

    def cells(self) -> Dict[str, Any]:
        """Mapping of cell name to cell, insertion-ordered."""
        return dict(self._cells)

    # -- checkpoint protocol ------------------------------------------
    def full_snapshot(self) -> Dict[str, Any]:
        """Full snapshots of every cell, keyed by name."""
        return {name: cell.full_snapshot() for name, cell in self._cells.items()}

    def delta_snapshot(self) -> Dict[str, Any]:
        """Delta snapshots of every cell, keyed by name."""
        return {name: cell.delta_snapshot() for name, cell in self._cells.items()}

    def mark_clean(self) -> None:
        """Mark every cell clean after checkpoint capture."""
        for cell in self._cells.values():
            cell.mark_clean()

    def restore_full(self, snap: Dict[str, Any]) -> None:
        """Restore every cell from a full snapshot."""
        for name, cell in self._cells.items():
            if name not in snap:
                raise StateError(
                    f"{self.component_name}: checkpoint missing cell '{name}'"
                )
            cell.restore_full(snap[name])

    def apply_delta(self, delta: Dict[str, Any]) -> None:
        """Apply a delta snapshot (replica shadow-state maintenance)."""
        for name, cell_delta in delta.items():
            cell = self._cells.get(name)
            if cell is None:
                raise StateError(
                    f"{self.component_name}: delta for unknown cell '{name}'"
                )
            cell.apply_delta(cell_delta)
