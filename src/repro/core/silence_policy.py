"""Silence propagation policies (paper II.G.3, II.H).

"The most naive treatment of silence is lazy silence propagation ...
Other approaches involve curiosity-driven silence, in which a receiver
that is engaged in a pessimism delay explicitly requests the sender to
compute a new silence interval, and aggressive silence, in which senders
that have not sent silence for some time explicitly send it without
asking."  Hyper-aggressive silence (the bias algorithm of [11]) eagerly
marks future ticks silent, constraining future outputs.

The paper's key observation, which this design preserves: lazy,
curiosity and aggressive techniques "can be arbitrarily mixed and/or
dynamically changed without requiring a determinism fault", because they
change only *when* facts travel, never *which* ticks are silent.
Hyper-aggressive promises are different — they are **binding** (they
raise the sender's output floor) and are therefore part of the estimator;
changing the bias at runtime requires a determinism fault.

A policy instance is bound to exactly one
:class:`~repro.core.scheduler.ComponentRuntime` and receives callbacks on
both its receiver side (pessimism delays) and its sender side (probes,
completions, emissions).
"""

from __future__ import annotations

from typing import List

from repro.errors import SchedulingError
from repro.sim.kernel import us


class SilencePolicy:
    """Base policy: lazy behaviour on both sides.

    Subclasses override the hooks they care about.  ``probe_backoff`` is
    the minimum spacing between repeated probes of one wire after an
    unhelpful answer (prevents probe storms while a sender is busy).
    """

    def __init__(self, probe_backoff: int = us(20)):
        self.probe_backoff = int(probe_backoff)
        self._runtime = None

    def bind(self, runtime) -> None:
        """Attach to a runtime; a policy instance serves exactly one."""
        if self._runtime is not None:
            raise SchedulingError("silence policy already bound to a runtime")
        self._runtime = runtime

    def stop(self) -> None:
        """Release timers etc. (called when the hosting engine fails)."""

    # -- receiver side ---------------------------------------------------
    def on_pessimism_delay(self, runtime, blocking_wires: List[int],
                           want_vt: int) -> None:
        """Called whenever dispatch is blocked on unaccounted wires."""

    def on_enqueued(self, runtime, msg) -> None:
        """Called when a message is appended to a pending queue.

        Fires even while the component is busy, letting eager policies
        overlap silence acquisition with ongoing computation.
        """

    # -- sender side -------------------------------------------------------
    def on_probe(self, runtime, wire_id: int, want_vt: int) -> None:
        """Called when a curiosity probe arrives for one of our out-wires.

        Even a lazy sender answers probes (a receiver running a curiosity
        policy may sit downstream of a lazy sender); the *lazy* aspect is
        that it never volunteers information.
        """
        runtime.publish_silence(wire_id, force=True)

    def on_idle(self, runtime) -> None:
        """Called when the runtime finds nothing pending."""

    def on_complete(self, runtime, end_vt: int) -> None:
        """Called after each handler completion."""

    def on_emit(self, runtime, wire_id: int, sender, vt: int) -> None:
        """Called for every emitted data tick."""

    def __repr__(self) -> str:
        return type(self).__name__


class LazySilencePolicy(SilencePolicy):
    """No probes, no volunteered silence; data ticks carry it implicitly.

    "If a component sends a message at time t1, no silences are sent
    until the next message at time t2" — under this policy a pessimism
    delay lasts until the blocking sender's next data tick, which Figure
    5 shows to be expensive.
    """


class CuriositySilencePolicy(SilencePolicy):
    """Probe blocking senders during pessimism delays (paper II.H)."""

    def on_pessimism_delay(self, runtime, blocking_wires, want_vt) -> None:
        for wire_id in blocking_wires:
            runtime.send_probe(wire_id, want_vt)


class PreProbingCuriositySilencePolicy(CuriositySilencePolicy):
    """Curiosity with probe/computation overlap (an extension).

    The paper's curiosity is strictly reactive: a probe is sent only
    once the receiver is already stuck, so every pessimism delay pays a
    full probe round trip.  This variant also probes when a message is
    *enqueued* behind ongoing work whose future dispatch will need
    silence the receiver does not yet have — by the time the processor
    frees up, the answer has usually arrived.  Like all non-binding
    propagation choices (II.G.3), this changes only message timing,
    never behaviour; the ablation benchmark quantifies the latency win.
    """

    def on_enqueued(self, runtime, msg) -> None:
        best = runtime._best_candidate()
        if best is None:
            return
        candidate, _wire = best
        blocking = runtime.silence.blocking_wires(
            candidate.vt, excluding=candidate.wire_id
        )
        for wire_id in blocking:
            runtime.send_probe(wire_id, candidate.vt)


class AggressiveSilencePolicy(CuriositySilencePolicy):
    """Curiosity plus sender-side heartbeats.

    Every ``interval`` of real time the sender publishes a fresh silence
    fact on each out-wire that has news, without waiting to be asked.
    """

    def __init__(self, interval: int = us(200), probe_backoff: int = us(20)):
        super().__init__(probe_backoff)
        if interval <= 0:
            raise SchedulingError("heartbeat interval must be positive")
        self.interval = int(interval)
        self._stopped = False

    def bind(self, runtime) -> None:
        super().bind(runtime)
        if runtime.out_specs or True:
            # Wires may be attached after bind; the heartbeat re-reads
            # out_specs each firing.
            runtime.services.sim.after(
                self.interval, self._heartbeat, "silence-heartbeat"
            )

    def stop(self) -> None:
        self._stopped = True

    def _heartbeat(self) -> None:
        if self._stopped:
            return
        runtime = self._runtime
        for wire_id, spec in runtime.out_specs.items():
            if spec.kind == "reply":
                continue
            runtime.publish_silence(wire_id)
        runtime.services.sim.after(
            self.interval, self._heartbeat, "silence-heartbeat"
        )


def _emit_bias(runtime, wire_id: int, sender, vt: int, bias: int) -> None:
    """Apply and publish a binding bias promise after a data tick."""
    promise = vt + bias
    sender.promise_silence(promise, binding=True)
    spec = runtime.out_specs[wire_id]
    if spec.kind != "reply":
        from repro.core.message import SilenceAdvance

        runtime.services.send_control(
            spec, SilenceAdvance(wire_id, promise), False
        )
        runtime.services.metrics.count("silence_advances_sent")


class BiasSilencePolicy(LazySilencePolicy):
    """The pure bias algorithm of [11]: lazy propagation plus eager
    binding promises riding on each data tick.

    This is the paper's II.G.1 setting — "in the absence of aggressive
    silence propagation protocols, it is actually better for the virtual
    time estimates not to exactly match real-time" — isolated from
    probing and heartbeats.  ``bias`` should approximate the sender's
    inter-output gap; the sender's own messages are delayed up to
    ``bias`` in exchange for never blocking faster competitors.
    """

    def __init__(self, bias: int, probe_backoff: int = us(20)):
        super().__init__(probe_backoff)
        if bias < 0:
            raise SchedulingError("bias must be non-negative")
        self.bias = int(bias)

    def on_emit(self, runtime, wire_id: int, sender, vt: int) -> None:
        _emit_bias(runtime, wire_id, sender, vt, self.bias)


class HyperAggressiveSilencePolicy(AggressiveSilencePolicy):
    """Aggressive plus the bias algorithm's eager binding promises.

    After emitting a data tick at virtual time *t*, the sender promises
    silence through *t + bias* — "eagerly marks certain ticks as silent
    before knowing whether they normally would be silent or not" — and
    accepts that its own future outputs are pushed past the promise.
    Useful when this sender is much slower than its competitors: the
    fast senders' messages stop waiting for it.

    ``bias`` is part of the effective estimator; changing it at runtime
    requires a determinism fault (see
    :mod:`repro.core.determinism_fault`).
    """

    def __init__(self, bias: int, interval: int = us(200),
                 probe_backoff: int = us(20)):
        super().__init__(interval, probe_backoff)
        if bias < 0:
            raise SchedulingError("bias must be non-negative")
        self.bias = int(bias)

    def on_emit(self, runtime, wire_id: int, sender, vt: int) -> None:
        _emit_bias(runtime, wire_id, sender, vt, self.bias)


class NullSilencePolicy(SilencePolicy):
    """Policy for the non-deterministic baseline: fully inert."""

    def on_probe(self, runtime, wire_id, want_vt) -> None:
        pass
