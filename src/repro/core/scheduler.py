"""Deterministic pessimistic scheduling of one component.

:class:`ComponentRuntime` is the augmented component the paper's
deployment-time transformation produces: it wraps a user
:class:`~repro.core.component.Component` with

* per-input-wire tick accounting and pending queues,
* virtual-time-order dispatch with the pessimistic rule — the earliest
  pending message (vt *t*) runs only when every other input wire is
  accounted (data or silence) through *t* (paper II.E).  Candidate
  selection is heap-backed: a lazy min-heap of per-wire head
  :class:`~repro.vt.time.MessageKey` entries (per-wire virtual times are
  strictly increasing, so the head of each pending deque is its
  minimum), cleaned as stale entries surface, replaces the historical
  every-event scan of ``in_wires``,
* estimator-driven output timestamping,
* silence-fact computation for curiosity probes and aggressive
  heartbeats (paper II.H),
* busy/idle bookkeeping against a simulated processor, and
* checkpoint snapshot/restore of everything above.

Unlike Jefferson's Time Warp there is no rollback on the scheduling path:
"TART's scheduling algorithm is pessimistic: a scheduler processes input
messages in strict virtual time order without rollback" (II.D).  Rollback
exists only in the *recovery* path (checkpoint restore after failure).

The non-deterministic baseline lives in
:mod:`repro.core.nondet_scheduler` and shares this module's machinery,
overriding only the dispatch rule.
"""

from __future__ import annotations

import dataclasses
import heapq
import inspect
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.component import Component, HandlerSpec
from repro.core.message import (
    CallReply,
    CallRequest,
    CuriosityProbe,
    DataMessage,
    ReplayRequest,
    SilenceAdvance,
)
from repro.core.ports import CallTicket, OutputPort, ServicePort, WireSpec
from repro.errors import (
    ComponentError,
    SchedulingError,
    WiringError,
)
from repro.vt.silence import SilenceMap
from repro.vt.ticks import TickStreamReceiver, TickStreamSender
from repro.vt.time import NEVER, MessageKey


@dataclass
class RuntimeServices:
    """Everything the hosting engine provides to a component runtime.

    Bundled as callables so the core scheduler has no dependency on the
    engine/transport layer.
    """

    #: The simulation kernel (source of real time and event scheduling).
    sim: Any
    #: RNG stream used for actual-duration sampling of this component.
    rng: Any
    #: Jitter model mapping nominal to actual durations.
    jitter: Any
    #: transmit(wire_spec, message): physically send a data message.
    transmit: Callable[[WireSpec, Any], None]
    #: send_control(wire_spec, control, toward_src): send a control
    #: message along a wire, toward its source (True) or destination.
    send_control: Callable[[WireSpec, Any, bool], None]
    #: Metrics sink.
    metrics: Any
    #: Prescient probe answers (paper III.A "Prescient" mode)?
    prescient: bool = False
    #: Called after each handler completion with
    #: (runtime, handler_spec, features, estimated_ticks, actual_ticks) —
    #: hook for calibration / drift monitoring.
    on_sample: Optional[Callable] = None


class InWireState:
    """Receiver-side state of one input wire."""

    __slots__ = ("spec", "receiver", "pending", "handler_spec", "external")

    def __init__(self, spec: WireSpec, handler_spec: HandlerSpec, external: bool):
        self.spec = spec
        self.receiver = TickStreamReceiver(spec.wire_id)
        self.pending: Deque[DataMessage] = deque()
        self.handler_spec = handler_spec
        self.external = external


@dataclass
class BusyInfo:
    """What the component is currently executing (for probe answers)."""

    message: DataMessage
    handler_spec: HandlerSpec
    features: Dict[str, int]
    dequeue_vt: int
    #: Index of the execution segment currently running (generators).
    segment: int = 0
    #: Virtual time reached so far (end of the last finished segment).
    partial_vt: int = 0
    #: Accumulated actual (simulated-real) execution ticks.
    actual_ticks: int = 0
    #: Real time at which the current segment started executing.
    started_real: int = 0
    #: Sampled actual duration of the current segment.
    actual_current: int = 0
    #: Live generator for multi-segment (service-calling) handlers.
    generator: Any = None
    #: True while suspended waiting for a call reply.
    awaiting_reply: bool = False
    #: The ticket of the outstanding call, if any.
    ticket: Optional[CallTicket] = None
    #: call_id of the outstanding call (matches the eventual reply).
    call_id: Optional[int] = None


class ComponentRuntime:
    """Deterministic runtime for one component on one engine."""

    deterministic = True

    def __init__(
        self,
        component: Component,
        processor,
        services: RuntimeServices,
        silence_policy,
    ):
        self.component = component
        self.processor = processor
        self.services = services
        self.policy = silence_policy
        component._runtime = self

        #: Current virtual time of the component ("Sender1 reaches a
        #: virtual time of 233000").
        self.component_vt = 0

        self.in_wires: Dict[int, InWireState] = {}
        self.out_senders: Dict[int, TickStreamSender] = {}
        self.out_specs: Dict[int, WireSpec] = {}
        self.silence = SilenceMap()

        self._busy: Optional[BusyInfo] = None
        self._outbox: List[Tuple[OutputPort, Any, Optional[int]]] = []
        self._in_handler = False
        #: Optional pure-observation hook (``on_arrival`` /
        #: ``on_dispatch`` / ``on_emit`` / ``on_complete``), e.g. the
        #: replay-clock tracer.  Observers must never feed back into
        #: scheduling, RNG draws, or the wire format: traced and
        #: untraced runs stay byte-identical.
        self.observer = None
        # Clone handler specs so estimator revisions (determinism faults)
        # stay local to this runtime instead of mutating class-level state
        # shared across engines, replicas, and deployments.
        self._handler_specs = {
            name: dataclasses.replace(spec, cost=spec.cost.clone())
            for name, spec in type(component).handler_specs().items()
        }

        # Reply routing for two-way calls issued by this component.
        self._next_call_id = 0
        self._reply_wires: Dict[int, WireSpec] = {}
        self._reply_receivers: Dict[int, TickStreamReceiver] = {}
        # Early replies (replayed after a failover before the re-executed
        # call catches up), keyed by (wire_id, call_id).
        self._reply_buffer: Dict[Tuple[int, int], CallReply] = {}
        # Pessimism-delay bookkeeping.
        self._delay_key: Optional[MessageKey] = None
        self._delay_start = 0
        # Curiosity probe bookkeeping.
        self._probe_outstanding: Dict[int, bool] = {}
        self._probe_not_before: Dict[int, int] = {}
        self._probe_retry_scheduled: Dict[int, bool] = {}
        # Out-of-order arrival accounting.
        self._max_arrived_vt = -1
        # Wires with an outstanding replay: their arrivals may carry old
        # virtual times, so local freshness assumptions are suspended.
        self._replay_pending: set = set()
        # Lazy min-heap of (head MessageKey, wire_id) over the pending
        # queues: per-wire virtual times strictly increase, so each
        # wire's head is its minimum and the heap top (after discarding
        # stale entries) is the global dispatch candidate.
        self._head_heap: List[Tuple[MessageKey, int]] = []
        # Wires flagged external at wiring time.  The hosting layer may
        # clear ``wire.external`` in place later (networked deployments
        # drop the local-clock freshness bound), so the fast paths check
        # the live flags on this short list rather than caching a bool.
        self._external_flagged: List[InWireState] = []
        # Unique handler specs across the in-wires (many wires share one
        # handler), for the idle-case minimum-cost estimate.
        self._wired_handler_specs: List[HandlerSpec] = []
        self.policy.bind(self)

    # ------------------------------------------------------------------
    # Wiring (deployment time)
    # ------------------------------------------------------------------
    def add_in_wire(self, spec: WireSpec, external: bool = False) -> None:
        """Register an input wire delivering to ``spec.dst_input``."""
        if spec.wire_id in self.in_wires:
            raise WiringError(f"duplicate in-wire {spec.wire_id}")
        handler_spec = self._handler_specs.get(spec.dst_input)
        if handler_spec is None:
            raise WiringError(
                f"{self.component.name}: no handler for input '{spec.dst_input}'"
            )
        wire = InWireState(spec, handler_spec, external)
        self.in_wires[spec.wire_id] = wire
        if external:
            self._external_flagged.append(wire)
        if handler_spec not in self._wired_handler_specs:
            self._wired_handler_specs.append(handler_spec)
        self.silence.add_wire(spec.wire_id)
        self._probe_outstanding[spec.wire_id] = False
        self._probe_not_before[spec.wire_id] = 0

    def override_cost(self, input_name: str, cost) -> None:
        """Replace the cost model of one handler (experiment hook).

        Must be called before the input is wired; experiments use this to
        sweep estimator coefficients (paper Figure 4) or substitute the
        "dumb" constant estimator without redefining the component class.
        """
        spec = self._handler_specs.get(input_name)
        if spec is None:
            raise WiringError(
                f"{self.component.name}: no handler for input '{input_name}'"
            )
        self._handler_specs[input_name] = dataclasses.replace(
            spec, cost=cost.clone()
        )
        for wire in self.in_wires.values():
            if wire.spec.dst_input == input_name:
                raise WiringError(
                    f"{self.component.name}: cost override for '{input_name}' "
                    f"after wiring"
                )

    def add_out_wire(self, spec: WireSpec) -> None:
        """Register an output wire (data, call, or reply)."""
        if spec.wire_id in self.out_senders:
            raise WiringError(f"duplicate out-wire {spec.wire_id}")
        self.out_senders[spec.wire_id] = TickStreamSender(spec.wire_id)
        self.out_specs[spec.wire_id] = spec

    def add_reply_wire(self, spec: WireSpec) -> None:
        """Register a wire on which this component receives call replies.

        Reply wires are not part of the silence map: while blocked on a
        call, the one reply is the only thing the component waits for.
        """
        self._reply_wires[spec.wire_id] = spec
        self._reply_receivers[spec.wire_id] = TickStreamReceiver(spec.wire_id)

    @property
    def reply_receivers(self) -> Dict[int, TickStreamReceiver]:
        """Receivers deduplicating this component's incoming call replies."""
        return self._reply_receivers

    # ------------------------------------------------------------------
    # Inbound events (called by the engine)
    # ------------------------------------------------------------------
    def on_data(self, msg: DataMessage) -> None:
        """A data tick (one-way message or call request) arrived."""
        wire = self.in_wires.get(msg.wire_id)
        if wire is None:
            raise SchedulingError(
                f"{self.component.name}: data on unknown wire {msg.wire_id}"
            )
        verdict = wire.receiver.accept(msg.seq, msg.vt)
        if verdict == "duplicate":
            self.services.metrics.count("duplicates_discarded")
            return
        if verdict == "gap":
            # Lost messages: ask the sender to fill [next_seq, msg.seq).
            # One outstanding request per wire: the reliable channel will
            # deliver it, and the fill arrives FIFO before anything newer.
            self.services.metrics.count("replay_gaps")
            if msg.wire_id not in self._replay_pending:
                self._request_replay(wire)
            return
        self._replay_pending.discard(msg.wire_id)
        if msg.vt < self._max_arrived_vt:
            self.services.metrics.count("out_of_order_arrivals")
        self._max_arrived_vt = max(self._max_arrived_vt, msg.vt)
        wire.pending.append(msg)
        if len(wire.pending) == 1:
            # New head: appends to a non-empty queue never change the
            # head (per-wire virtual times strictly increase).
            heapq.heappush(self._head_heap, (msg.key(), msg.wire_id))
        self.silence.advance(msg.wire_id, msg.vt)
        self._probe_outstanding[msg.wire_id] = False
        if self.observer is not None:
            self.observer.on_arrival(self, msg)
        self.policy.on_enqueued(self, msg)
        self.maybe_dispatch()

    def on_silence(self, adv: SilenceAdvance) -> None:
        """A silence advance (explicit promise or probe answer) arrived."""
        if adv.wire_id not in self.in_wires:
            raise SchedulingError(
                f"{self.component.name}: silence on unknown wire {adv.wire_id}"
            )
        self._probe_outstanding[adv.wire_id] = False
        self._replay_pending.discard(adv.wire_id)
        if not self.silence.advance(adv.wire_id, adv.through_vt):
            # The answer did not help; allow a later re-probe after backoff.
            self._probe_not_before[adv.wire_id] = (
                self.services.sim.now + self.policy.probe_backoff
            )
        self.maybe_dispatch()

    def on_reply_msg(self, msg: CallReply) -> None:
        """A call reply arrived from the network: dedup, deliver or buffer.

        After a failover the callee replays retained replies, which may
        arrive before the re-executing caller has re-issued the matching
        call; such replies are buffered and consumed when the call is
        made (the call_id sequence is checkpointed, so re-issued calls
        carry their original ids).
        """
        recv = self._reply_receivers.get(msg.wire_id)
        if recv is None:
            raise SchedulingError(
                f"{self.component.name}: reply on unknown wire {msg.wire_id}"
            )
        verdict = recv.accept(msg.seq, msg.vt)
        if verdict == "duplicate":
            self.services.metrics.count("duplicates_discarded")
            return
        if verdict == "gap":
            if msg.wire_id not in self._replay_pending:
                self._replay_pending.add(msg.wire_id)
                self.services.send_control(
                    self._reply_wires[msg.wire_id],
                    ReplayRequest(msg.wire_id, recv.next_seq),
                    True,
                )
                self.services.metrics.count("replay_requests_sent")
            return
        self._replay_pending.discard(msg.wire_id)
        busy = self._busy
        if (busy is not None and busy.awaiting_reply
                and busy.call_id == msg.call_id):
            self._resume_from_reply(msg)
        else:
            self._reply_buffer[(msg.wire_id, msg.call_id)] = msg

    def _resume_from_reply(self, msg: CallReply) -> None:
        """Resume the suspended generator with the reply payload."""
        busy = self._busy
        if busy is None or not busy.awaiting_reply:
            raise SchedulingError(
                f"{self.component.name}: unexpected call reply {msg.call_id}"
            )
        busy.awaiting_reply = False
        busy.ticket = None
        busy.call_id = None
        # Resume: the next segment is dequeued at the max of the reply's
        # virtual time and the caller's partial virtual time.
        busy.partial_vt = max(msg.vt, busy.partial_vt)
        busy.segment += 1
        self._start_segment(busy, resume_value=msg.payload)

    # ------------------------------------------------------------------
    # Dispatch (the pessimistic rule)
    # ------------------------------------------------------------------
    def maybe_dispatch(self) -> None:
        """Dispatch the earliest eligible pending message, if any."""
        if self._busy is not None or self.processor.busy:
            return
        best = self._best_candidate()
        if best is None:
            self._clear_delay()
            self.policy.on_idle(self)
            return
        msg, wire = best
        if not self.silence.silent_through(msg.vt, excluding=msg.wire_id):
            self._enter_pessimism_delay(msg)
            return
        self._dispatch(msg, wire)

    def _best_candidate(self) -> Optional[Tuple[DataMessage, InWireState]]:
        top = self._clean_head()
        if top is None:
            return None
        wire = self.in_wires[top[1]]
        return wire.pending[0], wire

    def _clean_head(self) -> Optional[Tuple[MessageKey, int]]:
        """The live (head key, wire_id) heap top, discarding stale entries.

        An entry is live iff it still names the head of its wire's
        pending queue; anything else (dispatched head, emptied queue) is
        stale and dropped on sight.
        """
        heap = self._head_heap
        while heap:
            key, wire_id = heap[0]
            wire = self.in_wires.get(wire_id)
            if (wire is not None and wire.pending
                    and wire.pending[0].key() == key):
                return heap[0]
            heapq.heappop(heap)
        return None

    def _enter_pessimism_delay(self, msg: DataMessage) -> None:
        key = msg.key()
        if self._delay_key != key:
            self._delay_key = key
            self._delay_start = self.services.sim.now
            self.services.metrics.count("pessimism_events")
        blocking = self.silence.blocking_wires(msg.vt, excluding=msg.wire_id)
        self.policy.on_pessimism_delay(self, blocking, msg.vt)

    def _clear_delay(self) -> None:
        self._delay_key = None

    def _dispatch(self, msg: DataMessage, wire: InWireState) -> None:
        if self.observer is not None:
            self.observer.on_dispatch(self, msg)
        if self._delay_key == msg.key():
            held = self.services.sim.now - self._delay_start
            self.services.metrics.add("pessimism_delay_ticks", held)
        self._clear_delay()
        wire.pending.popleft()
        if wire.pending and self.deterministic:
            heapq.heappush(
                self._head_heap,
                (wire.pending[0].key(), wire.spec.wire_id),
            )
        handler_spec = wire.handler_spec
        dequeue_vt = max(msg.vt, self.component_vt)
        features = handler_spec.cost.features(msg.payload)
        busy = BusyInfo(
            message=msg,
            handler_spec=handler_spec,
            features=features,
            dequeue_vt=dequeue_vt,
            partial_vt=dequeue_vt,
        )
        self._busy = busy
        self._start_segment(busy, resume_value=None, first=True)

    # ------------------------------------------------------------------
    # Segment execution
    # ------------------------------------------------------------------
    def _start_segment(self, busy: BusyInfo, resume_value: Any,
                       first: bool = False) -> None:
        """Occupy the processor for one execution segment, then run code."""
        seg_cost = busy.handler_spec.cost.segment(busy.segment)
        nominal = seg_cost.true_nominal(busy.features)
        actual = self.services.jitter.actual_duration(
            self.services.rng, nominal, busy.features
        )
        busy.actual_ticks += actual
        busy.started_real = self.services.sim.now
        busy.actual_current = actual
        self.processor.execute(
            actual,
            lambda: self._run_segment_code(busy, resume_value, first),
            label=f"{self.component.name}:{busy.handler_spec.method_name}",
        )

    def _run_segment_code(self, busy: BusyInfo, resume_value: Any,
                          first: bool) -> None:
        """Run the handler code for the segment that just finished."""
        seg_cost = busy.handler_spec.cost.segment(busy.segment)
        est = seg_cost.estimated(busy.features, busy.dequeue_vt)
        segment_end_vt = busy.partial_vt + est

        self._in_handler = True
        try:
            if first:
                handler = getattr(self.component, busy.handler_spec.method_name)
                result = handler(busy.message.payload)
                if inspect.isgenerator(result):
                    busy.generator = result
                    step = self._advance_generator(busy, None)
                else:
                    step = ("done", result)
            else:
                step = self._advance_generator(busy, resume_value)
        finally:
            self._in_handler = False

        busy.partial_vt = segment_end_vt
        self._flush_outbox(segment_end_vt, busy)

        if step[0] == "call":
            ticket: CallTicket = step[1]
            busy.ticket = ticket
            busy.awaiting_reply = True
            self._send_call(ticket, segment_end_vt)
            # The processor is free while blocked on the reply (the
            # component "blocks waiting for a return from a service call").
            return
        self._complete(busy, segment_end_vt, return_value=step[1])

    def _advance_generator(self, busy: BusyInfo, value: Any) -> Tuple[str, Any]:
        try:
            yielded = busy.generator.send(value)
        except StopIteration as stop:
            return ("done", stop.value)
        if not isinstance(yielded, CallTicket):
            raise ComponentError(
                f"{self.component.name}.{busy.handler_spec.method_name}: "
                f"handlers may only yield CallTickets, got {yielded!r}"
            )
        return ("call", yielded)

    def _complete(self, busy: BusyInfo, end_vt: int, return_value: Any) -> None:
        """Finish processing: advance virtual time, reply if two-way."""
        self.component_vt = end_vt
        if self.observer is not None:
            self.observer.on_complete(self, busy, end_vt)
        if busy.handler_spec.two_way:
            self._send_reply(busy, end_vt, return_value)
        self._busy = None
        self.services.metrics.count("messages_processed")
        if self.services.on_sample is not None:
            estimated = end_vt - busy.dequeue_vt
            self.services.on_sample(
                self, busy.handler_spec, busy.features, estimated,
                busy.actual_ticks,
            )
        self.policy.on_complete(self, end_vt)
        self.maybe_dispatch()

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def queue_send(self, port: OutputPort, payload: Any,
                   at_vt: Optional[int] = None) -> None:
        """Buffer a send issued inside a handler (released at segment end).

        ``at_vt`` carries a user-supplied virtual time (time-aware
        components, see :meth:`OutputPort.send_at`): the message is
        scheduled for that future virtual time instead of the
        estimator's completion time.
        """
        if not self._in_handler:
            raise ComponentError(
                f"{self.component.name}.{port.name}: send outside a handler"
            )
        self._outbox.append((port, payload, at_vt))

    def _comm_estimate(self, spec: WireSpec, features, at_vt: int) -> int:
        """Communication-delay estimate for an emission at ``at_vt``.

        Load-correlated estimators get the deterministic recent-emission
        count of the wire; plain estimators just see the features.
        """
        from repro.core.estimators import QueueCorrelatedDelayEstimator

        estimator = spec.delay_estimator
        if isinstance(estimator, QueueCorrelatedDelayEstimator):
            sender = self.out_senders[spec.wire_id]
            return estimator.estimate_with_load(
                features, sender.recent_count(at_vt)
            )
        return estimator.estimate(features)

    def _flush_outbox(self, vt_base: int, busy: BusyInfo) -> None:
        outbox, self._outbox = self._outbox, []
        for port, payload, user_vt in outbox:
            for spec in port.wires:
                if user_vt is not None:
                    vt_out = user_vt
                    floor = vt_base + self._comm_estimate(
                        spec, busy.features, vt_base)
                    if vt_out < floor:
                        raise ComponentError(
                            f"{self.component.name}.{port.name}: send_at "
                            f"vt {user_vt} is before the earliest causally "
                            f"possible delivery {floor}"
                        )
                else:
                    vt_out = vt_base + self._comm_estimate(
                        spec, busy.features, vt_base)
                self._emit(spec, vt_out, payload)

    def _emit(self, spec: WireSpec, vt_out: int, payload: Any,
              call_meta: Optional[Tuple[int, int]] = None) -> None:
        sender = self.out_senders[spec.wire_id]
        # Deterministic floors: successive sends on one wire within one
        # handler (last_data_vt) and binding hyper-aggressive promises
        # (floor_vt) push the virtual time forward.  Both are functions
        # of the message history only, so replay reproduces them.
        vt_out = max(vt_out, sender.last_data_vt + 1, sender.floor_vt + 1)
        seq = sender.next_seq
        if call_meta is not None:
            call_id, reply_wire_id = call_meta
            msg: DataMessage = CallRequest(
                spec.wire_id, seq, vt_out, payload,
                call_id=call_id, reply_wire_id=reply_wire_id,
            )
        else:
            msg = DataMessage(spec.wire_id, seq, vt_out, payload)
        sender.emit_message(msg)
        if self.observer is not None:
            self.observer.on_emit(self, spec, msg)
        self.policy.on_emit(self, spec.wire_id, sender, vt_out)
        self.services.transmit(spec, msg)

    def _send_call(self, ticket: CallTicket, vt_base: int) -> None:
        port: ServicePort = ticket.port
        if not port.wires or port.reply_wire is None:
            raise WiringError(
                f"{self.component.name}.{port.name}: call port not fully wired"
            )
        spec = port.wires[0]
        call_id = self._next_call_id
        self._next_call_id += 1
        self._busy.call_id = call_id
        vt_out = vt_base + self._comm_estimate(spec, {}, vt_base)
        self._emit(spec, vt_out, ticket.payload,
                   call_meta=(call_id, port.reply_wire.wire_id))
        # A replayed reply may already be waiting (post-failover).
        buffered = self._reply_buffer.pop(
            (port.reply_wire.wire_id, call_id), None
        )
        if buffered is not None:
            self.services.sim.call_soon(
                lambda: self._resume_from_reply(buffered),
                f"{self.component.name}:buffered-reply",
            )

    def _send_reply(self, busy: BusyInfo, end_vt: int, return_value: Any) -> None:
        request = busy.message
        if not isinstance(request, CallRequest):
            raise SchedulingError(
                f"{self.component.name}: two-way handler processed a "
                f"non-call message on wire {request.wire_id}"
            )
        reply_spec = self.out_specs.get(request.reply_wire_id)
        if reply_spec is None:
            raise WiringError(
                f"{self.component.name}: unknown reply wire {request.reply_wire_id}"
            )
        sender = self.out_senders[reply_spec.wire_id]
        vt_out = end_vt + self._comm_estimate(reply_spec, {}, end_vt)
        vt_out = max(vt_out, sender.last_data_vt + 1, sender.floor_vt + 1)
        msg = CallReply(reply_spec.wire_id, sender.next_seq, vt_out,
                        return_value, call_id=request.call_id)
        sender.emit_message(msg)
        if self.observer is not None:
            self.observer.on_emit(self, reply_spec, msg)
        self.services.transmit(reply_spec, msg)

    # ------------------------------------------------------------------
    # Silence facts (probe answers / aggressive heartbeats) — paper II.H
    # ------------------------------------------------------------------
    def silence_fact(self, wire_id: int) -> int:
        """Latest virtual time provably silent on out-wire ``wire_id``.

        Busy case: the earliest possible next output is the current
        message's dequeue time plus the estimated cost — exact under
        prescience ("the code computes the iteration count prior to
        entering the loop"), the minimum-execution estimate otherwise.

        Idle case: "silent through [the earliest time it could become
        busy] plus the computation time of the shortest possible
        processing", where the earliest busy time accounts for pending
        messages, input-wire horizons, and — for external inputs — the
        fact that any future external message is stamped no earlier than
        the current real time.
        """
        spec = self.out_specs[wire_id]
        sender = self.out_senders[wire_id]
        comm = spec.delay_estimator.estimate({})
        busy = self._busy
        if busy is not None:
            earliest_out = self._busy_earliest_output(busy) + comm
            return max(sender.silence_promised, earliest_out - 1)

        earliest_in = self._earliest_possible_input()
        if earliest_in >= NEVER:
            return NEVER
        earliest_dequeue = max(self.component_vt, earliest_in)
        min_est = self._min_handler_estimate(earliest_dequeue)
        earliest_out = earliest_dequeue + max(1, min_est) + comm
        return max(sender.silence_promised, earliest_out - 1)

    def _busy_earliest_output(self, busy: BusyInfo) -> int:
        """Lower bound on the virtual time of the next possible output.

        Prescient senders know their remaining work exactly ("the code
        computes the iteration count prior to entering the loop").
        Non-prescient senders know only how far they have *already*
        progressed — the paper's busy sender "computes the earliest
        possible time it could compute a message based upon the known
        state of the process".  We convert observed progress through the
        current segment into virtual ticks: with fraction ``p`` of the
        segment's real duration elapsed, at least ``floor(p * est) + 1``
        estimated ticks of work exist in total, because the work already
        performed is itself evidence (the loop counter has advanced).
        The bound never reaches the full estimate while the segment is
        still running, so it stays a fact regardless of jitter.
        """
        seg_cost = busy.handler_spec.cost.segment(busy.segment)
        seg_est = seg_cost.estimated(busy.features, busy.dequeue_vt)
        if busy.awaiting_reply:
            # Suspended on a call: output no earlier than the next
            # segment's minimum after the reply (reply vt > partial_vt).
            nxt = busy.handler_spec.cost.segment(busy.segment + 1)
            bound = max(1, nxt.min_estimated(busy.dequeue_vt))
            return busy.partial_vt + bound
        if self.services.prescient:
            return busy.partial_vt + max(1, seg_est)
        min_est = seg_cost.min_estimated(busy.dequeue_vt)
        if busy.actual_current > 0:
            elapsed = self.services.sim.now - busy.started_real
            progressed = (seg_est * elapsed) // busy.actual_current + 1
            bound = max(min_est, min(progressed, seg_est))
        else:
            bound = min_est
        return busy.partial_vt + max(1, bound)

    def _earliest_possible_input(self) -> int:
        """Lower bound on the vt of the next message dequeued.

        Fast path (no live external wire): ``min(head_min, min_horizon
        + 1)``.  This equals the per-wire scan because an arrival
        advances its wire's horizon to at least its own vt, so a pending
        wire's head vt never exceeds that wire's horizon — pending
        wires' ``horizon + 1`` terms can never undercut ``head_min``,
        and folding them into the global minimum is harmless.  A live
        external wire re-enables the scan: its local-clock freshness
        boost is per-wire state the global minimum cannot express.
        """
        if not self.in_wires:
            return NEVER
        if not any(w.external for w in self._external_flagged):
            head = self._clean_head()
            head_min = head[0].vt if head is not None else NEVER
            return min(head_min, self.silence.min_horizon() + 1)
        now = self.services.sim.now
        earliest = NEVER
        for wire in self.in_wires.values():
            if wire.pending:
                candidate = wire.pending[0].vt
            else:
                horizon = self.silence.horizon(wire.spec.wire_id)
                if wire.external and wire.spec.wire_id not in self._replay_pending:
                    # External ticks are stamped with the real arrival
                    # time at the zero-delay ingress, so outside of a
                    # replay window nothing can arrive below the current
                    # real time.
                    horizon = max(horizon, now - 1)
                candidate = horizon + 1
            earliest = min(earliest, candidate)
        return earliest

    def _min_handler_estimate(self, at_vt: int) -> int:
        ests = [
            spec.cost.min_estimated(at_vt)
            for spec in self._wired_handler_specs
        ]
        return min(ests) if ests else 0

    def publish_silence(self, wire_id: int, force: bool = False) -> None:
        """Compute and transmit a fresh silence fact on one out-wire.

        With ``force`` (probe answers) the fact is sent even when it
        carries no news, so the prober's outstanding-probe flag clears
        and its backoff logic takes over; heartbeats skip no-news facts.
        """
        fact = self.silence_fact(wire_id)
        sender = self.out_senders[wire_id]
        if fact > sender.silence_promised:
            sender.promise_silence(fact)
        elif not force:
            return
        spec = self.out_specs[wire_id]
        self.services.send_control(spec, SilenceAdvance(wire_id, fact), False)
        self.services.metrics.count("silence_advances_sent")

    # ------------------------------------------------------------------
    # Curiosity probes (receiver side)
    # ------------------------------------------------------------------
    def send_probe(self, wire_id: int, want_vt: int) -> None:
        """Probe the sender of one blocking in-wire, with throttling.

        Re-probes after an unhelpful answer are spaced by the policy's
        backoff; a retry event keeps the component live when no other
        traffic would otherwise re-trigger dispatch.
        """
        now = self.services.sim.now
        if self._probe_outstanding.get(wire_id):
            return
        not_before = self._probe_not_before.get(wire_id, 0)
        if now < not_before:
            if not self._probe_retry_scheduled.get(wire_id):
                self._probe_retry_scheduled[wire_id] = True

                def _retry() -> None:
                    self._probe_retry_scheduled[wire_id] = False
                    self.maybe_dispatch()

                self.services.sim.at(
                    not_before, _retry, f"probe-retry:{wire_id}"
                )
            return
        self._probe_outstanding[wire_id] = True
        spec = self.in_wires[wire_id].spec
        self.services.send_control(spec, CuriosityProbe(wire_id, want_vt), True)
        self.services.metrics.count("curiosity_probes")

    def on_probe(self, wire_id: int, want_vt: int) -> None:
        """Answer a curiosity probe targeting one of our out-wires."""
        self.policy.on_probe(self, wire_id, want_vt)

    # ------------------------------------------------------------------
    # Introspection & checkpoint support
    # ------------------------------------------------------------------
    @property
    def busy_info(self) -> Optional[BusyInfo]:
        """The in-flight message context, if any."""
        return self._busy

    @property
    def current_vt(self) -> int:
        """The deterministic virtual "now" (the paper's timing service).

        While a handler runs this is the virtual time its current
        segment was dequeued at; between messages it is the component's
        virtual time after its last completion.
        """
        if self._busy is not None:
            return self._busy.partial_vt
        return self.component_vt

    @property
    def idle(self) -> bool:
        """True when no message is in flight and nothing is pending."""
        return self._busy is None and not any(
            w.pending for w in self.in_wires.values()
        )

    @property
    def mid_call(self) -> bool:
        """True while a multi-segment (service-calling) handler is live.

        Checkpoints are deferred in this window: generator frames are not
        serializable, so snapshots are taken at message boundaries.
        """
        return self._busy is not None and (
            self._busy.generator is not None or self._busy.awaiting_reply
        )

    def snapshot(self, incremental: bool) -> dict:
        """Checkpointable view of this runtime (message-boundary state).

        An in-flight single-segment message is included as *unprocessed*
        (prepended to its wire's pending queue) so the restored engine
        re-executes it; its state effects have not been applied yet, so
        the snapshot is consistent.
        """
        if self.mid_call:
            raise SchedulingError(
                f"{self.component.name}: snapshot requested mid-call"
            )
        pending: Dict[int, list] = {}
        for wid, wire in self.in_wires.items():
            pending[wid] = [encode_message(m) for m in wire.pending]
        if self._busy is not None:
            msg = self._busy.message
            pending[msg.wire_id].insert(0, encode_message(msg))
        cells = (
            self.component.state.delta_snapshot()
            if incremental
            else self.component.state.full_snapshot()
        )
        return {
            "cells": cells,
            "cells_incremental": incremental,
            "component_vt": self.component_vt,
            "max_arrived_vt": self._max_arrived_vt,
            "next_call_id": self._next_call_id,
            "receivers": {w: s.receiver.snapshot() for w, s in self.in_wires.items()},
            "reply_receivers": {w: r.snapshot()
                                for w, r in self._reply_receivers.items()},
            "senders": {w: s.snapshot(encode_message)
                        for w, s in self.out_senders.items()},
            "silence": self.silence.snapshot(),
            "pending": pending,
        }

    def restore(self, snap: dict) -> None:
        """Load a full (already delta-merged) snapshot into this runtime."""
        self.component.state.restore_full(snap["cells"])
        self.component_vt = snap["component_vt"]
        self._max_arrived_vt = snap["max_arrived_vt"]
        self._next_call_id = snap.get("next_call_id", 0)
        for wid, rsnap in snap["receivers"].items():
            self.in_wires[int(wid)].receiver = TickStreamReceiver.restore(rsnap)
        for wid, rsnap in snap.get("reply_receivers", {}).items():
            self._reply_receivers[int(wid)] = TickStreamReceiver.restore(rsnap)
        self._reply_buffer.clear()
        for wid, ssnap in snap["senders"].items():
            self.out_senders[int(wid)] = TickStreamSender.restore(
                ssnap, decode_message
            )
        self.silence = SilenceMap.restore(snap["silence"])
        for wid, items in snap["pending"].items():
            self.in_wires[int(wid)].pending = deque(
                decode_message(item) for item in items
            )
        self._head_heap = [
            (wire.pending[0].key(), wid)
            for wid, wire in self.in_wires.items()
            if wire.pending
        ]
        heapq.heapify(self._head_heap)
        self._busy = None
        self._clear_delay()
        for wid in self._probe_outstanding:
            self._probe_outstanding[wid] = False
            self._probe_not_before[wid] = 0

    # ------------------------------------------------------------------
    # Replay plumbing
    # ------------------------------------------------------------------
    def _request_replay(self, wire: InWireState) -> None:
        self._replay_pending.add(wire.spec.wire_id)
        self.services.send_control(
            wire.spec,
            ReplayRequest(wire.spec.wire_id, wire.receiver.next_seq),
            True,
        )
        self.services.metrics.count("replay_requests_sent")

    def request_all_replays(self) -> None:
        """After failover: ask every upstream sender to resume our wires."""
        for wire in self.in_wires.values():
            self._request_replay(wire)
        for wire_id, spec in self._reply_wires.items():
            self.services.send_control(
                spec,
                ReplayRequest(wire_id, self._reply_receivers[wire_id].next_seq),
                True,
            )
            self.services.metrics.count("replay_requests_sent")

    def replay_out_wire(self, wire_id: int, from_seq: int) -> int:
        """Re-send retained messages >= ``from_seq``; returns the count."""
        sender = self.out_senders[wire_id]
        spec = self.out_specs[wire_id]
        resent = sender.replay_from(from_seq)
        for msg in resent:
            self.services.transmit(spec, msg)
        self.services.metrics.count("messages_replayed", len(resent))
        # Trailing fact: tells the recovering receiver the replay is
        # complete and spares it a probe round (FIFO keeps it sound).
        if spec.kind != "reply":
            self.publish_silence(wire_id, force=True)
        return len(resent)

    def trim_out_wire(self, wire_id: int, through_seq: int) -> int:
        """Drop retained messages covered by a downstream stable checkpoint."""
        return self.out_senders[wire_id].trim_through(through_seq)

    def __repr__(self) -> str:
        state = "busy" if self._busy else "idle"
        return (f"<ComponentRuntime {self.component.name} "
                f"vt={self.component_vt} {state}>")


# ----------------------------------------------------------------------
# Message (de)serialization helpers shared by snapshots and the replica.
# ----------------------------------------------------------------------
def encode_message(msg: DataMessage) -> dict:
    """Encode a wire message to plain data for checkpoints."""
    if isinstance(msg, CallRequest):
        return {"kind": "call", "wire_id": msg.wire_id, "seq": msg.seq,
                "vt": msg.vt, "payload": msg.payload, "call_id": msg.call_id,
                "reply_wire_id": msg.reply_wire_id}
    if isinstance(msg, CallReply):
        return {"kind": "reply", "wire_id": msg.wire_id, "seq": msg.seq,
                "vt": msg.vt, "payload": msg.payload, "call_id": msg.call_id}
    return {"kind": "data", "wire_id": msg.wire_id, "seq": msg.seq,
            "vt": msg.vt, "payload": msg.payload}


def decode_message(item: dict) -> DataMessage:
    """Inverse of :func:`encode_message`."""
    kind = item["kind"]
    if kind == "call":
        return CallRequest(item["wire_id"], item["seq"], item["vt"],
                           item["payload"], call_id=item["call_id"],
                           reply_wire_id=item["reply_wire_id"])
    if kind == "reply":
        return CallReply(item["wire_id"], item["seq"], item["vt"],
                         item["payload"], call_id=item["call_id"])
    return DataMessage(item["wire_id"], item["seq"], item["vt"],
                       item["payload"])
