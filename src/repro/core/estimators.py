"""Virtual-time estimators.

An estimator is a *deterministic* function from a handler's feature vector
(basic-block execution counts, paper Eq. 1) to an estimated computation
time in ticks.  Estimates need not be accurate for correctness — "Any
estimator that yields a virtual time in the future will be correct" — but
performance improves the closer estimated virtual time tracks real time.

Estimator kinds:

* :class:`ConstantEstimator` — the paper's "dumb" estimator: a fixed
  average time per message, ignoring the input.
* :class:`LinearEstimator` — the paper's Eq. (1):
  τ = β₀ + β₁ξ₁ + ... + βₙξₙ.
* :class:`SwitchableEstimator` — a piecewise-in-virtual-time estimator
  supporting determinism-fault re-calibration: the coefficient change
  takes effect only for messages dequeued at or after a logged virtual
  time, so replay reproduces the original behaviour (paper II.G.4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Tuple

from repro.errors import VirtualTimeError


class Estimator(ABC):
    """Deterministic map from features to estimated ticks."""

    @abstractmethod
    def estimate(self, features: Mapping[str, int]) -> int:
        """Estimated computation time in ticks for this feature vector."""

    def describe(self) -> str:
        """Human-readable summary for logs and experiment tables."""
        return repr(self)


class ConstantEstimator(Estimator):
    """Always predicts ``ticks`` regardless of the input message."""

    def __init__(self, ticks: int):
        if ticks < 0:
            raise VirtualTimeError("estimated cost must be non-negative")
        self.ticks = int(ticks)

    def estimate(self, features: Mapping[str, int]) -> int:
        return self.ticks

    def __repr__(self) -> str:
        return f"ConstantEstimator({self.ticks})"

    def __eq__(self, other) -> bool:
        return isinstance(other, ConstantEstimator) and other.ticks == self.ticks

    def __hash__(self) -> int:
        return hash(("const", self.ticks))


class LinearEstimator(Estimator):
    """τ = intercept + Σ per_feature[f] · features[f]  (paper Eq. 1).

    Missing features count as zero, so an estimator fitted on a superset
    of blocks still evaluates.
    """

    def __init__(self, per_feature: Mapping[str, int], intercept: int = 0):
        if intercept < 0:
            raise VirtualTimeError("intercept must be non-negative")
        self.per_feature: Dict[str, int] = {k: int(v) for k, v in per_feature.items()}
        self.intercept = int(intercept)

    def estimate(self, features: Mapping[str, int]) -> int:
        total = self.intercept
        for name, coeff in self.per_feature.items():
            total += coeff * int(features.get(name, 0))
        return max(0, total)

    def __repr__(self) -> str:
        terms = " + ".join(f"{c}*{f}" for f, c in sorted(self.per_feature.items()))
        return f"LinearEstimator({self.intercept} + {terms})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LinearEstimator)
            and other.intercept == self.intercept
            and other.per_feature == self.per_feature
        )

    def __hash__(self) -> int:
        return hash(("linear", self.intercept, tuple(sorted(self.per_feature.items()))))


class SwitchableEstimator(Estimator):
    """An estimator with virtual-time-stamped revisions.

    Evaluation requires the dequeue virtual time of the message being
    estimated: revisions logged as determinism faults apply only at or
    after their effective virtual time.  During replay the same revision
    log reproduces the exact same estimates.
    """

    def __init__(self, initial: Estimator):
        self._revisions: List[Tuple[int, Estimator]] = [(0, initial)]

    def revise(self, effective_vt: int, estimator: Estimator) -> None:
        """Install ``estimator`` for messages dequeued at vt >= ``effective_vt``.

        Revisions must be appended in non-decreasing effective time; the
        determinism-fault machinery guarantees this (it logs the fault at
        a vt beyond every message already processed).
        """
        last_vt, _ = self._revisions[-1]
        if effective_vt < last_vt:
            raise VirtualTimeError(
                f"estimator revision at vt {effective_vt} precedes existing "
                f"revision at vt {last_vt}"
            )
        self._revisions.append((int(effective_vt), estimator))

    def active_at(self, vt: int) -> Estimator:
        """The estimator in force for a message dequeued at ``vt``."""
        active = self._revisions[0][1]
        for eff, est in self._revisions:
            if eff <= vt:
                active = est
            else:
                break
        return active

    def estimate(self, features: Mapping[str, int]) -> int:
        # Without a vt we answer with the latest revision; scheduler code
        # always goes through estimate_at.
        return self._revisions[-1][1].estimate(features)

    def estimate_at(self, features: Mapping[str, int], vt: int) -> int:
        """Estimate using the revision in force at dequeue time ``vt``."""
        return self.active_at(vt).estimate(features)

    def revisions(self) -> List[Tuple[int, Estimator]]:
        """The revision history (effective_vt, estimator), oldest first."""
        return list(self._revisions)

    def __repr__(self) -> str:
        return f"SwitchableEstimator({len(self._revisions)} revisions, latest={self._revisions[-1][1]!r})"


class CommDelayEstimator(Estimator):
    """Deterministic communication-delay estimate for a wire.

    The paper (II.G.1) notes delay estimators must not read
    non-deterministic state like live queue sizes; a constant expected
    delay is the crude-but-sound choice, optionally plus a per-byte term
    driven by a deterministic payload-size feature.
    """

    def __init__(self, base_ticks: int, per_unit_ticks: int = 0, unit_feature: str = "bytes"):
        if base_ticks < 0 or per_unit_ticks < 0:
            raise VirtualTimeError("delay estimate terms must be non-negative")
        self.base_ticks = int(base_ticks)
        self.per_unit_ticks = int(per_unit_ticks)
        self.unit_feature = unit_feature

    def estimate(self, features: Mapping[str, int]) -> int:
        return self.base_ticks + self.per_unit_ticks * int(
            features.get(self.unit_feature, 0)
        )

    def __repr__(self) -> str:
        if self.per_unit_ticks:
            return (f"CommDelayEstimator({self.base_ticks} + "
                    f"{self.per_unit_ticks}*{self.unit_feature})")
        return f"CommDelayEstimator({self.base_ticks})"


class QueueCorrelatedDelayEstimator(CommDelayEstimator):
    """Load-aware communication-delay estimate (paper II.G.1).

    "[A delay estimator] can be a function based upon expected queuing
    delay.  To be deterministic, it cannot depend upon non-deterministic
    state such as the current queue size.  It must instead use
    deterministic factors that correlate with queue size, such as the
    number of messages sent within a recent number of virtual ticks."

    The estimate is ``base + per_recent * n`` where ``n`` is the number
    of data ticks this wire carried within the trailing ``window_ticks``
    of virtual time — a pure function of the emitted-message history, so
    it replays identically.  The plain :meth:`estimate` (no load
    context) returns the load-free minimum, which keeps silence facts
    (lower bounds on future output times) sound unchanged.
    """

    def __init__(self, base_ticks: int, per_recent_ticks: int,
                 window_ticks: int):
        super().__init__(base_ticks)
        if per_recent_ticks < 0 or window_ticks <= 0:
            raise VirtualTimeError("invalid load-estimate parameters")
        self.per_recent_ticks = int(per_recent_ticks)
        self.window_ticks = int(window_ticks)

    def estimate_with_load(self, features: Mapping[str, int],
                           recent_count: int) -> int:
        """Estimate given the deterministic recent-emission count."""
        return self.base_ticks + self.per_recent_ticks * int(recent_count)

    def __repr__(self) -> str:
        return (f"QueueCorrelatedDelayEstimator({self.base_ticks} + "
                f"{self.per_recent_ticks}/msg over {self.window_ticks} ticks)")
