"""Ports and wires.

Components interact *only* through ports (the paper's "components do not
share memory" restriction):

* :class:`OutputPort` — one-way asynchronous send.  A port may be wired
  to several receivers (fan-out); each attachment is its own wire.
* :class:`ServicePort` — two-way call with reply.  Handlers performing
  calls are generators: ``reply = yield port.call(payload)``.
* :class:`WireSpec` — static description of one wire, fixed at
  deployment ("the code and wiring of the components are known prior to
  deployment").  Wire ids are globally unique and provide the
  deterministic tie-break of paper footnote 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core.estimators import CommDelayEstimator
from repro.errors import ComponentError, WiringError


@dataclass(frozen=True)
class WireSpec:
    """One directed wire in the application graph.

    ``kind`` is one of ``"data"`` (one-way send), ``"call"`` (service
    request), ``"reply"`` (service response), or ``"external"`` (ingress
    from an external producer / egress to an external consumer).
    """

    wire_id: int
    kind: str
    src_component: Optional[str]  # None for external ingress
    src_port: Optional[str]
    dst_component: Optional[str]  # None for external egress
    dst_input: Optional[str]
    delay_estimator: CommDelayEstimator = field(
        default_factory=lambda: CommDelayEstimator(0)
    )

    def __str__(self) -> str:
        src = f"{self.src_component}.{self.src_port}" if self.src_component else "<external>"
        dst = f"{self.dst_component}.{self.dst_input}" if self.dst_component else "<external>"
        return f"wire#{self.wire_id} {src} -> {dst} [{self.kind}]"


class OutputPort:
    """A one-way output declared by a component in ``setup()``.

    ``send`` does not transmit immediately: sends are buffered by the
    runtime while the handler executes and released when the handler's
    (simulated) computation completes, each stamped with its estimated
    virtual arrival time.
    """

    def __init__(self, component: "Component", name: str):
        self.component = component
        self.name = name
        #: Wire specs attached at deployment (fan-out allowed).
        self.wires: List[WireSpec] = []

    def attach(self, wire: WireSpec) -> None:
        """Bind a wire to this port (deployment-time only)."""
        if any(w.wire_id == wire.wire_id for w in self.wires):
            raise WiringError(f"wire {wire.wire_id} already attached to {self}")
        self.wires.append(wire)

    def send(self, payload: Any) -> None:
        """Queue ``payload`` for delivery on every attached wire."""
        runtime = self.component._runtime
        if runtime is None:
            raise ComponentError(
                f"{self.component.name}.{self.name}: send outside a deployed runtime"
            )
        runtime.queue_send(self, payload)

    def send_at(self, payload: Any, vt: int) -> None:
        """Queue ``payload`` with a user-supplied virtual time.

        The time-aware-component extension the paper's discussion
        anticipates ("timestamps represent arrival deadlines"): the
        message is scheduled to be processed at virtual time ``vt``
        rather than at the estimator's completion time.  ``vt`` must be
        a deterministic function of the component's inputs (like any
        estimate) and must not precede the earliest causally possible
        delivery, or the runtime rejects it.
        """
        runtime = self.component._runtime
        if runtime is None:
            raise ComponentError(
                f"{self.component.name}.{self.name}: send outside a deployed runtime"
            )
        runtime.queue_send(self, payload, at_vt=int(vt))

    def __repr__(self) -> str:
        return f"OutputPort({self.component.name}.{self.name}, wires={len(self.wires)})"


class CallTicket:
    """A pending two-way call, produced by :meth:`ServicePort.call`.

    Handlers yield the ticket; the runtime sends the request, suspends
    the component, and resumes the generator with the reply payload.
    """

    __slots__ = ("port", "payload")

    def __init__(self, port: "ServicePort", payload: Any):
        self.port = port
        self.payload = payload

    def __repr__(self) -> str:
        return f"CallTicket({self.port.component.name}.{self.port.name})"


class ServicePort(OutputPort):
    """A two-way service-call port.

    Exactly one call wire (plus its paired reply wire) may be attached:
    a service port targets one service.
    """

    def __init__(self, component: "Component", name: str):
        super().__init__(component, name)
        self.reply_wire: Optional[WireSpec] = None

    def attach(self, wire: WireSpec) -> None:
        if self.wires:
            raise WiringError(
                f"service port {self.component.name}.{self.name} already wired"
            )
        super().attach(wire)

    def attach_reply(self, wire: WireSpec) -> None:
        """Bind the reply wire (created automatically at deployment)."""
        if self.reply_wire is not None:
            raise WiringError(
                f"service port {self.component.name}.{self.name} already has a reply wire"
            )
        self.reply_wire = wire

    def call(self, payload: Any) -> CallTicket:
        """Create a call ticket; must be ``yield``-ed by the handler."""
        if not self.wires:
            raise WiringError(
                f"service port {self.component.name}.{self.name} is not wired"
            )
        return CallTicket(self, payload)

    def send(self, payload: Any) -> None:
        raise ComponentError(
            f"service port {self.component.name}.{self.name}: use call(), not send()"
        )
