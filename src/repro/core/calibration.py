"""Estimator calibration by linear regression (paper Eq. 2, Figure 2).

"Before execution, a rough estimate of the βᵢ's is made based upon known
costs per instruction.  Later, after some execution samples are taken,
measuring ξ₁, ξ₂, and t, a linear regression is taken to fit the
coefficients."

:class:`LinearRegressionCalibrator` accumulates (feature vector, measured
duration) samples and fits ordinary least squares, optionally through the
origin (the paper fits ``y = 61.827x`` with no intercept).  The result
carries the diagnostics Figure 2 reports: R², residual skewness (the
paper: "highly right-skewed"), and the residual–regressor correlation
(the paper: "close to zero correlation ... hence a good linear fit").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.estimators import LinearEstimator
from repro.errors import ComponentError


@dataclass
class RegressionResult:
    """Fitted coefficients plus goodness-of-fit diagnostics."""

    feature_names: Tuple[str, ...]
    coefficients: Tuple[float, ...]
    intercept: float
    r_squared: float
    n_samples: int
    residual_mean: float
    residual_std: float
    residual_skewness: float
    #: Pearson correlation between residual and each regressor.
    residual_feature_corr: Tuple[float, ...]

    def to_estimator(self) -> LinearEstimator:
        """Round the fit into an integer-tick :class:`LinearEstimator`."""
        per_feature = {
            name: int(round(coef))
            for name, coef in zip(self.feature_names, self.coefficients)
        }
        return LinearEstimator(per_feature, max(0, int(round(self.intercept))))

    def coefficient(self, name: str) -> float:
        """The fitted coefficient of one feature."""
        try:
            return self.coefficients[self.feature_names.index(name)]
        except ValueError:
            raise ComponentError(f"no coefficient for feature '{name}'") from None


class LinearRegressionCalibrator:
    """Accumulates samples and fits Eq. (1) by ordinary least squares."""

    def __init__(self, feature_names: Sequence[str], fit_intercept: bool = False):
        if not feature_names:
            raise ComponentError("calibrator needs at least one feature")
        self.feature_names: Tuple[str, ...] = tuple(feature_names)
        self.fit_intercept = fit_intercept
        self._rows: List[Tuple[Tuple[int, ...], int]] = []

    def add_sample(self, features: Mapping[str, int], duration_ticks: int) -> None:
        """Record one measured execution."""
        row = tuple(int(features.get(name, 0)) for name in self.feature_names)
        self._rows.append((row, int(duration_ticks)))

    def __len__(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        """Drop all samples (e.g. after a re-calibration is applied)."""
        self._rows.clear()

    def fit(self) -> RegressionResult:
        """Fit OLS over the accumulated samples."""
        if len(self._rows) < len(self.feature_names) + (1 if self.fit_intercept else 0):
            raise ComponentError(
                f"need at least {len(self.feature_names) + int(self.fit_intercept)} "
                f"samples, have {len(self._rows)}"
            )
        x = np.array([row for row, _ in self._rows], dtype=float)
        y = np.array([dur for _, dur in self._rows], dtype=float)

        if self.fit_intercept:
            design = np.hstack([x, np.ones((len(y), 1))])
        else:
            design = x
        solution, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            coefs = solution[:-1]
            intercept = float(solution[-1])
        else:
            coefs = solution
            intercept = 0.0

        predicted = design @ solution
        residuals = y - predicted
        # R^2 convention matches the paper's through-origin fit: compare
        # against the mean-only model.
        ss_res = float(np.sum(residuals**2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

        res_std = float(residuals.std(ddof=1)) if len(y) > 1 else 0.0
        skew = _skewness(residuals)
        corrs = tuple(
            _safe_corr(residuals, x[:, i]) for i in range(x.shape[1])
        )
        return RegressionResult(
            feature_names=self.feature_names,
            coefficients=tuple(float(c) for c in coefs),
            intercept=intercept,
            r_squared=r_squared,
            n_samples=len(y),
            residual_mean=float(residuals.mean()),
            residual_std=res_std,
            residual_skewness=skew,
            residual_feature_corr=corrs,
        )


def _skewness(values: np.ndarray) -> float:
    """Sample skewness (Fisher-Pearson, no bias correction)."""
    if len(values) < 3:
        return 0.0
    centered = values - values.mean()
    std = values.std()
    if std == 0:
        return 0.0
    return float(np.mean(centered**3) / std**3)


def _safe_corr(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation, 0.0 when either side is constant."""
    if len(a) < 2 or a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


class DriftMonitor:
    """Detects sustained divergence between virtual and real time.

    Powers dynamic re-tuning (paper II.G.4): when the mean signed error
    between estimated and actual cost exceeds ``threshold_fraction`` of
    the mean actual cost over a window, the monitor recommends a
    determinism-fault re-calibration.
    """

    def __init__(self, window: int = 200, threshold_fraction: float = 0.05):
        if window < 2:
            raise ComponentError("drift window must be >= 2")
        self.window = window
        self.threshold_fraction = threshold_fraction
        self._errors: List[int] = []
        self._actuals: List[int] = []

    def observe(self, estimated_ticks: int, actual_ticks: int) -> None:
        """Record one (estimated, actual) pair."""
        self._errors.append(int(estimated_ticks) - int(actual_ticks))
        self._actuals.append(int(actual_ticks))
        if len(self._errors) > self.window:
            self._errors.pop(0)
            self._actuals.pop(0)

    def drifting(self) -> bool:
        """True when the window is full and mean error exceeds threshold."""
        if len(self._errors) < self.window:
            return False
        mean_actual = sum(self._actuals) / len(self._actuals)
        if mean_actual <= 0:
            return False
        mean_error = sum(self._errors) / len(self._errors)
        return abs(mean_error) > self.threshold_fraction * mean_actual

    def mean_error(self) -> float:
        """Mean signed (estimated - actual) error over the window."""
        if not self._errors:
            return 0.0
        return sum(self._errors) / len(self._errors)
