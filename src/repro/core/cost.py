"""Handler cost models.

A cost model describes the execution cost of one message handler along
two axes that TART must keep separate:

* the **true nominal cost** — the physical time the computation "really"
  takes on an ideal machine; the jitter model perturbs this to produce
  the actual simulated duration;
* the **estimated cost** — what the (possibly wrong, possibly
  re-calibrated) estimator predicts; this is what virtual times are built
  from.

Both are driven by a deterministic **feature vector** extracted from the
input payload — the paper's basic-block execution counts ξ.  In the
Java system the transformation inserts block counters; here the component
author supplies the extractor (e.g. ``lambda sent: {"loop": len(sent)}``
for Code Body 1, whose iteration count is known from the input).

Prescience (paper III.A) is a property of *probe answers*, not of
estimation: a prescient sender knows its remaining iteration count when
probed mid-execution; a non-prescient one must assume the minimum.  The
cost model exposes :meth:`CostModel.min_features` for the non-prescient
answer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.estimators import ConstantEstimator, Estimator, LinearEstimator, SwitchableEstimator
from repro.errors import ComponentError

FeatureExtractor = Callable[[object], Dict[str, int]]


def _no_features(_payload: object) -> Dict[str, int]:
    return {}


class CostModel:
    """Cost description for a single-segment handler (no service calls)."""

    def __init__(
        self,
        estimator: Estimator,
        features: Optional[FeatureExtractor] = None,
        true_per_feature: Optional[Mapping[str, int]] = None,
        true_intercept: int = 0,
        min_features: Optional[Mapping[str, int]] = None,
    ):
        self.estimator = SwitchableEstimator(estimator)
        self._extract = features or _no_features
        self._true = LinearEstimator(true_per_feature or {}, true_intercept)
        self._min_features: Dict[str, int] = dict(min_features or {})
        self.segments = 1

    # -- features -------------------------------------------------------
    def features(self, payload: object) -> Dict[str, int]:
        """Deterministic feature vector (block counts) for ``payload``."""
        feats = self._extract(payload)
        if not isinstance(feats, dict):
            raise ComponentError("feature extractor must return a dict")
        return feats

    def min_features(self) -> Dict[str, int]:
        """Feature vector of the cheapest possible execution.

        Used for non-prescient curiosity answers: a busy sender that does
        not know its remaining work promises only the minimum.
        """
        return dict(self._min_features)

    # -- costs ----------------------------------------------------------
    def true_nominal(self, features: Mapping[str, int]) -> int:
        """Physical nominal cost in ticks (input to the jitter model)."""
        return self._true.estimate(features)

    def estimated(self, features: Mapping[str, int], at_vt: int) -> int:
        """Estimated cost using the estimator revision in force at ``at_vt``."""
        return self.estimator.estimate_at(features, at_vt)

    def min_estimated(self, at_vt: int) -> int:
        """Estimated cost of the cheapest execution (non-prescient bound)."""
        return self.estimator.estimate_at(self._min_features, at_vt)

    def segment(self, index: int) -> "CostModel":
        """The cost model of segment ``index`` (trivial for one segment)."""
        if index != 0:
            raise ComponentError(f"single-segment cost model has no segment {index}")
        return self

    def clone(self) -> "CostModel":
        """Fresh copy with a pristine estimator revision history.

        Cost models are declared once on the handler *function* (class
        level); every component runtime clones them so determinism-fault
        revisions stay local to one engine incarnation and never leak
        across deployments or replicas.
        """
        initial = self.estimator.revisions()[0][1]
        fresh = CostModel(initial, self._extract, min_features=self._min_features)
        fresh._true = self._true
        return fresh

    def __repr__(self) -> str:
        return f"CostModel(est={self.estimator!r}, true={self._true!r})"


class LinearCost(CostModel):
    """Convenience: linear estimator whose truth defaults to its estimate.

    ``per_feature`` gives the *initial* estimator coefficients (ticks per
    block execution); ``true_per_feature`` overrides the physical truth
    when studying inaccurate estimators (paper Figure 4 sweeps the
    estimator coefficient while the physical cost stays fixed).
    """

    def __init__(
        self,
        per_feature: Mapping[str, int],
        features: FeatureExtractor,
        intercept: int = 0,
        true_per_feature: Optional[Mapping[str, int]] = None,
        true_intercept: Optional[int] = None,
        min_features: Optional[Mapping[str, int]] = None,
    ):
        if min_features is None:
            # Cheapest execution: every counted block runs once.
            min_features = {name: 1 for name in per_feature}
        super().__init__(
            estimator=LinearEstimator(per_feature, intercept),
            features=features,
            true_per_feature=true_per_feature if true_per_feature is not None else per_feature,
            true_intercept=true_intercept if true_intercept is not None else intercept,
            min_features=min_features,
        )


def fixed_cost(ticks: int) -> CostModel:
    """A handler that always costs ``ticks`` (both truly and estimated)."""
    return CostModel(
        estimator=ConstantEstimator(ticks),
        features=_no_features,
        true_per_feature={},
        true_intercept=ticks,
        min_features={},
    )


class SegmentedCost:
    """Cost model for a generator handler containing service calls.

    A handler that performs ``n`` two-way calls has ``n + 1`` execution
    segments; each segment gets its own :class:`CostModel`.  All segments
    share the feature vector extracted from the original input payload.
    """

    def __init__(self, segments: Sequence[CostModel],
                 features: Optional[FeatureExtractor] = None):
        if not segments:
            raise ComponentError("segmented cost needs at least one segment")
        self._segments: List[CostModel] = list(segments)
        self._extract = features or segments[0].features
        self.segments = len(segments)
        # The first segment's estimator is the one the calibrator retunes.
        self.estimator = self._segments[0].estimator

    def features(self, payload: object) -> Dict[str, int]:
        """Feature vector shared by all segments."""
        return self._extract(payload)

    def min_features(self) -> Dict[str, int]:
        """Minimum features of the first segment (probe lower bound)."""
        return self._segments[0].min_features()

    def segment(self, index: int) -> CostModel:
        """Cost model of execution segment ``index``."""
        try:
            return self._segments[index]
        except IndexError:
            raise ComponentError(
                f"handler yielded more calls than its {self.segments}-segment "
                f"cost model declares"
            ) from None

    def true_nominal(self, features: Mapping[str, int]) -> int:
        """Total physical cost across all segments."""
        return sum(seg.true_nominal(features) for seg in self._segments)

    def estimated(self, features: Mapping[str, int], at_vt: int) -> int:
        """Total estimated cost across all segments."""
        return sum(seg.estimated(features, at_vt) for seg in self._segments)

    def min_estimated(self, at_vt: int) -> int:
        """Cheapest-execution estimate of the first segment."""
        return self._segments[0].min_estimated(at_vt)

    def clone(self) -> "SegmentedCost":
        """Fresh copy with pristine per-segment estimators."""
        return SegmentedCost(
            [seg.clone() for seg in self._segments], self._extract
        )

    def __repr__(self) -> str:
        return f"SegmentedCost({self.segments} segments)"
