"""The component programming model.

A component is "any piece of software that (a) receives input requests,
(b) performs processing, (c) possibly holds state, and (d) possibly sends
messages" (paper II.B).  Authors subclass :class:`Component`, declare
state cells and output ports in :meth:`Component.setup`, and register
handlers with the :func:`on_message` / :func:`on_call` decorators:

.. code-block:: python

    class Sender(Component):
        def setup(self):
            self.counts = self.state.map("counts")
            self.port1 = self.output_port("port1")

        @on_message("input", cost=LinearCost(
            per_feature={"loop": 61_000},
            features=lambda sent: {"loop": len(sent)}))
        def process_sentence(self, sent):
            count = 0
            for word in sent:
                seen = self.counts.get(word, 0)
                self.counts[word] = seen + 1
                count += seen
            self.port1.send(count)

The decorator metadata is this reproduction's analogue of the paper's
deployment-time bytecode transformation: it tells the runtime how to
compute virtual times (the cost model / estimator) and the state cells
tell it what to checkpoint.  The handler body itself stays ordinary
Python.

Restrictions enforced (paper II.B): no shared memory (all interaction
through ports; payloads may be deep-copied at the wire), one message at a
time (the runtime serialises), no non-deterministic operations (the only
time source offered is :meth:`Component.now`, which returns *virtual*
time), and no blocking except two-way calls (``yield port.call(...)``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.cost import CostModel, SegmentedCost, fixed_cost
from repro.core.ports import OutputPort, ServicePort
from repro.core.state import StateRegistry
from repro.errors import ComponentError

#: Default handler cost when none is declared: 1 µs flat.
_DEFAULT_COST_TICKS = 1_000


@dataclass
class HandlerSpec:
    """Metadata attached to a handler method by the decorators."""

    input_name: str
    cost: Any  # CostModel or SegmentedCost
    two_way: bool
    method_name: str = ""

    def is_generator(self, fn: Callable) -> bool:
        """Whether the handler is written as a generator (makes calls)."""
        return inspect.isgeneratorfunction(fn)


def on_message(input_name: str, cost: Optional[Any] = None):
    """Register a method as the handler of one-way input ``input_name``."""

    def decorate(fn):
        fn._tart_handler = HandlerSpec(
            input_name=input_name,
            cost=cost if cost is not None else fixed_cost(_DEFAULT_COST_TICKS),
            two_way=False,
            method_name=fn.__name__,
        )
        return fn

    return decorate


def on_call(service_name: str, cost: Optional[Any] = None):
    """Register a method as the handler of two-way service ``service_name``.

    The handler's return value becomes the reply payload.
    """

    def decorate(fn):
        fn._tart_handler = HandlerSpec(
            input_name=service_name,
            cost=cost if cost is not None else fixed_cost(_DEFAULT_COST_TICKS),
            two_way=True,
            method_name=fn.__name__,
        )
        return fn

    return decorate


class Component:
    """Base class for user components.

    Instances are created by the deployment machinery — once on the
    active engine, and again on a replica after failover, where
    ``setup()`` re-declares the same cells/ports before the checkpoint is
    restored into them.  A component must therefore do all of its
    initialisation in :meth:`setup`, deterministically.
    """

    def __init__(self, name: str):
        self.name = name
        self.state = StateRegistry(name)
        self._output_ports: Dict[str, OutputPort] = {}
        self._runtime = None  # bound by ComponentRuntime

    # -- author-facing API ---------------------------------------------
    def setup(self) -> None:
        """Declare state cells and output ports.  Override in subclasses."""

    def output_port(self, name: str) -> OutputPort:
        """Declare a one-way output port (setup-time only)."""
        return self._declare_port(name, OutputPort(self, name))

    def service_port(self, name: str) -> ServicePort:
        """Declare a two-way service-call port (setup-time only)."""
        return self._declare_port(name, ServicePort(self, name))

    def now(self) -> int:
        """Current *virtual* time in ticks.

        This is the paper's deterministic timing service: the one
        permitted "system call".  Inside a handler it is the virtual
        time the message was dequeued at; identical on every replay.
        """
        if self._runtime is None:
            raise ComponentError(f"{self.name}: now() outside a deployed runtime")
        return self._runtime.current_vt

    # -- framework-facing API --------------------------------------------
    def _declare_port(self, name: str, port: OutputPort) -> OutputPort:
        if name in self._output_ports:
            raise ComponentError(f"{self.name}: duplicate port '{name}'")
        self._output_ports[name] = port
        return port

    def ports(self) -> Dict[str, OutputPort]:
        """All declared output/service ports by name."""
        return dict(self._output_ports)

    @classmethod
    def handler_specs(cls) -> Dict[str, HandlerSpec]:
        """Collect decorated handlers, keyed by input name.

        Scans the MRO so subclasses inherit and may override handlers.
        """
        specs: Dict[str, HandlerSpec] = {}
        for klass in reversed(cls.__mro__):
            for attr_name, attr in vars(klass).items():
                spec = getattr(attr, "_tart_handler", None)
                if spec is not None:
                    specs[spec.input_name] = spec
        return specs

    def handler_for(self, input_name: str) -> Callable:
        """The bound handler method for an input name."""
        spec = type(self).handler_specs().get(input_name)
        if spec is None:
            raise ComponentError(
                f"{self.name}: no handler registered for input '{input_name}'"
            )
        return getattr(self, spec.method_name)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
