"""Process runtime: TCP server + simulator pump for one cluster member.

Runnable as ``python -m repro.net.server --spec cluster.json --name
engine-e0`` (the :mod:`repro.net.cluster` coordinator spawns these).
Each process:

1. binds the listen address the spec assigns to its ``proc:<name>``
   control node and prints ``READY``;
2. waits for the coordinator's :class:`~repro.net.codec.GoSignal`, which
   carries the shared wall-clock epoch ``t0`` — every process maps real
   time to ticks from the same origin;
3. starts its host (engine or replica) and pumps the simulator with
   :class:`~repro.net.clock.RealtimeKernel` until a
   :class:`~repro.net.codec.Shutdown` arrives.

Inbound connection protocol (the receiving half of
:class:`~repro.net.channel.OutboundChannel`): a HELLO whose ``proto``
field does not match our :data:`~repro.net.codec.WIRE_VERSION` is
answered with a structured ``FRAME_ERROR`` and hung up (version
negotiation is enforced, not advisory); a valid HELLO is answered with
WELCOME carrying the *incarnation* of the hosted destination node, or
NOT_HERE when the node is not hosted here or no longer alive — the
latter also applies mid-stream: a connection whose destination died is
simply hung up, which forces the sender to re-handshake and cycle to
the node's next address candidate (where its promoted successor lives).

Items arrive as singleton ITEM frames or as BATCH frames carrying many
ITEM bodies.  Acknowledgements are *coalesced*: one cumulative ACK is
written per received frame — a batch of N items costs one ack write
instead of the historical N — and the ack carries the connection's next
expected sequence number either way.

Receiver-side dedup state is keyed by (sender peer, destination node,
destination *incarnation*): a promoted node starts with a clean slate,
matching the sender's channel-sequence restart on epoch reset, while
same-incarnation reconnect replays are deduplicated exactly.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import uuid
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.net import codec
from repro.net.clock import RealtimeClock, RealtimeKernel
from repro.net.heartbeat import ReplicaHost
from repro.net.node import ControlNode, EngineHost, NetTransport
from repro.net.topology import ClusterSpec
from repro.sim.kernel import Simulator


class ProcessRuntime:
    """Sockets, pump, and hosting state for one cluster process."""

    def __init__(self, name: str, spec: ClusterSpec):
        self.name = name
        self.spec = spec
        self.sim = Simulator()
        self.clock = RealtimeClock(spec.speed)
        self.peer_id = f"{name}:{uuid.uuid4().hex[:8]}"
        self.transport = NetTransport(self.sim, spec, self.peer_id)
        self.rtk = RealtimeKernel(self.sim, self.clock,
                                  congestion_check=self.transport.congested)
        self.control = ControlNode(f"proc:{name}")
        self.transport.register(self.control)
        #: (peer, dst node, dst incarnation) -> next expected channel seq.
        self._recv_expected: Dict[Tuple[str, str, str], int] = {}
        self.go = asyncio.Event()
        self.go_t0: Optional[float] = None
        self.stopping = asyncio.Event()
        self.host = None
        self._server: Optional[asyncio.AbstractServer] = None
        #: Connections that died mid-frame (truncation, not clean EOF).
        self.torn_frames = 0
        #: HELLOs rejected for a mismatched ``proto`` field.
        self.proto_rejects = 0

    # -- inbound protocol ------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        try:
            frame = await asyncio.wait_for(codec.read_frame(reader),
                                           timeout=10.0)
            if frame is None or frame[0] != codec.FRAME_HELLO:
                return
            proto = frame[1].get("proto")
            if proto != codec.WIRE_VERSION:
                # Version negotiation is enforced: answer with a
                # structured reject so the peer can log why, then hang
                # up before any WELCOME leaks an incarnation.
                self.proto_rejects += 1
                writer.write(codec.encode_error(
                    f"unsupported wire protocol {proto!r}; "
                    f"{self.name} speaks {codec.WIRE_VERSION}"
                ))
                await writer.drain()
                return
            peer = str(frame[1].get("peer", ""))
            dst = str(frame[1].get("dst", ""))
            node = self.transport.local_node(dst)
            if node is None or not node.alive:
                writer.write(codec.encode_not_here())
                await writer.drain()
                return
            incarnation = self.transport.incarnations[dst]
            writer.write(codec.encode_welcome(incarnation))
            await writer.drain()
            await self._item_loop(reader, writer, peer, (peer, dst,
                                                         incarnation))
        except codec.CodecError:
            pass  # malformed peer: hang up
        except TransportError:
            self.torn_frames += 1  # died mid-frame: a reset, not an EOF
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        except asyncio.CancelledError:
            pass  # loop teardown cancels open connection handlers
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _item_loop(self, reader, writer, peer: str, key) -> None:
        encoder = codec.FrameEncoder()
        while True:
            frame = await codec.read_frame(reader)
            if frame is None:
                return
            tag, body = frame
            if tag == codec.FRAME_ITEM:
                items = (body,)
            elif tag == codec.FRAME_BATCH:
                items = codec.batch_items(body)
            else:
                continue
            for item in items:
                if not self._accept_item(item, peer, key):
                    # Destination died under this connection: hang up so
                    # the sender re-handshakes and finds the promoted
                    # successor at the next address candidate.
                    return
            # Ack coalescing: one cumulative ACK per received frame —
            # a batch of N items costs one ack write, not N.
            writer.write(encoder.encode_ack(self._recv_expected.get(key, 0)))
            await writer.drain()

    def _accept_item(self, body, peer: str, key) -> bool:
        """Dedup + deliver one ITEM body; False when the target is gone."""
        dst_node = str(body.get("dst", ""))
        target = self.transport.local_node(dst_node)
        if target is None or not target.alive:
            return False
        seq = int(body.get("seq", 0))
        expected = self._recv_expected.get(key, 0)
        if seq >= expected:
            # Fresh (seq == expected) — or the sender is ahead of
            # us, which only a lost dedup entry can cause: resync to
            # the sender rather than black-holing its stream.
            self._recv_expected[key] = seq + 1
            msg = codec.decode_message(body.get("msg"))
            if not self._control_message(msg):
                self.transport.note_item_source(
                    str(body.get("src", "")), peer
                )
                self.rtk.inject(
                    lambda m=msg, d=dst_node: self.transport.deliver(d, m)
                )
        return True

    def _control_message(self, msg) -> bool:
        """Handle cluster-control messages synchronously.

        GO and Shutdown cannot go through the pump — it is not running
        before GO and must be stopped by Shutdown.  The fence is also
        immediate: its entire point is to silence the engine *now*, not
        at the pump's convenience.
        """
        if isinstance(msg, codec.GoSignal):
            self.go_t0 = msg.t0
            self.clock.speed = float(msg.speed)
            self.go.set()
            return True
        if isinstance(msg, codec.Shutdown):
            self.stopping.set()
            return True
        if isinstance(msg, codec.FenceRequest):
            node = self.transport.local_node(msg.engine_id)
            if node is not None and node.alive:
                node.halt()
            return True
        if isinstance(msg, codec.CorruptRequest):
            # Chaos fault: plant an untracked state mutation.  Injected
            # through the pump so the corruption lands at a well-defined
            # simulated instant, like every other state change.
            def _corrupt(m=msg):
                node = self.transport.local_node(m.engine_id)
                if node is None or not node.alive or not hasattr(node, "runtimes"):
                    return
                from repro.runtime.audit import corrupt_component_state

                victim = corrupt_component_state(node, m.component or None)
                print(f"chaos: corrupted {victim} on {m.engine_id}",
                      file=sys.stderr, flush=True)

            self.rtk.inject(_corrupt)
            return True
        return False

    # -- lifecycle -------------------------------------------------------
    async def serve(self, host_factory: Optional[Callable] = None,
                    announce: Callable[[str], None] = print) -> None:
        """Run the full process lifecycle (returns after Shutdown)."""
        listen_host, listen_port = self.spec.listen_addr(self.name)
        self._server = await asyncio.start_server(
            self._handle_conn, listen_host, listen_port
        )
        if host_factory is not None:
            self.host = host_factory(self)
        announce("READY")
        await self.go.wait()
        self.clock.set_epoch(self.go_t0)
        if self.host is not None:
            self.host.start()
        pump = asyncio.get_running_loop().create_task(
            self.rtk.run(), name=f"pump:{self.name}"
        )
        await self.stopping.wait()
        # Grace period: let in-flight frames and acks drain.
        await asyncio.sleep(0.1)
        self.rtk.stop()
        await pump
        self.transport.export_metrics()
        stats = self.transport.channel_counters()
        if stats:
            summary = " ".join(
                f"{dst}:r{c['reconnects']}/cf{c['connect_failures']}"
                f"/rs{c['items_resent']}/er{c['epoch_resets']}"
                for dst, c in stats.items()
            )
            print(f"channels: {summary}", file=sys.stderr, flush=True)
        if self.torn_frames or self.proto_rejects:
            print(f"inbound: torn_frames={self.torn_frames} "
                  f"proto_rejects={self.proto_rejects}",
                  file=sys.stderr, flush=True)
        report = None
        if self.host is not None and hasattr(self.host, "audit_report"):
            report = self.host.audit_report()
        if report is not None:
            import json

            announce("AUDIT " + json.dumps(report, sort_keys=True))
        await self.transport.close()
        self._server.close()
        await self._server.wait_closed()


def host_factory_for(name: str, spec: ClusterSpec) -> Callable:
    """The host constructor for a process name.

    ``engine-<id>`` hosts the active engine; ``replica-<id>[.<rank>]``
    hosts one follower of <id>'s replication group (rank 0 when the
    suffix is absent).  Engine ids cannot contain ``.`` (spec
    validation), so the rank suffix parses unambiguously.
    """
    if name.startswith("engine-"):
        engine_id = name[len("engine-"):]
        return lambda rt: EngineHost(spec, engine_id, rt.sim, rt.transport)
    if name.startswith("replica-"):
        engine_id, rank = name[len("replica-"):], 0
        base, dot, suffix = engine_id.rpartition(".")
        if dot and suffix.isdigit():
            engine_id, rank = base, int(suffix)
        return lambda rt: ReplicaHost(spec, engine_id, rt.sim, rt.transport,
                                      rank=rank)
    raise SystemExit(f"unknown process role in name {name!r} "
                     f"(expect engine-<id> or replica-<id>[.<rank>])")


def _announce(line: str) -> None:
    print(line, flush=True)


async def run_process(spec: ClusterSpec, name: str) -> None:
    runtime = ProcessRuntime(name, spec)
    await runtime.serve(host_factory_for(name, spec), announce=_announce)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.server",
        description="Host one engine or replica process of a repro.net "
                    "cluster (spawned by repro.net.cluster).",
    )
    parser.add_argument("--spec", required=True,
                        help="path to the cluster spec JSON")
    parser.add_argument("--name", required=True,
                        help="process name from the spec layout, "
                             "e.g. engine-e0 or replica-e0")
    args = parser.parse_args(argv)
    spec = ClusterSpec.from_json(Path(args.spec).read_text())
    asyncio.run(run_process(spec, args.name))
    return 0


if __name__ == "__main__":
    sys.exit(main())
