"""Node hosting: the seam between the simulated runtime and the net.

Every :mod:`repro.net` process builds the *complete* deployment from the
shared :class:`~repro.net.topology.ClusterSpec` — identical wire tables,
estimators, and RNG streams everywhere — then cannibalizes it: the nodes
this process hosts are kept live and rewired onto a :class:`NetTransport`
(which routes locally-hosted destinations through the local simulator and
everything else through socket channels), while the rest become inert
zombies that never start.

The engine scheduling loop is not forked: :class:`EngineHost` runs the
stock :class:`~repro.runtime.engine.ExecutionEngine` against the process
simulator pumped by :class:`~repro.net.clock.RealtimeKernel`.  The one
semantic adjustment is that external input wires are re-flagged
``external=False``: the scheduler's local-clock freshness bound ("any
future external message is stamped no earlier than the current real
time") presumes the ingress shares the engine's clock, which is untrue
across machines.  With the flag off, ingress silence travels as explicit
:class:`~repro.core.message.SilenceAdvance` facts answered to curiosity
probes — sound on any transport, and exactly the paper's pessimistic
baseline.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Callable, Dict, Optional

from repro.errors import FenceDeliveryError
from repro.net import codec
from repro.net.channel import OutboundChannel, send_fence_once
from repro.net.topology import ClusterSpec, build_deployment
from repro.runtime.app import Deployment
from repro.runtime.engine import ExecutionEngine
from repro.sim.kernel import Simulator


class ControlNode:
    """Per-process node addressing the GO/shutdown barrier.

    Hosted as ``proc:<process name>`` in every process so the
    coordinator's control channel has a handshake target; the control
    messages themselves are intercepted by the server's connection loop
    (they must work before the simulator pump starts).
    """

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.alive = True

    def receive(self, item: Any) -> None:  # pragma: no cover - intercepted
        pass


class NetTransport:
    """Duck-type of :class:`~repro.runtime.transport.Network` over TCP.

    Implements the surface the runtime objects actually use — ``send``,
    ``register``, ``fail_node``, ``sim`` — plus hosting bookkeeping for
    the server.  Destinations hosted in this process are delivered
    through the local simulator (zero-delay, like co-located nodes in
    the simulated network); all others go out over an
    :class:`~repro.net.channel.OutboundChannel` to wherever the cluster
    spec says the node lives.
    """

    def __init__(self, sim: Simulator, spec: ClusterSpec, peer_id: str):
        self.sim = sim
        self.spec = spec
        self.peer_id = peer_id
        #: Optional MetricSet the per-channel counters are exported to
        #: (see :meth:`export_metrics`); hosts wire their deployment's.
        self.metrics = None
        #: Fence attempts that exhausted their retry budget (see
        #: :class:`RemoteEngineHandle`).
        self.fence_failures = 0
        self._local: Dict[str, Any] = {}
        #: node id -> incarnation string advertised in WELCOME frames.
        self.incarnations: Dict[str, str] = {}
        self._incarnation_counter = 0
        self._channels: Dict[str, OutboundChannel] = {}
        #: node id -> peer currently observed hosting it (from inbound
        #: traffic); seeds redirects for channels created later.
        self._node_hosts: Dict[str, str] = {}

    # -- hosting --------------------------------------------------------
    def register(self, node) -> None:
        """Host (or re-host) a node here; bumps its incarnation."""
        self._local[node.node_id] = node
        self._incarnation_counter += 1
        self.incarnations[node.node_id] = (
            f"{self.peer_id}#{self._incarnation_counter}"
        )

    def local_node(self, node_id: str):
        """The locally hosted node with this id, or None."""
        return self._local.get(node_id)

    # -- Network surface used by engines/replicas/ingresses -------------
    def send(self, src_id: str, dst_id: str, item: Any) -> None:
        node = self._local.get(dst_id)
        if node is not None:
            if node.alive:
                self.sim.call_soon(lambda: self._deliver_local(dst_id, item),
                                   f"net-local:{dst_id}")
            # else: fail-stop — traffic to a locally dead node is lost.
            return
        self.channel_to(dst_id).enqueue(src_id, item)

    def _deliver_local(self, dst_id: str, item: Any) -> None:
        node = self._local.get(dst_id)
        if node is not None and node.alive:
            node.receive(item)

    def deliver(self, dst_id: str, item: Any) -> bool:
        """Hand an item arriving off the wire to a hosted node.

        Called from the pump (via ``RealtimeKernel.inject``), so the
        simulator is at the current real tick and the handler may
        schedule freely.  Returns False when the destination is not
        hosted or dead, so the server can hang up and force senders to
        re-resolve the node's location.
        """
        node = self._local.get(dst_id)
        if node is None or not node.alive:
            return False
        node.receive(item)
        return True

    def fail_node(self, node_id: str) -> None:
        """Epoch-reset the channel toward a declared-failed node."""
        channel = self._channels.get(node_id)
        if channel is not None:
            channel.reset()

    def note_item_source(self, src_node: str, from_peer: str) -> None:
        """Record where traffic *from* ``src_node`` is arriving from.

        Called by the server for every inbound ITEM, before the item is
        handed to the pump.  If we hold a channel *toward* that node and
        it is pointed at a different host, the node has moved (its
        replica was promoted) — redirect the channel now, so replies to
        this very item are enqueued into the new epoch rather than being
        dropped when the reconnect loop discovers the move later.
        """
        self._node_hosts[src_node] = from_peer
        channel = self._channels.get(src_node)
        if channel is not None:
            channel.redirect(from_peer)

    # -- channels -------------------------------------------------------
    def channel_to(self, dst_node: str) -> OutboundChannel:
        channel = self._channels.get(dst_node)
        if channel is None:
            addresses = self.spec.addresses.get(dst_node)
            if not addresses:
                raise codec.CodecError(
                    f"{self.peer_id}: no address for node {dst_node!r}"
                )
            channel = OutboundChannel(
                self.peer_id, dst_node, addresses,
                backoff_min=self.spec.backoff_min_s,
                backoff_max=self.spec.backoff_max_s,
                connect_timeout=self.spec.connect_timeout_s,
                handshake_timeout=self.spec.handshake_timeout_s,
                jitter_seed=self.spec.master_seed,
                batch_max_items=self.spec.batch_max_items,
            )
            host = self._node_hosts.get(dst_node)
            if host is not None:
                channel.redirect(host)
            self._channels[dst_node] = channel
            channel.start()
        return channel

    def congested(self) -> bool:
        """Whether any outbound channel is over its high-water mark."""
        return any(ch.congested() for ch in self._channels.values())

    def channel_counters(self) -> Dict[str, Dict[str, int]]:
        """dst node -> its channel's fault/retransmit/epoch counters."""
        return {dst: ch.counters()
                for dst, ch in sorted(self._channels.items())}

    def export_metrics(self, metrics=None) -> None:
        """Flush per-channel counters into a :class:`MetricSet`.

        Counters land twice: per destination (``chan.<dst>.<name>``,
        read back with ``MetricSet.channel_counters``) and as cluster
        totals (``channel_<name>_total``).  Call once at teardown —
        exporting mid-run would double-count.
        """
        sink = metrics if metrics is not None else self.metrics
        if sink is None:
            return
        for dst, counters in self.channel_counters().items():
            for name, value in counters.items():
                if value:
                    sink.count(f"chan.{dst}.{name}", value)
                sink.count(f"channel_{name}_total", value)
        if self.fence_failures:
            sink.count("channel_fence_failures_total", self.fence_failures)

    async def close(self) -> None:
        for channel in list(self._channels.values()):
            await channel.close()
        self._channels.clear()


class RemoteEngineHandle:
    """Replica-side stand-in for the engine running in another process.

    Gives :class:`~repro.runtime.recovery.RecoveryManager` the two
    things it touches on the failed engine — ``alive`` and ``halt()`` —
    where ``halt`` becomes a best-effort *fence*: a one-shot FenceRequest
    fired at the engine's primary address only (never the replica-side
    address, so a completed promotion can never fence itself).  Fencing
    bypasses the normal channel on purpose: ``fail_node`` resets that
    channel, which would silently drop a fence queued through it.
    """

    def __init__(self, engine_id: str, spec: ClusterSpec, peer_id: str,
                 transport: Optional["NetTransport"] = None, rank: int = 0):
        self.node_id = engine_id
        self.engine_id = engine_id
        self.alive = True
        self._spec = spec
        self._peer_id = peer_id
        self._transport = transport
        #: Promotion rank of the follower process holding this handle.
        self.rank = int(rank)

    def halt(self) -> None:
        """Fence every process that may still host a stale incarnation.

        The engine node's address candidates are ordered primary first,
        then the follower processes in promotion (rank) order.  When
        rank *r* promotes, the engine may previously have been hosted by
        the primary or by any follower of rank < r (each earlier link in
        the succession line) — fence them all; never our own process or
        higher ranks, which cannot have hosted the engine yet.
        """
        self.alive = False
        addresses = self._spec.addresses.get(self.engine_id) or []
        for idx, address in enumerate(addresses[:1 + self.rank]):
            asyncio.get_running_loop().create_task(
                self._fence(tuple(address)),
                name=f"fence:{self.engine_id}:{idx}",
            )

    async def _fence(self, address) -> None:
        """Deliver the fence within the spec's capped retry budget.

        Exhausting the budget is not fatal to the promotion (the common
        cause is that the primary is simply dead), but it is recorded:
        the structured :class:`~repro.errors.FenceDeliveryError` is
        logged and counted so a partitioned-but-alive primary shows up
        in the run report instead of vanishing into a silent False.
        """
        try:
            await send_fence_once(
                address, self._peer_id, self.engine_id,
                attempts=self._spec.fence_attempts,
                gap=self._spec.fence_gap_s,
            )
        except FenceDeliveryError as exc:
            if self._transport is not None:
                self._transport.fence_failures += 1
            print(f"fence: {exc}", file=sys.stderr, flush=True)


class EngineHost:
    """One process hosting one active execution engine."""

    def __init__(self, spec: ClusterSpec, engine_id: str,
                 sim: Simulator, transport: NetTransport):
        self.spec = spec
        self.engine_id = engine_id
        self.transport = transport
        self.deployment: Deployment = build_deployment(spec, sim=sim)
        for other_id, other in self.deployment.engines.items():
            if other_id != engine_id:
                other.halt()  # zombie: never starts, never speaks
        self.engine: ExecutionEngine = self.deployment.engines[engine_id]
        self.engine.network = transport
        transport.metrics = self.deployment.metrics
        disable_external_clock_bound(self.engine)
        transport.register(self.engine)
        # A self-heal rewrites the engine's state in place; re-registering
        # turns the epoch bump into a real transport incarnation, so new
        # handshakes see a fresh identity for the healed node.
        self.engine.on_heal = lambda: transport.register(self.engine)

    def start(self) -> None:
        """Begin checkpointing and heartbeats (post-GO)."""
        self.engine.start()

    def audit_report(self):
        """Audit/cadence outcome for the teardown report line."""
        return engine_audit_report(self.engine)


def engine_audit_report(engine: ExecutionEngine):
    """Structured audit + cadence summary of one engine (None if both
    features are off — the server then prints no AUDIT line)."""
    if engine.auditor is None and engine.cadence is None:
        return None
    report = {"engine": engine.engine_id}
    if engine.auditor is not None:
        report.update(engine.auditor.report())
    if engine.cadence is not None:
        cadence = engine.cadence
        report["cadence"] = {
            "interval_ticks": cadence.interval,
            "predicted_replay_ticks": cadence.predicted_replay_ticks(),
            "budget_ticks": cadence._budget_ticks(),
            "adjustments": cadence.adjustments,
        }
    return report


def disable_external_clock_bound(engine: ExecutionEngine) -> None:
    """Re-flag the engine's external input wires as non-external.

    See the module docstring: the ``external`` fast path lower-bounds
    future arrivals by the local clock, which is only sound when the
    ingress timestamps with *this* engine's clock.  Over the network the
    ingress runs elsewhere, so the engine must rely on the explicit
    silence facts the ingress already answers to curiosity probes.
    """
    for runtime in engine.runtimes.values():
        for wire in runtime.in_wires.values():
            if wire.external:
                wire.external = False
