"""Cluster topology: the spec every process derives its world from.

A :class:`ClusterSpec` is a JSON document describing one networked
deployment: the application, placement, seeds, timing knobs, workload,
and the address of every logical node.  Each process builds the *same*
:class:`~repro.runtime.app.Deployment` from it (wire ids are assigned in
declaration order, so identical specs yield identical wire tables in
every process), then keeps only the pieces it actually hosts.

The spec also fully determines the workload: producers draw arrival
gaps and payloads from the deployment's named RNG streams, so a pure
in-process simulation of the same spec (:func:`reference_run`) produces
the exact output stream the networked cluster must reproduce — the
simulator doubles as the determinism oracle for the real deployment.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.pipeline import build_pipeline_app, reading_factory
from repro.errors import WiringError
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import Placement
from repro.sim.kernel import Simulator, ms


@dataclass
class ClusterSpec:
    """Everything a process needs to instantiate its share of a cluster."""

    #: Application name in :data:`APP_BUILDERS`.
    app: str = "pipeline"
    #: Keyword arguments for the application builder.
    app_args: Dict = field(default_factory=dict)
    #: Engine ids in order (e0, e1, ...).
    engines: List[str] = field(default_factory=lambda: ["e0", "e1"])
    #: Component -> engine id.
    placement: Dict[str, str] = field(default_factory=dict)
    #: Passive replicas per engine (0 disables checkpoint/heartbeat).
    replicas: int = 1
    master_seed: int = 7
    #: Simulated ticks per real nanosecond (0.1 => 1 ms-tick per 10 ms).
    speed: float = 0.1
    checkpoint_interval_ms: float = 25.0
    full_checkpoint_every: int = 4
    heartbeat_interval_ms: float = 10.0
    heartbeat_miss_limit: int = 3
    #: input_id -> workload parameters for its Poisson producer.
    workload: Dict[str, Dict] = field(default_factory=dict)
    #: node id -> ordered [host, port] candidates (primary first).
    addresses: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    #: process name -> [host, port] to *bind*.  Empty means "bind the
    #: address everyone dials" (``addresses['proc:<name>'][0]``); the
    #: chaos runner fills it so processes bind their real ports while
    #: every dialed address routes through a fault proxy.
    listen: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: Named transport timeouts/backoff (seconds) and fence retry
    #: budget.  Chaos runs compress these so partitions and kills are
    #: detected in test-scale wall time; see docs/chaos.md.
    connect_timeout_s: float = 2.0
    handshake_timeout_s: float = 2.0
    backoff_min_s: float = 0.02
    backoff_max_s: float = 0.5
    fence_attempts: int = 10
    fence_gap_s: float = 0.2
    #: Cap on items per FRAME_BATCH on outbound channels (1 disables
    #: batching — every item rides its own ITEM frame, the pre-batching
    #: wire behaviour the benchmark baseline measures).
    batch_max_items: int = 64
    #: Public ingress gateway config; empty dict disables the gateway.
    #: Keys (all optional except ``host``/``port``, which
    #: ``repro.net.cluster.with_addresses`` fills in): ``host``/``port``
    #: — the address clients *dial*; ``listen`` — ``[host, port]`` bind
    #: override (the chaos proxy fronts the dial address while the
    #: gateway binds its real port, mirroring ``listen`` above);
    #: ``max_inflight_msgs`` / ``max_inflight_bytes`` — global admission
    #: limits; ``rate_msgs_per_s`` / ``rate_burst`` — per-client token
    #: bucket; ``retry_ms`` — backoff hint carried by BUSY rejects;
    #: ``span_ms`` — nominal client-burst span used by seeded gateway
    #: chaos scenarios on workload-free specs.
    gateway: Dict = field(default_factory=dict)
    #: Recovery-time objective in simulated milliseconds; when set, each
    #: engine runs the adaptive cadence controller with this replay
    #: budget instead of a fixed checkpoint interval.
    recovery_target_ms: Optional[float] = None
    #: Continuous divergence audit mode: "off", "raise", or "heal".
    audit: str = "off"
    #: Audit before every Nth checkpoint capture.
    audit_every: int = 1

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        raw = json.loads(text)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise WiringError(f"unknown cluster spec keys: {sorted(unknown)}")
        spec = cls(**raw)
        spec.addresses = {
            node: [(host, int(port)) for host, port in addrs]
            for node, addrs in spec.addresses.items()
        }
        spec.listen = {
            process: (host, int(port))
            for process, (host, port) in spec.listen.items()
        }
        if spec.gateway.get("port") is not None:
            spec.gateway["port"] = int(spec.gateway["port"])
        if spec.gateway.get("listen") is not None:
            host, port = spec.gateway["listen"]
            spec.gateway["listen"] = (host, int(port))
        return spec

    # -- derived --------------------------------------------------------
    def replica_node(self, engine_id: str) -> str:
        return f"replica:{engine_id}"

    def listen_addr(self, process: str) -> Tuple[str, int]:
        """The address the named process binds its server socket to."""
        override = self.listen.get(process)
        if override is not None:
            return tuple(override)
        return self.addresses[f"proc:{process}"][0]

    def gateway_enabled(self) -> bool:
        """Whether this spec runs a public ingress gateway."""
        return bool(self.gateway)

    def gateway_addr(self) -> Tuple[str, int]:
        """The address gateway clients dial (may be a chaos proxy front)."""
        if not self.gateway or self.gateway.get("port") is None:
            raise WiringError("spec has no gateway address assigned "
                              "(see repro.net.cluster.with_addresses)")
        return (self.gateway.get("host", "127.0.0.1"),
                int(self.gateway["port"]))

    def gateway_listen_addr(self) -> Tuple[str, int]:
        """The address the gateway binds (the dial address unless the
        chaos proxy fronted it via ``gateway["listen"]``)."""
        override = self.gateway.get("listen")
        if override is not None:
            return (override[0], int(override[1]))
        return self.gateway_addr()

    def engine_config(self) -> EngineConfig:
        if self.replicas <= 0:
            if self.recovery_target_ms is not None or self.audit != "off":
                raise WiringError(
                    "recovery_target_ms / audit require replicas >= 1 "
                    "(both ride on the checkpoint chain)"
                )
            return EngineConfig()
        target = None
        if self.recovery_target_ms is not None:
            from repro.runtime.cadence import RecoveryTarget

            target = RecoveryTarget(max_replay_ticks=ms(self.recovery_target_ms))
        return EngineConfig(
            checkpoint_interval=ms(self.checkpoint_interval_ms),
            full_checkpoint_every=self.full_checkpoint_every,
            heartbeat_interval=ms(self.heartbeat_interval_ms),
            heartbeat_miss_limit=self.heartbeat_miss_limit,
            recovery_target=target,
            audit=self.audit,
            audit_every=self.audit_every,
        )

    def workload_span_ticks(self) -> int:
        """Expected ticks for the slowest producer to finish emitting."""
        span = 0
        for params in self.workload.values():
            span = max(span, int(params["n_messages"]
                                 * ms(params["mean_interarrival_ms"])))
        return span


#: name -> Application builder.  Extend to run other apps on the net
#: runtime; builders take the spec's ``app_args`` as keywords.
APP_BUILDERS = {
    "pipeline": build_pipeline_app,
}


def build_application(spec: ClusterSpec) -> Application:
    builder = APP_BUILDERS.get(spec.app)
    if builder is None:
        raise WiringError(f"unknown application {spec.app!r} "
                          f"(known: {sorted(APP_BUILDERS)})")
    return builder(**spec.app_args)


def contiguous_placement(component_names: List[str],
                         engine_ids: List[str]) -> Dict[str, str]:
    """Split a component chain into contiguous groups, one per engine.

    Keeps pipeline neighbours co-located (round-robin would cut every
    wire), while still crossing engine boundaries between groups — the
    interesting case for checkpoint/replay across real sockets.
    """
    if not engine_ids:
        raise WiringError("no engines to place onto")
    n = len(component_names)
    k = min(len(engine_ids), n)
    placement = {}
    for i, name in enumerate(component_names):
        placement[name] = engine_ids[min(i * k // n, k - 1)]
    return placement


def component_placement(spec: ClusterSpec) -> Dict[str, str]:
    """component name -> engine id, as :func:`build_deployment` places it.

    Cheap (no deployment is built): resolves the spec's explicit
    placement or the default contiguous one.  Used by the chaos
    schedule generator to aim state-corruption faults at the engine
    actually hosting a given component.
    """
    app = build_application(spec)
    return dict(spec.placement) or contiguous_placement(
        app.component_names(), spec.engines
    )


def build_deployment(spec: ClusterSpec,
                     sim: Optional[Simulator] = None) -> Deployment:
    """The full deployment object for this spec.

    Every process calls this with its own simulator and then rewires the
    parts it hosts onto the net transport; building the whole thing
    everywhere is what guarantees identical wire ids, estimators, and
    RNG streams across the cluster.
    """
    app = build_application(spec)
    placement = dict(spec.placement) or contiguous_placement(
        app.component_names(), spec.engines
    )
    return Deployment(
        app, Placement(placement),
        engine_config=spec.engine_config(),
        sim=sim,
        master_seed=spec.master_seed,
    )


def attach_workload(dep: Deployment, spec: ClusterSpec) -> None:
    """Attach the spec's Poisson producers to a deployment.

    Producer randomness comes from the deployment's named streams
    (``producer:<input_id>``), so any two deployments built from the
    same spec — simulated or networked — generate byte-identical
    workloads.
    """
    for input_id, params in spec.workload.items():
        factory = reading_factory(
            n_devices=int(params.get("n_devices", 8)),
            n_fields=int(params.get("n_fields", 4)),
        )
        dep.add_poisson_producer(
            input_id, factory,
            mean_interarrival=ms(params["mean_interarrival_ms"]),
            max_messages=int(params["n_messages"]),
        )


def stream_of(consumer) -> List[Tuple]:
    """A consumer's effective output as comparable (seq, vt, payload)."""
    from repro.tools.verify_determinism import freeze_payload

    return [(seq, vt, freeze_payload(payload))
            for seq, vt, payload, _t in consumer.effective_outputs]


def reference_run(spec: ClusterSpec) -> Dict[str, List[Tuple]]:
    """Run the spec purely in simulation; return per-sink output streams.

    The cutoff leaves a generous drain margin after the last scheduled
    arrival, so on any non-overloaded spec the streams are complete —
    and they are the byte-level ground truth for the networked runs.
    """
    dep = build_deployment(spec)
    attach_workload(dep, spec)
    dep.run(until=2 * spec.workload_span_ticks() + ms(500))
    return {sink: stream_of(consumer)
            for sink, consumer in dep.consumers.items()}


def plan_cluster_nodes(spec: ClusterSpec) -> Dict[str, List[str]]:
    """process name -> node ids it hosts at startup.

    Processes: ``coordinator`` (every ingress and consumer), one
    ``engine-<id>`` per engine, one ``replica-<id>`` per engine when
    replicas are enabled.  Every process additionally hosts a
    ``proc:<name>`` control node for the GO/shutdown barrier.
    """
    dep = build_deployment(spec)
    layout: Dict[str, List[str]] = {
        "coordinator": (
            [ing.node_id for ing in dep.ingresses.values()]
            + list(dep.consumers)
        )
    }
    for engine_id in spec.engines:
        layout[f"engine-{engine_id}"] = [engine_id]
        if spec.replicas > 0:
            layout[f"replica-{engine_id}"] = [spec.replica_node(engine_id)]
    return layout


def assign_addresses(spec: ClusterSpec,
                     listen_ports: Dict[str, Tuple[str, int]]) -> None:
    """Fill ``spec.addresses`` from per-process listen addresses.

    ``listen_ports`` maps process name -> (host, port).  Engine nodes
    get two candidates — the engine process first, then the replica
    process that may promote them; every other node lives in exactly one
    process.
    """
    addresses: Dict[str, List[Tuple[str, int]]] = {}
    for process, nodes in plan_cluster_nodes(spec).items():
        for node in nodes:
            addresses.setdefault(node, []).append(listen_ports[process])
        addresses[f"proc:{process}"] = [listen_ports[process]]
    for engine_id in spec.engines:
        replica_proc = f"replica-{engine_id}"
        if replica_proc in listen_ports:
            addresses[engine_id].append(listen_ports[replica_proc])
    spec.addresses = addresses
