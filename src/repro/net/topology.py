"""Cluster topology: the spec every process derives its world from.

A :class:`ClusterSpec` is a JSON document describing one networked
deployment: the application, placement, seeds, timing knobs, workload,
and the address of every logical node.  Each process builds the *same*
:class:`~repro.runtime.app.Deployment` from it (wire ids are assigned in
declaration order, so identical specs yield identical wire tables in
every process), then keeps only the pieces it actually hosts.

The spec also fully determines the workload: producers draw arrival
gaps and payloads from the deployment's named RNG streams, so a pure
in-process simulation of the same spec (:func:`reference_run`) produces
the exact output stream the networked cluster must reproduce — the
simulator doubles as the determinism oracle for the real deployment.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import re

from repro.apps.pipeline import build_pipeline_app, lane_key, reading_factory
from repro.errors import SpecValidationError, WiringError
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import (
    Placement,
    _rendezvous_weight,
    consistent_hash_placement,
    follower_node_id,
    follower_node_ids,
)
from repro.sim.kernel import Simulator, ms

#: Engine ids must stay out of the separators used by node/process
#: naming (``replica:<id>.<rank>`` nodes, ``replica-<id>.<rank>``
#: processes) and the ``proc:``/``ext:`` prefixes.
_ENGINE_ID_RE = re.compile(r"^[A-Za-z0-9_-]+$")


@dataclass
class ClusterSpec:
    """Everything a process needs to instantiate its share of a cluster."""

    #: Application name in :data:`APP_BUILDERS`.
    app: str = "pipeline"
    #: Keyword arguments for the application builder.
    app_args: Dict = field(default_factory=dict)
    #: Engine ids in order (e0, e1, ...).
    engines: List[str] = field(default_factory=lambda: ["e0", "e1"])
    #: Component -> engine id.
    placement: Dict[str, str] = field(default_factory=dict)
    #: Passive replicas per engine (0 disables checkpoint/heartbeat).
    replicas: int = 1
    #: Followers per replication group.  ``None`` falls back to
    #: ``replicas`` (the legacy single-follower knob); an explicit value
    #: sizes each engine's rank-ordered follower chain.
    followers_per_group: Optional[int] = None
    master_seed: int = 7
    #: Simulated ticks per real nanosecond (0.1 => 1 ms-tick per 10 ms).
    speed: float = 0.1
    checkpoint_interval_ms: float = 25.0
    full_checkpoint_every: int = 4
    heartbeat_interval_ms: float = 10.0
    heartbeat_miss_limit: int = 3
    #: input_id -> workload parameters for its Poisson producer.
    workload: Dict[str, Dict] = field(default_factory=dict)
    #: node id -> ordered [host, port] candidates (primary first).
    addresses: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    #: process name -> [host, port] to *bind*.  Empty means "bind the
    #: address everyone dials" (``addresses['proc:<name>'][0]``); the
    #: chaos runner fills it so processes bind their real ports while
    #: every dialed address routes through a fault proxy.
    listen: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: Named transport timeouts/backoff (seconds) and fence retry
    #: budget.  Chaos runs compress these so partitions and kills are
    #: detected in test-scale wall time; see docs/chaos.md.
    connect_timeout_s: float = 2.0
    handshake_timeout_s: float = 2.0
    backoff_min_s: float = 0.02
    backoff_max_s: float = 0.5
    fence_attempts: int = 10
    fence_gap_s: float = 0.2
    #: Cap on items per FRAME_BATCH on outbound channels (1 disables
    #: batching — every item rides its own ITEM frame, the pre-batching
    #: wire behaviour the benchmark baseline measures).
    batch_max_items: int = 64
    #: Public ingress gateway config; empty dict disables the gateway.
    #: Keys (all optional except ``host``/``port``, which
    #: ``repro.net.cluster.with_addresses`` fills in): ``host``/``port``
    #: — the address clients *dial*; ``listen`` — ``[host, port]`` bind
    #: override (the chaos proxy fronts the dial address while the
    #: gateway binds its real port, mirroring ``listen`` above);
    #: ``max_inflight_msgs`` / ``max_inflight_bytes`` — global admission
    #: limits; ``rate_msgs_per_s`` / ``rate_burst`` — per-client token
    #: bucket; ``retry_ms`` — backoff hint carried by BUSY rejects;
    #: ``span_ms`` — nominal client-burst span used by seeded gateway
    #: chaos scenarios on workload-free specs.
    gateway: Dict = field(default_factory=dict)
    #: Recovery-time objective in simulated milliseconds; when set, each
    #: engine runs the adaptive cadence controller with this replay
    #: budget instead of a fixed checkpoint interval.
    recovery_target_ms: Optional[float] = None
    #: Continuous divergence audit mode: "off", "raise", or "heal".
    audit: str = "off"
    #: Audit before every Nth checkpoint capture.
    audit_every: int = 1

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        raw = json.loads(text)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise SpecValidationError(
                sorted(unknown)[0], sorted(unknown),
                f"unknown cluster spec keys (known: {sorted(known)})",
            )
        spec = cls(**raw)
        spec.addresses = {
            node: [(host, int(port)) for host, port in addrs]
            for node, addrs in spec.addresses.items()
        }
        spec.listen = {
            process: (host, int(port))
            for process, (host, port) in spec.listen.items()
        }
        if spec.gateway.get("port") is not None:
            spec.gateway["port"] = int(spec.gateway["port"])
        if spec.gateway.get("listen") is not None:
            host, port = spec.gateway["listen"]
            spec.gateway["listen"] = (host, int(port))
        spec.validate()
        return spec

    def validate(self) -> None:
        """Structured range/shape checks; raises :class:`SpecValidationError`.

        ``from_json`` always validates, so a spec that crossed a process
        boundary is known-good; hand-constructed specs may call this
        explicitly before launch.
        """
        def bad(key, value, reason):
            raise SpecValidationError(key, value, reason)

        if not isinstance(self.engines, (list, tuple)) or not self.engines:
            bad("engines", self.engines, "must be a non-empty list")
        if len(set(self.engines)) != len(self.engines):
            bad("engines", self.engines, "engine ids must be unique")
        for engine_id in self.engines:
            if not isinstance(engine_id, str) or not _ENGINE_ID_RE.match(engine_id):
                bad("engines", engine_id,
                    "engine ids must match [A-Za-z0-9_-]+ (no '.', ':', '/')")
        if not isinstance(self.replicas, int) or self.replicas < 0:
            bad("replicas", self.replicas, "must be an integer >= 0")
        if self.followers_per_group is not None and (
                not isinstance(self.followers_per_group, int)
                or self.followers_per_group < 0):
            bad("followers_per_group", self.followers_per_group,
                "must be null or an integer >= 0")
        if not isinstance(self.speed, (int, float)) or self.speed <= 0:
            bad("speed", self.speed, "must be > 0")
        for key in ("checkpoint_interval_ms", "heartbeat_interval_ms",
                    "connect_timeout_s", "handshake_timeout_s",
                    "backoff_min_s", "backoff_max_s"):
            value = getattr(self, key)
            if not isinstance(value, (int, float)) or value <= 0:
                bad(key, value, "must be > 0")
        if self.backoff_max_s < self.backoff_min_s:
            bad("backoff_max_s", self.backoff_max_s,
                f"must be >= backoff_min_s ({self.backoff_min_s})")
        for key in ("full_checkpoint_every", "heartbeat_miss_limit",
                    "fence_attempts", "batch_max_items", "audit_every"):
            value = getattr(self, key)
            if not isinstance(value, int) or value < 1:
                bad(key, value, "must be an integer >= 1")
        if not isinstance(self.fence_gap_s, (int, float)) or self.fence_gap_s < 0:
            bad("fence_gap_s", self.fence_gap_s, "must be >= 0")
        if self.recovery_target_ms is not None and (
                not isinstance(self.recovery_target_ms, (int, float))
                or self.recovery_target_ms <= 0):
            bad("recovery_target_ms", self.recovery_target_ms,
                "must be null or > 0")
        if self.audit not in ("off", "raise", "heal"):
            bad("audit", self.audit, "must be one of 'off', 'raise', 'heal'")
        if not isinstance(self.placement, dict):
            bad("placement", self.placement, "must be a component->engine map")
        engines = set(self.engines)
        for component, engine_id in self.placement.items():
            if engine_id not in engines:
                bad("placement", {component: engine_id},
                    f"targets unknown engine (engines: {sorted(engines)})")
        if not isinstance(self.workload, dict):
            bad("workload", self.workload, "must be an input->params map")

    # -- derived --------------------------------------------------------
    def followers(self) -> int:
        """Followers per replication group (0 disables replication)."""
        if self.followers_per_group is not None:
            return self.followers_per_group
        return self.replicas

    def replica_node(self, engine_id: str, rank: int = 0) -> str:
        return follower_node_id(engine_id, rank)

    def follower_nodes(self, engine_id: str) -> List[str]:
        """One engine's follower node ids, in promotion (rank) order."""
        return follower_node_ids(engine_id, self.followers())

    def follower_process(self, engine_id: str, rank: int = 0) -> str:
        """Process name hosting one follower (``replica-<id>[.<rank>]``)."""
        return "replica-" + follower_node_id(engine_id, rank)[len("replica:"):]

    def follower_processes(self, engine_id: str) -> List[str]:
        """One engine's follower process names, in promotion order."""
        return [self.follower_process(engine_id, rank)
                for rank in range(self.followers())]

    def listen_addr(self, process: str) -> Tuple[str, int]:
        """The address the named process binds its server socket to."""
        override = self.listen.get(process)
        if override is not None:
            return tuple(override)
        return self.addresses[f"proc:{process}"][0]

    def gateway_enabled(self) -> bool:
        """Whether this spec runs a public ingress gateway."""
        return bool(self.gateway)

    def gateway_addr(self) -> Tuple[str, int]:
        """The address gateway clients dial (may be a chaos proxy front)."""
        if not self.gateway or self.gateway.get("port") is None:
            raise WiringError("spec has no gateway address assigned "
                              "(see repro.net.cluster.with_addresses)")
        return (self.gateway.get("host", "127.0.0.1"),
                int(self.gateway["port"]))

    def gateway_listen_addr(self) -> Tuple[str, int]:
        """The address the gateway binds (the dial address unless the
        chaos proxy fronted it via ``gateway["listen"]``)."""
        override = self.gateway.get("listen")
        if override is not None:
            return (override[0], int(override[1]))
        return self.gateway_addr()

    def engine_config(self) -> EngineConfig:
        if self.followers() <= 0:
            if self.recovery_target_ms is not None or self.audit != "off":
                raise WiringError(
                    "recovery_target_ms / audit require replicas >= 1 "
                    "(both ride on the checkpoint chain)"
                )
            return EngineConfig()
        target = None
        if self.recovery_target_ms is not None:
            from repro.runtime.cadence import RecoveryTarget

            target = RecoveryTarget(max_replay_ticks=ms(self.recovery_target_ms))
        return EngineConfig(
            checkpoint_interval=ms(self.checkpoint_interval_ms),
            full_checkpoint_every=self.full_checkpoint_every,
            heartbeat_interval=ms(self.heartbeat_interval_ms),
            heartbeat_miss_limit=self.heartbeat_miss_limit,
            recovery_target=target,
            audit=self.audit,
            audit_every=self.audit_every,
        )

    def workload_span_ticks(self) -> int:
        """Expected ticks for the slowest producer to finish emitting."""
        span = 0
        for params in self.workload.values():
            span = max(span, int(params["n_messages"]
                                 * ms(params["mean_interarrival_ms"])))
        return span


#: name -> Application builder.  Extend to run other apps on the net
#: runtime; builders take the spec's ``app_args`` as keywords.
APP_BUILDERS = {
    "pipeline": build_pipeline_app,
}


def build_application(spec: ClusterSpec) -> Application:
    builder = APP_BUILDERS.get(spec.app)
    if builder is None:
        raise WiringError(f"unknown application {spec.app!r} "
                          f"(known: {sorted(APP_BUILDERS)})")
    return builder(**spec.app_args)


def contiguous_placement(component_names: List[str],
                         engine_ids: List[str]) -> Dict[str, str]:
    """Split a component chain into contiguous groups, one per engine.

    Keeps pipeline neighbours co-located (round-robin would cut every
    wire), while still crossing engine boundaries between groups — the
    interesting case for checkpoint/replay across real sockets.
    """
    if not engine_ids:
        raise WiringError("no engines to place onto")
    n = len(component_names)
    k = min(len(engine_ids), n)
    placement = {}
    for i, name in enumerate(component_names):
        placement[name] = engine_ids[min(i * k // n, k - 1)]
    return placement


def sharded_placement(component_names: List[str],
                      engine_ids: List[str],
                      group_key=None) -> Dict[str, str]:
    """Consistent-hash placement with bounded per-engine load.

    Rendezvous hashing (see
    :func:`repro.runtime.placement.consistent_hash_placement`) assigns
    each hash group to its highest-scoring engine, which for small group
    counts leaves the shards lopsided — or an engine empty, and the
    networked runtime hosts one process per engine with nothing to
    replay or fail over.  A deterministic bounded-load rebalance
    therefore caps every engine at ``ceil(G/k)`` groups and floors it at
    ``floor(G/k)``: overflowing engines shed the groups that score them
    *lowest*, each displaced group landing on the engine that scores it
    highest among those with room.  Groups the hash already placed
    within bounds never move, and the result depends only on the *sets*
    involved, so every process computes the same map.
    """
    placed = dict(consistent_hash_placement(
        list(component_names), list(engine_ids), group_key=group_key
    ).items())
    keyed = group_key or (lambda name: name)
    groups: Dict[str, List[str]] = {}
    for name in placed:
        groups.setdefault(keyed(name), []).append(name)
    owner = {key: placed[members[0]] for key, members in groups.items()}
    load: Dict[str, List[str]] = {e: [] for e in engine_ids}
    for key in sorted(owner):
        load[owner[key]].append(key)
    n_groups, n_engines = len(owner), len(engine_ids)
    cap = -(-n_groups // n_engines)
    floor = n_groups // n_engines

    def weight(engine_id: str, key: str):
        return _rendezvous_weight(engine_id, key)

    def move(donor: str, target: str, key: str) -> None:
        load[donor].remove(key)
        load[target].append(key)
        owner[key] = target
        for name in groups[key]:
            placed[name] = target

    while True:
        over = sorted(e for e in load if len(load[e]) > cap)
        if not over:
            break
        donor = max(over, key=lambda e: (len(load[e]), e))
        # Shed the group this engine was the weakest claim on.
        key = min(load[donor], key=lambda g: (weight(donor, g), g))
        room = [e for e in load if len(load[e]) < cap]
        move(donor, max(room, key=lambda e: (weight(e, key), e)), key)
    while True:
        under = sorted(e for e in load if len(load[e]) < floor)
        if not under:
            break
        target = under[0]
        donor = max(load, key=lambda e: (len(load[e]), e))
        key = max(load[donor], key=lambda g: (weight(target, g), g))
        move(donor, target, key)
    return placed


def component_placement(spec: ClusterSpec) -> Dict[str, str]:
    """component name -> engine id, as :func:`build_deployment` places it.

    Cheap (no deployment is built): resolves the spec's explicit
    placement or the default contiguous one.  Used by the chaos
    schedule generator to aim state-corruption faults at the engine
    actually hosting a given component, and by the liveness invariant
    to map sinks to replication groups.
    """
    app = build_application(spec)
    return dict(spec.placement) or contiguous_placement(
        app.component_names(), spec.engines
    )


def sink_engines(spec: ClusterSpec) -> Dict[str, str]:
    """sink (external output id) -> engine id feeding it.

    The chaos invariant checker uses this to split output streams into
    replication groups: a leader kill in group G must stall only the
    sinks G feeds.
    """
    app = build_application(spec)
    placement = component_placement(spec)
    return {external_id: placement[src]
            for external_id, src in app.external_output_sources().items()}


def sink_upstream_engines(spec: ClusterSpec) -> Dict[str, set]:
    """sink -> set of engine ids anywhere upstream of it.

    A sink is *independent* of a failing group G only when no component
    feeding it (transitively) is placed on G — the condition under which
    the non-victim liveness invariant may demand deliveries during G's
    failover window.  Lane-sharded pipelines keep each lane's whole
    chain on one engine, so each sink depends on exactly one group.
    """
    app = build_application(spec)
    placement = component_placement(spec)
    upstream_of: Dict[str, set] = {}
    for decl in app._wires:
        if decl.kind in ("data", "call") and decl.src and decl.dst:
            upstream_of.setdefault(decl.dst, set()).add(decl.src)
            if decl.kind == "call":  # the reply wire makes this mutual
                upstream_of.setdefault(decl.src, set()).add(decl.dst)
    result: Dict[str, set] = {}
    for external_id, src in app.external_output_sources().items():
        seen, frontier = set(), [src]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(upstream_of.get(name, ()))
        result[external_id] = {placement[name] for name in seen}
    return result


def build_deployment(spec: ClusterSpec,
                     sim: Optional[Simulator] = None) -> Deployment:
    """The full deployment object for this spec.

    Every process calls this with its own simulator and then rewires the
    parts it hosts onto the net transport; building the whole thing
    everywhere is what guarantees identical wire ids, estimators, and
    RNG streams across the cluster.
    """
    app = build_application(spec)
    placement = dict(spec.placement) or contiguous_placement(
        app.component_names(), spec.engines
    )
    return Deployment(
        app, Placement(placement),
        engine_config=spec.engine_config(),
        sim=sim,
        master_seed=spec.master_seed,
        followers=max(1, spec.followers()),
    )


def attach_workload(dep: Deployment, spec: ClusterSpec) -> None:
    """Attach the spec's Poisson producers to a deployment.

    Producer randomness comes from the deployment's named streams
    (``producer:<input_id>``), so any two deployments built from the
    same spec — simulated or networked — generate byte-identical
    workloads.
    """
    for input_id, params in spec.workload.items():
        factory = reading_factory(
            n_devices=int(params.get("n_devices", 8)),
            n_fields=int(params.get("n_fields", 4)),
        )
        dep.add_poisson_producer(
            input_id, factory,
            mean_interarrival=ms(params["mean_interarrival_ms"]),
            max_messages=int(params["n_messages"]),
        )


def stream_of(consumer) -> List[Tuple]:
    """A consumer's effective output as comparable (seq, vt, payload)."""
    from repro.tools.verify_determinism import freeze_payload

    return [(seq, vt, freeze_payload(payload))
            for seq, vt, payload, _t in consumer.effective_outputs]


def reference_run(spec: ClusterSpec) -> Dict[str, List[Tuple]]:
    """Run the spec purely in simulation; return per-sink output streams.

    The cutoff leaves a generous drain margin after the last scheduled
    arrival, so on any non-overloaded spec the streams are complete —
    and they are the byte-level ground truth for the networked runs.
    """
    dep = build_deployment(spec)
    attach_workload(dep, spec)
    dep.run(until=2 * spec.workload_span_ticks() + ms(500))
    return {sink: stream_of(consumer)
            for sink, consumer in dep.consumers.items()}


def plan_cluster_nodes(spec: ClusterSpec) -> Dict[str, List[str]]:
    """process name -> node ids it hosts at startup.

    Processes: ``coordinator`` (every ingress and consumer), one
    ``engine-<id>`` per engine, and one ``replica-<id>[.<rank>]`` per
    follower of each replication group.  Every process additionally
    hosts a ``proc:<name>`` control node for the GO/shutdown barrier.
    """
    dep = build_deployment(spec)
    layout: Dict[str, List[str]] = {
        "coordinator": (
            [ing.node_id for ing in dep.ingresses.values()]
            + list(dep.consumers)
        )
    }
    for engine_id in spec.engines:
        layout[f"engine-{engine_id}"] = [engine_id]
        for rank in range(spec.followers()):
            layout[spec.follower_process(engine_id, rank)] = [
                spec.replica_node(engine_id, rank)
            ]
    return layout


def assign_addresses(spec: ClusterSpec,
                     listen_ports: Dict[str, Tuple[str, int]]) -> None:
    """Fill ``spec.addresses`` from per-process listen addresses.

    ``listen_ports`` maps process name -> (host, port).  Engine nodes
    get ``1 + followers`` candidates — the engine process first, then
    each follower process in promotion (rank) order, so a channel that
    loses the leader walks the candidate list straight down the group's
    succession line; every other node lives in exactly one process.
    """
    addresses: Dict[str, List[Tuple[str, int]]] = {}
    for process, nodes in plan_cluster_nodes(spec).items():
        for node in nodes:
            addresses.setdefault(node, []).append(listen_ports[process])
        addresses[f"proc:{process}"] = [listen_ports[process]]
    for engine_id in spec.engines:
        for process in spec.follower_processes(engine_id):
            if process in listen_ports:
                addresses[engine_id].append(listen_ports[process])
    spec.addresses = addresses
