"""A real multi-process networked runtime for TART deployments.

Everything else in this repository runs inside the single-process
discrete-event kernel; :mod:`repro.net` is the first layer that is not
simulation.  It runs a deployment as cooperating OS processes over
asyncio TCP while sharing — not forking — the virtual-time machinery:

* :mod:`repro.net.codec` — canonical length-prefixed binary wire format
  for every message type, reusing the deterministic encoder in
  :mod:`repro.runtime.checkpoint`;
* :mod:`repro.net.channel` — framed, reconnecting socket channels with
  sequence numbers, acknowledgements, and backpressure, mirroring the
  delivery guarantees of :mod:`repro.runtime.link`;
* :mod:`repro.net.clock` — the real-time clock adapter that pumps the
  unmodified :class:`~repro.sim.kernel.Simulator` against the wall
  clock, so the existing engine scheduling loop runs unchanged;
* :mod:`repro.net.topology` — the cluster spec shared by every process
  (each process derives identical wire ids from the same spec);
* :mod:`repro.net.node` / :mod:`repro.net.server` — the engine host
  process wrapping :class:`~repro.runtime.engine.ExecutionEngine`;
* :mod:`repro.net.heartbeat` — the replica-side failure detector glue
  driving the existing :class:`~repro.runtime.recovery.RecoveryManager`
  to promote a passive replica in another process;
* :mod:`repro.net.cluster` — the ``python -m repro.net.cluster`` CLI
  that launches an N-process cluster, kills the active engine
  mid-stream, and verifies the promoted replica replays to the
  identical output sequence.

See ``docs/net.md`` for the wire format and protocol state machines.
"""

from repro.net.codec import WIRE_VERSION, decode_message, encode_message
from repro.net.topology import ClusterSpec

__all__ = [
    "WIRE_VERSION",
    "encode_message",
    "decode_message",
    "ClusterSpec",
]
