"""Cluster coordinator: launch, kill, and verify a real networked run.

``python -m repro.net.cluster`` is the end-to-end acceptance harness for
the networked runtime.  It:

1. computes the ground truth by running the cluster spec purely in
   simulation (:func:`~repro.net.topology.reference_run` — same seeds,
   same wire tables, so the simulator predicts the exact output stream);
2. spawns one OS process per engine and per replica (``python -m
   repro.net.server``), hosts the ingresses and consumers itself, and
   releases everything through the GO barrier with a shared clock epoch;
3. optionally SIGKILLs the active engine mid-stream (``--kill-active``)
   once a fraction of the expected outputs have arrived, leaving the
   replica process to detect the silence via heartbeat timeout, promote
   from the shipped checkpoint chain, and replay over the sockets;
4. waits for the consumers to reach the reference output counts and
   judges the collected streams with
   :func:`~repro.tools.verify_determinism.verify_trace_equivalence` —
   byte-identical ``(seq, vt, payload)`` streams or a nonzero exit.

The coordinator is itself a cluster member: it reuses
:class:`~repro.net.server.ProcessRuntime` for its server half and pumps
its own simulator, which hosts the Poisson producers — workload arrivals
happen at exact simulated ticks drawn from the deployment's seeded RNG
streams, so ingress timestamps match the pure-sim reference byte for
byte.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import repro
from repro.apps.pipeline import build_pipeline_app, lane_key, lane_suffix
from repro.errors import WiringError
from repro.net import codec
from repro.net.server import ProcessRuntime
from repro.net.topology import (
    ClusterSpec,
    assign_addresses,
    attach_workload,
    build_deployment,
    component_placement,
    plan_cluster_nodes,
    reference_run,
    sharded_placement,
    sink_upstream_engines,
    stream_of,
)
from repro.sim.kernel import ms
from repro.tools.verify_determinism import verify_trace_equivalence

#: Seconds each child gets to bind its socket and print READY.
READY_TIMEOUT_S = 20.0

#: Lead time between the GO broadcast and the shared tick-zero epoch,
#: so control channels can connect before anyone's clock starts.
GO_LEAD_S = 0.75


class CoordinatorHost:
    """The coordinator's share of the deployment: ingresses + consumers.

    Engines become zombies (their processes own the live ones); the
    producers stay here so the workload is generated at exact simulated
    ticks from the deployment's seeded RNG streams.
    """

    def __init__(self, spec: ClusterSpec, runtime: ProcessRuntime):
        self.deployment = build_deployment(spec, sim=runtime.sim)
        for engine in self.deployment.engines.values():
            engine.halt()
        for ingress in self.deployment.ingresses.values():
            ingress.network = runtime.transport
            runtime.transport.register(ingress)
        for consumer in self.deployment.consumers.values():
            runtime.transport.register(consumer)
        attach_workload(self.deployment, spec)
        self.consumers = self.deployment.consumers

    def start(self) -> None:
        for producer in self.deployment.producers:
            producer.start()

    def counts(self) -> Dict[str, int]:
        return {sink: len(c.effective_outputs)
                for sink, c in self.consumers.items()}

    def streams(self) -> Dict[str, List[Tuple]]:
        return {sink: stream_of(c) for sink, c in self.consumers.items()}

    def arrival_ticks(self) -> Dict[str, List[int]]:
        """Per-sink local-sim arrival tick of every effective output."""
        return {sink: [t for _seq, _vt, _payload, t in c.effective_outputs]
                for sink, c in self.consumers.items()}

    def stutter(self) -> int:
        return sum(c.stutter for c in self.consumers.values())


class ChildProcess:
    """One spawned server process with a READY-watching stdout reader."""

    def __init__(self, name: str, cmd: List[str], env: Dict[str, str]):
        self.name = name
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=None, env=env,
            text=True, bufsize=1,
        )
        self.ready = threading.Event()
        #: Parsed AUDIT report printed at clean shutdown (None if the
        #: child crashed or ran without audit/cadence enabled).
        self.audit: Optional[Dict] = None
        self._reader = threading.Thread(
            target=self._pump_stdout, name=f"stdout:{name}", daemon=True
        )
        self._reader.start()

    def _pump_stdout(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            line = line.rstrip("\n")
            if line == "READY":
                self.ready.set()
            elif line.startswith("AUDIT "):
                try:
                    self.audit = json.loads(line[len("AUDIT "):])
                except ValueError:
                    print(f"[{self.name}] unparseable {line!r}",
                          file=sys.stderr, flush=True)
            elif line:
                print(f"[{self.name}] {line}", file=sys.stderr, flush=True)

    def kill(self) -> None:
        self.proc.kill()

    def stop(self) -> None:
        """SIGSTOP: freeze the process (heartbeats stop, sockets stay)."""
        import signal

        self.proc.send_signal(signal.SIGSTOP)

    def cont(self) -> None:
        """SIGCONT: thaw a stopped process (it resumes, stale)."""
        import signal

        self.proc.send_signal(signal.SIGCONT)

    def reap(self, timeout: float = 5.0) -> Optional[int]:
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.terminate()
            try:
                return self.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                return self.proc.wait()
        finally:
            # Let the reader drain the final stdout lines (the AUDIT
            # report races process exit otherwise).
            self._reader.join(timeout=2.0)


def free_port() -> int:
    """An OS-assigned free localhost TCP port (best effort)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def with_addresses(spec: ClusterSpec) -> ClusterSpec:
    """A deep copy of ``spec`` with fresh localhost listen addresses."""
    run_spec = ClusterSpec.from_json(spec.to_json())
    ports = {name: ("127.0.0.1", free_port())
             for name in plan_cluster_nodes(run_spec)}
    assign_addresses(run_spec, ports)
    if run_spec.gateway_enabled() and run_spec.gateway.get("port") is None:
        run_spec.gateway.setdefault("host", "127.0.0.1")
        run_spec.gateway["port"] = free_port()
    return run_spec


def spawn_children(spec: ClusterSpec, spec_path: Path
                   ) -> Dict[str, ChildProcess]:
    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (str(src_root) if not existing
                         else str(src_root) + os.pathsep + existing)
    children: Dict[str, ChildProcess] = {}
    for name in plan_cluster_nodes(spec):
        if name == "coordinator":
            continue
        cmd = [sys.executable, "-m", "repro.net.server",
               "--spec", str(spec_path), "--name", name]
        children[name] = ChildProcess(name, cmd, env)
    return children


async def run_networked(
    spec: ClusterSpec,
    ref_counts: Dict[str, int],
    kill_engine: Optional[str] = None,
    kill_fraction: float = 0.4,
    deadline_s: float = 60.0,
    chaos=None,
) -> Dict:
    """One multi-process run; returns streams and diagnostics.

    ``spec`` must already carry addresses (see :func:`with_addresses`).
    With ``kill_engine`` set, that engine's process is SIGKILLed once
    ``kill_fraction`` of the expected outputs have been delivered.

    ``chaos`` is an optional driver (``repro.chaos.runner.ChaosDriver``)
    hooked into the lifecycle: ``await chaos.start()`` once the
    coordinator's own socket is up (its fault-proxy listeners must
    accept before any child dials), ``chaos.attach(children)`` after
    spawning, ``chaos.on_go(t0)`` when the shared epoch is set, and
    ``await chaos.close()`` on the way out.
    """
    started = time.monotonic()
    runtime = ProcessRuntime("coordinator", spec)
    listen_host, listen_port = spec.listen_addr("coordinator")
    server = await asyncio.start_server(
        runtime._handle_conn, listen_host, listen_port
    )
    if chaos is not None:
        await chaos.start()
    host = CoordinatorHost(spec, runtime)

    spec_file = tempfile.NamedTemporaryFile(
        "w", suffix=".json", prefix="cluster-spec-", delete=False
    )
    spec_path = Path(spec_file.name)
    with spec_file:
        spec_file.write(spec.to_json())

    children = spawn_children(spec, spec_path)
    if chaos is not None:
        chaos.attach(children)
    result: Dict = {
        "killed": None,
        "complete": False,
        "error": None,
    }
    loop = asyncio.get_running_loop()
    pump: Optional[asyncio.Task] = None
    try:
        for child in children.values():
            ok = await loop.run_in_executor(
                None, child.ready.wait, READY_TIMEOUT_S
            )
            if not ok:
                raise RuntimeError(
                    f"child {child.name} not READY within "
                    f"{READY_TIMEOUT_S}s (rc={child.proc.poll()})"
                )

        # GO: one shared epoch for every tick clock in the cluster.
        t0 = time.time() + GO_LEAD_S
        for name in children:
            runtime.transport.channel_to(f"proc:{name}").enqueue(
                runtime.peer_id, codec.GoSignal(t0=t0, speed=spec.speed)
            )
        runtime.clock.set_epoch(t0)
        if chaos is not None:
            chaos.on_go(t0)
        host.start()
        pump = loop.create_task(runtime.rtk.run(), name="pump:coordinator")

        total_expected = sum(ref_counts.values())
        kill_at = max(1, int(total_expected * kill_fraction))
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if pump.done():
                pump.result()  # surfaces TransportError etc.
                raise RuntimeError("coordinator pump exited early")
            counts = host.counts()
            if (kill_engine is not None and result["killed"] is None
                    and sum(counts.values()) >= kill_at):
                victim = children[f"engine-{kill_engine}"]
                victim.kill()
                result["killed"] = {
                    "engine": kill_engine,
                    "at_outputs": sum(counts.values()),
                    "at_s": round(time.monotonic() - started, 3),
                    "at_ticks": runtime.clock.ticks(),
                }
            if counts == ref_counts:
                result["complete"] = True
                break
            await asyncio.sleep(0.05)
    except Exception as exc:  # noqa: BLE001 - reported in the result
        result["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        for name, child in children.items():
            if child.proc.poll() is None:
                try:
                    runtime.transport.channel_to(f"proc:{name}").enqueue(
                        runtime.peer_id, codec.Shutdown("run complete")
                    )
                except Exception:  # noqa: BLE001 - best-effort shutdown
                    pass
        await asyncio.sleep(0.3)
        if pump is not None:
            runtime.rtk.stop()
            try:
                await pump
            except Exception as exc:  # noqa: BLE001
                if result["error"] is None:
                    result["error"] = f"{type(exc).__name__}: {exc}"
        epoch_resets = sum(
            ch.epoch_resets for ch in runtime.transport._channels.values()
        )
        incarnations = {
            dst: ch._known_incarnation
            for dst, ch in runtime.transport._channels.items()
        }
        channel_counters = runtime.transport.channel_counters()
        if chaos is not None:
            await chaos.close()
        await runtime.transport.close()
        server.close()
        await server.wait_closed()
        exit_codes = {name: child.reap() for name, child in children.items()}
        try:
            spec_path.unlink()
        except OSError:
            pass

    result.update(
        counts=host.counts(),
        streams=host.streams(),
        arrival_ticks=host.arrival_ticks(),
        stutter=host.stutter(),
        elapsed_s=round(time.monotonic() - started, 3),
        child_exit_codes=exit_codes,
        epoch_resets=epoch_resets,
        incarnations=incarnations,
        channel_counters=channel_counters,
        audit_reports={name: child.audit
                       for name, child in children.items()
                       if child.audit is not None},
        metrics=host.deployment.metrics.dump_json(),
    )
    if chaos is not None:
        result["chaos"] = chaos.report()
    return result


def build_spec(args: argparse.Namespace) -> ClusterSpec:
    """The cluster spec for the CLI knobs.

    With three or more engines the pipeline is *sharded*: one lane per
    engine, lanes placed by consistent hashing (whole lanes travel
    together), and the message budget split across the lane inputs — so
    every engine leads a replication group with an independent output
    stream, the shape the group-failover scenarios need.  One or two
    engines keep the legacy single-lane contiguous layout.
    """
    engines = [f"e{i}" for i in range(args.engines)]
    lanes = 1 if args.engines <= 2 else args.engines
    app_args = {"window": args.window}
    placement: Dict[str, str] = {}
    if lanes > 1:
        app_args["lanes"] = lanes
        app = build_pipeline_app(**app_args)
        placement = sharded_placement(app.component_names(), engines,
                                      group_key=lane_key)
    workload: Dict[str, Dict] = {}
    per, rem = divmod(args.messages, lanes)
    for lane in range(lanes):
        n = per + (1 if lane < rem else 0)
        if n:
            workload[f"readings{lane_suffix(lane)}"] = {
                "n_messages": n,
                "mean_interarrival_ms": args.mean_ms,
            }
    return ClusterSpec(
        app="pipeline",
        app_args=app_args,
        engines=engines,
        placement=placement,
        replicas=args.replicas,
        followers_per_group=getattr(args, "followers", None),
        master_seed=args.seed,
        speed=args.speed,
        checkpoint_interval_ms=args.checkpoint_ms,
        heartbeat_interval_ms=args.heartbeat_ms,
        heartbeat_miss_limit=args.heartbeat_miss,
        workload=workload,
        recovery_target_ms=args.recovery_target,
        audit=args.audit,
        audit_every=args.audit_every,
    )


def default_victim(spec: ClusterSpec) -> str:
    """The first engine (spec order) actually hosting components."""
    placed = set(component_placement(spec).values())
    for engine_id in spec.engines:
        if engine_id in placed:
            return engine_id
    raise WiringError("no engine hosts any component")


def group_liveness(spec: ClusterSpec, result: Dict,
                   victim: str, ref_counts: Dict[str, int]) -> Optional[Dict]:
    """Check non-victim groups kept delivering during the failover window.

    The window runs from the SIGKILL tick to the first post-kill output
    of any sink depending on the victim group (the first recovered
    byte).  Every sink *independent* of the victim must deliver at least
    once inside it — unless its stream was already complete before the
    kill.  Returns None when the invariant does not apply (no kill tick
    recorded, or no independent sinks to observe).
    """
    killed = result.get("killed") or {}
    kill_tick = killed.get("at_ticks")
    arrivals: Dict[str, List[int]] = result.get("arrival_ticks") or {}
    if kill_tick is None:
        return None
    upstream = sink_upstream_engines(spec)
    victim_sinks = sorted(s for s, deps in upstream.items() if victim in deps)
    others = sorted(s for s, deps in upstream.items() if victim not in deps)
    if not others:
        return None
    end = min((t for sink in victim_sinks
               for t in arrivals.get(sink, []) if t >= kill_tick),
              default=None)
    if end is None:  # victim never recovered; judge against the whole tail
        end = max((t for ts in arrivals.values() for t in ts),
                  default=kill_tick)
    stalled = []
    for sink in others:
        ticks = arrivals.get(sink, [])
        done_before_kill = (len(ticks) >= ref_counts.get(sink, 0)
                            and all(t < kill_tick for t in ticks))
        if done_before_kill:
            continue
        if not any(kill_tick <= t <= end for t in ticks):
            stalled.append(sink)
    return {
        "ok": not stalled,
        "window_ticks": [kill_tick, end],
        "victim_sinks": victim_sinks,
        "independent_sinks": others,
        "stalled_sinks": stalled,
    }


def _trial(label: str, spec: ClusterSpec, ref_counts: Dict[str, int],
           kill_engine: Optional[str], kill_fraction: float,
           deadline_s: float) -> Dict:
    run_spec = with_addresses(spec)
    return asyncio.run(run_networked(
        run_spec, ref_counts, kill_engine=kill_engine,
        kill_fraction=kill_fraction, deadline_s=deadline_s,
    ))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.cluster",
        description="Run a TART deployment as a real multi-process "
                    "cluster and verify its output against the "
                    "simulated reference (optionally killing the "
                    "active engine mid-stream).",
    )
    parser.add_argument("--engines", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=1, choices=(0, 1),
                        help="passive replicas per engine (0 disables "
                             "checkpointing and failover)")
    parser.add_argument("--followers", type=int, default=None, metavar="K",
                        help="followers per replication group (overrides "
                             "--replicas; K >= 2 gives each engine a "
                             "rank-ordered succession line)")
    parser.add_argument("--kill-active", action="store_true",
                        help="SIGKILL an engine process mid-stream and "
                             "require byte-identical recovered output")
    parser.add_argument("--kill-engine", default=None,
                        help="which engine to kill (default: first)")
    parser.add_argument("--kill-fraction", type=float, default=0.4,
                        help="kill once this fraction of expected "
                             "outputs arrived")
    parser.add_argument("--messages", type=int, default=240)
    parser.add_argument("--mean-ms", type=float, default=1.0,
                        help="mean Poisson interarrival (simulated ms)")
    parser.add_argument("--window", type=int, default=10,
                        help="aggregator report window")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--speed", type=float, default=0.1,
                        help="simulated ticks per real nanosecond")
    parser.add_argument("--checkpoint-ms", type=float, default=25.0)
    parser.add_argument("--heartbeat-ms", type=float, default=10.0)
    parser.add_argument("--heartbeat-miss", type=int, default=3)
    parser.add_argument("--recovery-target", type=float, default=None,
                        metavar="MS",
                        help="recovery-time objective in simulated ms; "
                             "engines adapt checkpoint cadence so "
                             "worst-case replay stays under it "
                             "(--checkpoint-ms becomes the initial "
                             "interval)")
    parser.add_argument("--audit", nargs="?", const="heal", default="off",
                        choices=("off", "raise", "heal"),
                        help="run the continuous divergence audit on "
                             "every engine (bare --audit means heal)")
    parser.add_argument("--audit-every", type=int, default=1,
                        help="audit once per N checkpoint captures")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock deadline in seconds")
    parser.add_argument("--skip-clean", action="store_true",
                        help="skip the no-failure networked run")
    parser.add_argument("--chaos", type=int, default=None, metavar="SEED",
                        help="instead of the clean/kill trials, run the "
                             "seeded chaos schedule SEED against this "
                             "cluster (python -m repro.chaos with the "
                             "same workload knobs)")
    parser.add_argument("--gateway", action="store_true",
                        help="feed the cluster through the public TCP "
                             "ingress gateway instead of in-process "
                             "producers (python -m repro.gateway.cluster "
                             "with the same knobs); external clients "
                             "submit over the wire and the output is "
                             "verified against a pure-sim replay of the "
                             "gateway's admission log")
    parser.add_argument("--clients", type=int, default=16,
                        help="gateway mode: number of concurrent "
                             "external clients")
    parser.add_argument("--rate", type=float, default=400.0,
                        help="gateway mode: aggregate open-loop offered "
                             "rate in msgs/sec across all clients")
    parser.add_argument("--record", default=None, metavar="DIR",
                        help="write a .replay flight-recorder bundle of "
                             "the run (see docs/timetravel.md)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the full metrics registry as JSON "
                             "at shutdown")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable report on stdout")
    args = parser.parse_args(argv)

    if args.gateway:
        from repro.gateway.cluster import main as gateway_main

        gateway_argv = [
            "--engines", str(args.engines),
            "--replicas", str(args.replicas),
            "--messages", str(args.messages),
            "--clients", str(args.clients),
            "--rate", str(args.rate),
            "--window", str(args.window),
            "--seed", str(args.seed),
            "--checkpoint-ms", str(args.checkpoint_ms),
            "--heartbeat-ms", str(args.heartbeat_ms),
            "--heartbeat-miss", str(args.heartbeat_miss),
        ]
        if args.followers is not None:
            gateway_argv += ["--followers", str(args.followers)]
        if args.kill_active:
            gateway_argv.append("--kill-active")
            if args.kill_engine:
                gateway_argv += ["--kill-engine", args.kill_engine]
            gateway_argv += ["--kill-fraction", str(args.kill_fraction)]
        if args.timeout is not None:
            gateway_argv += ["--timeout", str(args.timeout)]
        if args.record is not None:
            gateway_argv += ["--record", args.record]
        if args.metrics_out is not None:
            gateway_argv += ["--metrics-out", args.metrics_out]
        if args.as_json:
            gateway_argv.append("--json")
        return gateway_main(gateway_argv)

    if args.chaos is not None:
        from repro.chaos.__main__ import main as chaos_main

        chaos_argv = [
            "--seed", str(args.chaos),
            "--engines", str(args.engines),
            "--replicas", str(args.replicas),
            "--messages", str(args.messages),
            "--mean-ms", str(args.mean_ms),
            "--window", str(args.window),
            "--master-seed", str(args.seed),
            "--speed", str(args.speed),
            "--checkpoint-ms", str(args.checkpoint_ms),
            "--heartbeat-ms", str(args.heartbeat_ms),
            "--heartbeat-miss", str(args.heartbeat_miss),
        ]
        if args.followers is not None:
            chaos_argv += ["--followers", str(args.followers)]
        if args.recovery_target is not None:
            chaos_argv += ["--recovery-target", str(args.recovery_target)]
        if args.audit != "off":
            chaos_argv += ["--audit", args.audit]
        if args.audit_every != 1:
            chaos_argv += ["--audit-every", str(args.audit_every)]
        if args.timeout is not None:
            chaos_argv += ["--timeout", str(args.timeout)]
        if args.record is not None:
            chaos_argv += ["--record", args.record]
        if args.metrics_out is not None:
            chaos_argv += ["--metrics-out", args.metrics_out]
        if args.as_json:
            chaos_argv.append("--json")
        return chaos_main(chaos_argv)

    followers = (args.followers if args.followers is not None
                 else args.replicas)
    if args.kill_active and followers < 1:
        parser.error("--kill-active requires --replicas or --followers >= 1")
    if args.followers is not None and args.followers < 0:
        parser.error("--followers must be >= 0")

    spec = build_spec(args)
    kill_engine = None
    if args.kill_active:
        kill_engine = args.kill_engine or default_victim(spec)
        if kill_engine not in spec.engines:
            parser.error(f"unknown --kill-engine {kill_engine!r}")
    span_s = spec.workload_span_ticks() / (1e9 * spec.speed)
    deadline_s = args.timeout or max(30.0, 6.0 * span_s + 10.0)

    print(f"reference: simulating {args.messages} messages "
          f"({span_s:.1f}s of real time at speed {spec.speed}) ...",
          file=sys.stderr, flush=True)
    reference = reference_run(spec)
    ref_counts = {sink: len(s) for sink, s in reference.items()}
    print(f"reference: {sum(ref_counts.values())} outputs "
          f"across {len(ref_counts)} sink(s)", file=sys.stderr, flush=True)

    if args.record is not None:
        # Record the simulated twin: determinism makes it the faithful
        # recording of every trial that passes the byte-identity judge.
        from repro.runtime.flightrec import record_run

        bundle = record_run(spec, args.record, seed=args.seed,
                            source="cluster")
        print(f"cluster: wrote replay bundle {bundle}",
              file=sys.stderr, flush=True)

    trials: List[Tuple[str, Optional[str]]] = []
    if not args.skip_clean:
        trials.append(("networked-clean", None))
    if kill_engine is not None:
        trials.append((f"networked-kill-{kill_engine}", kill_engine))
    if not trials:
        trials.append(("networked-clean", None))

    report = {"reference_outputs": sum(ref_counts.values()), "trials": {}}
    metrics_docs: Dict[str, Dict] = {}
    failed = False
    for label, victim in trials:
        print(f"{label}: launching "
              f"{len(plan_cluster_nodes(spec)) - 1} child process(es) ...",
              file=sys.stderr, flush=True)
        result = _trial(label, spec, ref_counts, victim,
                        args.kill_fraction, deadline_s)
        verdict = verify_trace_equivalence(
            reference, result.pop("streams"), trial=label,
            require_complete=True,
        )
        liveness = (group_liveness(spec, result, victim, ref_counts)
                    if victim is not None else None)
        result.pop("arrival_ticks", None)  # bulky; judged above
        metrics_docs[label] = result.pop("metrics", None)
        result["liveness"] = liveness
        ok = (verdict.deterministic and result["complete"]
              and not result["error"]
              and (liveness is None or liveness["ok"]))
        failed = failed or not ok
        result["deterministic"] = verdict.deterministic
        result["ok"] = ok
        report["trials"][label] = result
        status = "OK" if ok else "FAIL"
        print(f"{label}: {status} — {sum(result['counts'].values())}"
              f"/{sum(ref_counts.values())} outputs in "
              f"{result['elapsed_s']}s, stutter={result['stutter']}, "
              f"epoch_resets={result['epoch_resets']}"
              + (f", killed {result['killed']['engine']} after "
                 f"{result['killed']['at_outputs']} outputs"
                 if result["killed"] else ""),
              file=sys.stderr, flush=True)
        if liveness is not None:
            print(f"{label}: non-victim liveness "
                  f"{'OK' if liveness['ok'] else 'FAIL'} — "
                  f"{len(liveness['independent_sinks'])} independent "
                  f"sink(s), stalled={liveness['stalled_sinks']}",
                  file=sys.stderr, flush=True)
        for proc, audit in sorted(result.get("audit_reports", {}).items()):
            print(f"{label}: audit[{proc}]: "
                  f"{json.dumps(audit, sort_keys=True)}",
                  file=sys.stderr, flush=True)
        if result["error"]:
            print(f"{label}: error: {result['error']}",
                  file=sys.stderr, flush=True)
        if not verdict.deterministic:
            print(verdict.summary(), file=sys.stderr, flush=True)

    if args.metrics_out is not None:
        Path(args.metrics_out).write_text(
            json.dumps(metrics_docs, indent=2, sort_keys=True) + "\n")
        print(f"cluster: wrote metrics to {args.metrics_out}",
              file=sys.stderr, flush=True)
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    print("cluster: " + ("all trials byte-identical to the simulated "
                         "reference" if not failed else "FAILED"),
          file=sys.stderr, flush=True)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
