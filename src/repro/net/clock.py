"""Real-time clock adapter for the discrete-event kernel.

The networked runtime does not fork the scheduling loop: each process
owns an unmodified :class:`~repro.sim.kernel.Simulator` and *pumps* it
against the wall clock.  :class:`RealtimeClock` maps wall time to ticks
(``ticks = elapsed_seconds * 1e9 * speed``; 1 tick = 1 ns at speed 1.0),
and :class:`RealtimeKernel` repeatedly advances the simulator to the
current real tick, injects items that arrived from the network, then
sleeps until the next timer or the next arrival.

Determinism under this pump is exactly the paper's claim: dispatch order
inside an engine is *virtual-time* order, and every virtual time is
computed by deterministic estimators from ingress timestamps — so how
fast (or how unevenly) real time advances, and when silence facts or
probes happen to arrive, changes only latency, never outcomes.  The one
simulation-only assumption that would be unsound over real sockets —
the local-clock freshness bound on external wires, which presumes the
ingress shares the engine's clock — is disabled in networked mode by
wiring external inputs with ``external=False`` (see
:meth:`repro.net.node.EngineHost`); ingress silence then travels as
explicit facts, which is sound on any transport.

All processes share one epoch ``t0`` (distributed by the coordinator's
GO barrier) so their tick clocks advance in step; ``time.time()`` skew
between processes shifts only real-time pacing, not virtual times.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator

#: Longest sleep between pump iterations; bounds how stale the clock
#: can be when nothing is scheduled and nothing arrives.
_MAX_POLL_S = 0.05

#: Sleep while the transport reports congestion.
_CONGESTION_POLL_S = 0.01


class RealtimeClock:
    """Wall-clock to tick mapping with a settable shared epoch."""

    def __init__(self, speed: float, epoch: Optional[float] = None):
        if speed <= 0:
            raise SimulationError(f"clock speed must be positive: {speed}")
        #: Simulated ticks per real nanosecond (1.0 = real time).
        self.speed = float(speed)
        self._epoch = epoch

    def set_epoch(self, t0: float) -> None:
        """Fix the wall-clock time (unix seconds) of tick zero."""
        self._epoch = float(t0)

    @property
    def started(self) -> bool:
        return self._epoch is not None

    def ticks(self) -> int:
        """Current real tick (0 before the epoch)."""
        if self._epoch is None:
            return 0
        elapsed = time.time() - self._epoch
        if elapsed <= 0:
            return 0
        return int(elapsed * 1e9 * self.speed)

    def seconds_until(self, tick: int) -> float:
        """Wall seconds from now until ``tick`` (<= 0 if already due)."""
        return (tick - self.ticks()) / (1e9 * self.speed)


class RealtimeKernel:
    """Pumps a :class:`Simulator` against a :class:`RealtimeClock`.

    Network readers hand arriving items in with :meth:`inject`; the pump
    first advances the simulator to the current real tick, then runs the
    handlers at ``sim.now == real tick`` — so an ingress answering a
    curiosity probe with "silent through now - 1" is making a sound
    promise (every future arrival will be stamped >= now).
    """

    def __init__(self, sim: Simulator, clock: RealtimeClock,
                 congestion_check: Optional[Callable[[], bool]] = None):
        self.sim = sim
        self.clock = clock
        self.congestion_check = congestion_check
        self._inbox: Deque[Callable[[], None]] = deque()
        self._wake = asyncio.Event()
        self._stopped = False
        #: Diagnostics.
        self.injected = 0
        self.congestion_pauses = 0

    def inject(self, fn: Callable[[], None]) -> None:
        """Queue ``fn`` to run at the pump's next iteration.

        Must be called from the owning event loop (connection readers
        are tasks on it); the pump never runs concurrently with them, so
        no locking is needed.
        """
        self._inbox.append(fn)
        self.injected += 1
        self._wake.set()

    def stop(self) -> None:
        """Make :meth:`run` return after the current iteration."""
        self._stopped = True
        self._wake.set()

    async def run(self) -> None:
        """Pump until :meth:`stop`."""
        while not self._stopped:
            if self.congestion_check is not None and self.congestion_check():
                # A peer is not keeping up: stop advancing local time so
                # the engine cannot race ahead of its own output channel
                # (end-to-end backpressure).
                self.congestion_pauses += 1
                await asyncio.sleep(_CONGESTION_POLL_S)
                continue
            target = max(self.clock.ticks(), self.sim.now)
            self.sim.run(until=target)
            while self._inbox:
                self._inbox.popleft()()
            self._wake.clear()
            if self._inbox or self._stopped:
                continue
            nxt = self.sim.next_event_time()
            if nxt is not None:
                timeout = min(_MAX_POLL_S, self.clock.seconds_until(nxt))
                if timeout <= 0:
                    continue
            else:
                timeout = _MAX_POLL_S
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
