"""Canonical binary wire format.

Every frame on a :mod:`repro.net` socket is::

    uint32   length    -- big-endian byte count of everything after it
    uint8    version   -- WIRE_VERSION; receivers reject mismatches
    uint8    frame tag -- FRAME_* below
    bytes    body      -- canonical cpser-encoded dict

The body encoding reuses :mod:`repro.runtime.checkpoint` (sorted dict
keys, tagged bytes/tuples), so identical values always produce identical
bytes — the property the determinism tests assert at the byte level
carries over to the wire unchanged.

Frame tags (handshake and transport control):

====================  ===  =================================================
``FRAME_HELLO``       1    opens a channel: ``{"peer", "dst", "proto"}``
``FRAME_WELCOME``     2    accepts: ``{"incarnation"}`` of the hosted node
``FRAME_NOT_HERE``    3    the destination node is not hosted here (yet)
``FRAME_ITEM``        4    one message: ``{"seq", "src", "dst", "msg"}``
``FRAME_ACK``         5    cumulative receipt: ``{"upto"}`` (next expected)
``FRAME_BATCH``       6    many messages: ``{"items": [ITEM body, ...]}``
``FRAME_ERROR``       7    structured reject: ``{"error", "proto"}``
====================  ===  =================================================

Gateway frame tags (the public client protocol of ``repro.gateway``;
same framing, same version byte, disjoint tag block):

====================  ===  =================================================
``FRAME_GW_HELLO``    8    client opens: ``{"client", "proto"}``
``FRAME_GW_WELCOME``  9    gateway accepts: ``{"gateway", "inputs"}``
``FRAME_GW_SUBMIT``   10   one submission: ``{"req", "input", "payload"}``
``FRAME_GW_ACCEPT``   11   stamped + logged: ``{"req", "seq", "vt"}``
``FRAME_GW_BUSY``     12   shed/ratelimited: ``{"req", "reason", "retry_ms"}``
====================  ===  =================================================

Message type tags (the ``"k"`` of an ITEM's ``"msg"`` dict) are assigned
from :data:`repro.core.message.WIRE_MESSAGE_TYPES` plus the transport
types defined here; see :data:`MESSAGE_TAGS`.  Tags are permanent: new
types append, existing tags are never renumbered.

**Batching.**  A ``FRAME_BATCH`` carries any number of ITEM bodies in
sender-sequence order; receivers process them exactly as if each had
arrived in its own ``FRAME_ITEM``, then acknowledge the whole frame
with **one** cumulative ACK (the ack-coalescing contract: at least one
ACK per frame, never one per item).  Because acks are cumulative, a
coalesced ack acknowledges every item of the batch at once; senders
must accept any ``upto`` between their ack frontier and their next
unassigned sequence number and reject everything else (a stale host
answering after a promotion must not regress or overrun the frontier).
Hot senders build frames through a :class:`FrameEncoder`, which reuses
a per-channel scratch buffer and serializes one body per *batch*
instead of one per message.

**Truncation vs EOF.**  A byte stream may end cleanly only on a frame
boundary.  :func:`read_frame` returns ``None`` for that case alone; a
connection that dies after part of a frame was read (mid-header or
mid-payload) raises :class:`~repro.errors.TransportError`, so transports
count a reset instead of mistaking a torn frame for an orderly close.
:meth:`FrameSplitter.eof` mirrors the same distinction for non-asyncio
byte streams.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type

from repro.core.message import WIRE_MESSAGE_TYPES, message_fields
from repro.errors import TransportError
from repro.runtime import checkpoint as cpser
from repro.runtime.detector import Heartbeat

#: Version byte carried by every frame.  Bump on incompatible changes.
WIRE_VERSION = 1

#: Hard cap on one frame's byte count (a corrupt length prefix must not
#: make a reader allocate gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")

FRAME_HELLO = 1
FRAME_WELCOME = 2
FRAME_NOT_HERE = 3
FRAME_ITEM = 4
FRAME_ACK = 5
FRAME_BATCH = 6
FRAME_ERROR = 7
# Gateway client protocol (public ingress plane).  Tags are permanent:
# new frames append, existing tags are never renumbered.
FRAME_GW_HELLO = 8
FRAME_GW_WELCOME = 9
FRAME_GW_SUBMIT = 10
FRAME_GW_ACCEPT = 11
FRAME_GW_BUSY = 12

_FRAME_TAGS = {FRAME_HELLO, FRAME_WELCOME, FRAME_NOT_HERE,
               FRAME_ITEM, FRAME_ACK, FRAME_BATCH, FRAME_ERROR,
               FRAME_GW_HELLO, FRAME_GW_WELCOME, FRAME_GW_SUBMIT,
               FRAME_GW_ACCEPT, FRAME_GW_BUSY}


class CodecError(TransportError):
    """A frame or message could not be encoded or decoded."""


# ----------------------------------------------------------------------
# Transport-level message types (cluster control; never seen by engines'
# virtual-time logic except FenceRequest, which halts them)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GoSignal:
    """Coordinator's start barrier: all processes begin at wall-clock
    ``t0`` (unix seconds) with the shared tick ``speed``."""

    t0: float
    speed: float


@dataclass(frozen=True)
class Shutdown:
    """Coordinator asks a process to exit cleanly."""

    reason: str = ""


@dataclass(frozen=True)
class FenceRequest:
    """Best-effort fence: halt the named engine (false-positive safety).

    Sent by the replica-side recovery sequencing to the *primary*
    address of a declared-dead engine before its replica is promoted, so
    a merely-slow engine cannot keep emitting under a promoted identity.
    """

    engine_id: str


@dataclass(frozen=True)
class CorruptRequest:
    """Chaos fault: corrupt the named engine's live state in place.

    Delivered by the chaos driver to the process hosting ``engine_id``;
    the handler plants an untracked mutation (see
    :func:`repro.runtime.audit.corrupt_component_state`) that only the
    divergence audit can observe.  ``component`` optionally names the
    victim component (empty string = auto-pick).
    """

    engine_id: str
    component: str = ""


#: tag -> class for everything that may appear inside an ITEM frame.
#: Tags 1..N cover the core message types in their registry order;
#: transport types occupy a reserved block from 32.
MESSAGE_TAGS: Dict[int, Type] = {
    **{i + 1: cls for i, cls in enumerate(WIRE_MESSAGE_TYPES)},
    31: Heartbeat,
    32: GoSignal,
    33: Shutdown,
    34: FenceRequest,
    35: CorruptRequest,
}

_TAG_OF: Dict[Type, int] = {cls: tag for tag, cls in MESSAGE_TAGS.items()}


def message_tag(msg: Any) -> int:
    """The permanent wire tag of one message instance (by exact type)."""
    tag = _TAG_OF.get(type(msg))
    if tag is None:
        raise CodecError(f"not a wire message type: {type(msg).__name__}")
    return tag


def encode_message(msg: Any) -> Dict[str, Any]:
    """Encode one message to its canonical wire dict ``{"k", "f"}``."""
    return {"k": message_tag(msg), "f": message_fields(msg)}


def decode_message(wire: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_message`."""
    try:
        tag = wire["k"]
        fields = wire["f"]
    except (TypeError, KeyError) as exc:
        raise CodecError(f"malformed wire message: {wire!r}") from exc
    cls = MESSAGE_TAGS.get(tag)
    if cls is None:
        raise CodecError(f"unknown message tag {tag!r}")
    try:
        return cls(**fields)
    except TypeError as exc:
        raise CodecError(
            f"bad fields for {cls.__name__}: {sorted(fields)}"
        ) from exc


def encode_message_bytes(msg: Any) -> bytes:
    """Canonical bytes of one message (used by the property tests and
    the codec micro-benchmark; frames embed the dict form directly)."""
    return cpser.dumps(encode_message(msg))


def decode_message_bytes(blob: bytes) -> Any:
    """Inverse of :func:`encode_message_bytes`."""
    return decode_message(cpser.loads(blob))


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------


def encode_frame(frame_tag: int, body: Dict[str, Any]) -> bytes:
    """One full frame including the length prefix."""
    if frame_tag not in _FRAME_TAGS:
        raise CodecError(f"unknown frame tag {frame_tag!r}")
    payload = bytes([WIRE_VERSION, frame_tag]) + cpser.dumps(body)
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame too large: {len(payload)} bytes")
    return _LEN.pack(len(payload)) + payload


def decode_frame_payload(payload: bytes) -> Tuple[int, Dict[str, Any]]:
    """Decode a frame's payload (everything after the length prefix)."""
    if len(payload) < 2:
        raise CodecError("truncated frame")
    version, frame_tag = payload[0], payload[1]
    if version != WIRE_VERSION:
        raise CodecError(
            f"wire version mismatch: got {version}, expect {WIRE_VERSION}"
        )
    if frame_tag not in _FRAME_TAGS:
        raise CodecError(f"unknown frame tag {frame_tag}")
    body = cpser.loads(payload[2:])
    if not isinstance(body, dict):
        raise CodecError("frame body is not a dict")
    return frame_tag, body


def encode_hello(peer_id: str, dst_node: str,
                 proto: int = WIRE_VERSION) -> bytes:
    return encode_frame(FRAME_HELLO, {"peer": peer_id, "dst": dst_node,
                                      "proto": proto})


def encode_welcome(incarnation: str) -> bytes:
    return encode_frame(FRAME_WELCOME, {"incarnation": incarnation})


def encode_not_here() -> bytes:
    return encode_frame(FRAME_NOT_HERE, {})


def encode_item(seq: int, src: str, dst: str, msg: Any) -> bytes:
    return encode_frame(FRAME_ITEM, {"seq": seq, "src": src, "dst": dst,
                                     "msg": encode_message(msg)})


def encode_ack(upto: int) -> bytes:
    return encode_frame(FRAME_ACK, {"upto": upto})


def encode_error(error: str) -> bytes:
    """Structured rejection, e.g. of a HELLO whose ``proto`` mismatches.

    Carries the *speaker's* wire version so the rejected peer can log
    what would have been accepted.
    """
    return encode_frame(FRAME_ERROR, {"error": error,
                                      "proto": WIRE_VERSION})


def encode_gw_hello(client_id: str, proto: int = WIRE_VERSION) -> bytes:
    """A client opens its gateway session.  ``client_id`` is
    ``<group>:<n>`` (e.g. ``clients:17``); the group prefix is what the
    chaos fault proxy classifies client links by."""
    return encode_frame(FRAME_GW_HELLO, {"client": client_id,
                                         "proto": proto})


def encode_gw_welcome(gateway_id: str, inputs) -> bytes:
    """The gateway accepts a session and advertises its input ids."""
    return encode_frame(FRAME_GW_WELCOME, {"gateway": gateway_id,
                                           "inputs": sorted(inputs)})


def encode_gw_submit(req: int, input_id: str, payload: Any) -> bytes:
    """One client submission.  ``req`` is a per-client monotonically
    increasing request id — the gateway's dedup key, so a retransmit
    after a reconnect can never be stamped twice."""
    return encode_frame(FRAME_GW_SUBMIT, {"req": req, "input": input_id,
                                          "payload": payload})


def encode_gw_accept(req: int, seq: int, vt: int) -> bytes:
    """The submission was stamped and logged: its ingress sequence
    number and assigned virtual time (also the payload's ``birth``)."""
    return encode_frame(FRAME_GW_ACCEPT, {"req": req, "seq": seq,
                                          "vt": vt})


def encode_gw_busy(req: int, reason: str, retry_ms: float) -> bytes:
    """Structured load-shed reject: ``reason`` is ``"rate"`` (per-client
    token bucket empty) or ``"shed"`` (global admission limit reached);
    ``retry_ms`` is the gateway's backoff hint."""
    return encode_frame(FRAME_GW_BUSY, {"req": req, "reason": reason,
                                        "retry_ms": float(retry_ms)})


def item_body(seq: int, src: str, dst: str, msg: Any) -> Dict[str, Any]:
    """The body dict of one ITEM — also the element type of a BATCH."""
    return {"seq": seq, "src": src, "dst": dst, "msg": encode_message(msg)}


class FrameEncoder:
    """Allocation-lean frame encoder with a reusable scratch buffer.

    :func:`encode_frame` allocates four intermediate objects per frame
    (tag bytes, payload concat, length pack, final concat); on the hot
    send path that is four allocations *per message*.  A ``FrameEncoder``
    assembles the frame in place in a per-channel ``bytearray`` that is
    grown once and reused forever, and — via :meth:`encode_batch` —
    serializes one body for an entire burst of items instead of one per
    item.  The produced bytes are identical to :func:`encode_frame`'s.
    """

    __slots__ = ("_scratch",)

    def __init__(self, initial_capacity: int = 4096):
        self._scratch = bytearray(initial_capacity)

    def encode(self, frame_tag: int, body: Dict[str, Any]) -> bytes:
        """One full frame, byte-identical to :func:`encode_frame`."""
        if frame_tag not in _FRAME_TAGS:
            raise CodecError(f"unknown frame tag {frame_tag!r}")
        blob = cpser.dumps(body)
        length = 2 + len(blob)
        if length > MAX_FRAME_BYTES:
            raise CodecError(f"frame too large: {length} bytes")
        scratch = self._scratch
        need = _LEN.size + length
        if len(scratch) < need:
            scratch.extend(bytes(need - len(scratch)))
        _LEN.pack_into(scratch, 0, length)
        scratch[4] = WIRE_VERSION
        scratch[5] = frame_tag
        scratch[6:need] = blob
        return bytes(memoryview(scratch)[:need])

    def encode_batch(self, items: list) -> bytes:
        """One BATCH frame from pre-built ITEM bodies (:func:`item_body`).

        Items must be in sender-sequence order; the receiver processes
        them exactly as a run of singleton ITEM frames and answers with
        one cumulative ACK for the whole frame.
        """
        return self.encode(FRAME_BATCH, {"items": list(items)})

    def encode_ack(self, upto: int) -> bytes:
        """One ACK frame, scratch-assembled."""
        return self.encode(FRAME_ACK, {"upto": upto})


def batch_items(body: Dict[str, Any]) -> list:
    """The ITEM bodies of a decoded BATCH frame, validated."""
    items = body.get("items")
    if not isinstance(items, list):
        raise CodecError(f"malformed batch frame: {sorted(body)}")
    return items


class FrameSplitter:
    """Incremental splitter: feed raw bytes, get complete frames out.

    Used by tests and anywhere a non-asyncio byte stream needs framing;
    the asyncio path uses :func:`read_frame` instead.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes):
        """Consume ``data``; return the list of completed ``(frame_tag,
        body)`` pairs (empty while a frame is still partial)."""
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"frame too large: {length} bytes")
            if len(self._buf) < _LEN.size + length:
                return frames
            payload = bytes(self._buf[_LEN.size:_LEN.size + length])
            del self._buf[:_LEN.size + length]
            frames.append(decode_frame_payload(payload))

    @property
    def pending_bytes(self) -> int:
        """Bytes of the partial frame buffered so far (0 at a boundary)."""
        return len(self._buf)

    def eof(self) -> None:
        """Declare the byte stream ended; raise if it tore a frame.

        Mirrors :func:`read_frame`'s distinction: an EOF on a frame
        boundary is an orderly close (returns quietly), an EOF with a
        partial frame buffered is a truncation and raises
        :class:`~repro.errors.TransportError`.
        """
        if self._buf:
            raise TransportError(
                f"stream ended mid-frame with {len(self._buf)} "
                f"unframed byte(s) buffered"
            )


async def read_frame_sized(reader
                           ) -> Optional[Tuple[int, Dict[str, Any], int]]:
    """Like :func:`read_frame`, but also report the frame's wire size.

    Returns ``(frame_tag, body, total_bytes)`` where ``total_bytes``
    includes the length prefix — the number the gateway's admission
    controller charges a submission for, so in-flight byte accounting
    matches what actually crossed the socket rather than a re-encode.
    Same truncation semantics as :func:`read_frame`.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise TransportError(
                f"connection died mid-frame: {len(exc.partial)} of "
                f"{_LEN.size} header bytes"
            ) from exc
        return None
    except ConnectionError:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame too large: {length} bytes")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError(
            f"connection died mid-frame: {len(exc.partial)} of {length} "
            f"payload bytes"
        ) from exc
    except ConnectionError as exc:
        raise TransportError(
            f"connection reset mid-frame awaiting {length} payload bytes"
        ) from exc
    frame_tag, body = decode_frame_payload(payload)
    return frame_tag, body, _LEN.size + length


async def read_frame(reader) -> Optional[Tuple[int, Dict[str, Any]]]:
    """Read one frame from an asyncio stream.

    Returns ``None`` only on a *clean* EOF, i.e. the connection closed
    exactly on a frame boundary.  A connection that dies after part of a
    frame was read — mid-header, or mid-payload after a full header —
    raises :class:`~repro.errors.TransportError`: a torn frame is a
    connection reset, never an orderly close, and callers must count it
    as one (the sender's unacked tail will be retransmitted after the
    reconnect).
    """
    frame = await read_frame_sized(reader)
    if frame is None:
        return None
    frame_tag, body, _nbytes = frame
    return frame_tag, body
