"""Canonical binary wire format.

Every frame on a :mod:`repro.net` socket is::

    uint32   length    -- big-endian byte count of everything after it
    uint8    version   -- WIRE_VERSION; receivers reject mismatches
    uint8    frame tag -- FRAME_* below
    bytes    body      -- canonical cpser-encoded dict

The body encoding reuses :mod:`repro.runtime.checkpoint` (sorted dict
keys, tagged bytes/tuples), so identical values always produce identical
bytes — the property the determinism tests assert at the byte level
carries over to the wire unchanged.

Frame tags (handshake and transport control):

====================  ===  =================================================
``FRAME_HELLO``       1    opens a channel: ``{"peer", "dst", "proto"}``
``FRAME_WELCOME``     2    accepts: ``{"incarnation"}`` of the hosted node
``FRAME_NOT_HERE``    3    the destination node is not hosted here (yet)
``FRAME_ITEM``        4    one message: ``{"seq", "src", "dst", "msg"}``
``FRAME_ACK``         5    cumulative receipt: ``{"upto"}`` (next expected)
====================  ===  =================================================

Message type tags (the ``"k"`` of an ITEM's ``"msg"`` dict) are assigned
from :data:`repro.core.message.WIRE_MESSAGE_TYPES` plus the transport
types defined here; see :data:`MESSAGE_TAGS`.  Tags are permanent: new
types append, existing tags are never renumbered.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type

from repro.core.message import WIRE_MESSAGE_TYPES, message_fields
from repro.errors import TransportError
from repro.runtime import checkpoint as cpser
from repro.runtime.detector import Heartbeat

#: Version byte carried by every frame.  Bump on incompatible changes.
WIRE_VERSION = 1

#: Hard cap on one frame's byte count (a corrupt length prefix must not
#: make a reader allocate gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")

FRAME_HELLO = 1
FRAME_WELCOME = 2
FRAME_NOT_HERE = 3
FRAME_ITEM = 4
FRAME_ACK = 5

_FRAME_TAGS = {FRAME_HELLO, FRAME_WELCOME, FRAME_NOT_HERE,
               FRAME_ITEM, FRAME_ACK}


class CodecError(TransportError):
    """A frame or message could not be encoded or decoded."""


# ----------------------------------------------------------------------
# Transport-level message types (cluster control; never seen by engines'
# virtual-time logic except FenceRequest, which halts them)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GoSignal:
    """Coordinator's start barrier: all processes begin at wall-clock
    ``t0`` (unix seconds) with the shared tick ``speed``."""

    t0: float
    speed: float


@dataclass(frozen=True)
class Shutdown:
    """Coordinator asks a process to exit cleanly."""

    reason: str = ""


@dataclass(frozen=True)
class FenceRequest:
    """Best-effort fence: halt the named engine (false-positive safety).

    Sent by the replica-side recovery sequencing to the *primary*
    address of a declared-dead engine before its replica is promoted, so
    a merely-slow engine cannot keep emitting under a promoted identity.
    """

    engine_id: str


@dataclass(frozen=True)
class CorruptRequest:
    """Chaos fault: corrupt the named engine's live state in place.

    Delivered by the chaos driver to the process hosting ``engine_id``;
    the handler plants an untracked mutation (see
    :func:`repro.runtime.audit.corrupt_component_state`) that only the
    divergence audit can observe.  ``component`` optionally names the
    victim component (empty string = auto-pick).
    """

    engine_id: str
    component: str = ""


#: tag -> class for everything that may appear inside an ITEM frame.
#: Tags 1..N cover the core message types in their registry order;
#: transport types occupy a reserved block from 32.
MESSAGE_TAGS: Dict[int, Type] = {
    **{i + 1: cls for i, cls in enumerate(WIRE_MESSAGE_TYPES)},
    31: Heartbeat,
    32: GoSignal,
    33: Shutdown,
    34: FenceRequest,
    35: CorruptRequest,
}

_TAG_OF: Dict[Type, int] = {cls: tag for tag, cls in MESSAGE_TAGS.items()}


def message_tag(msg: Any) -> int:
    """The permanent wire tag of one message instance (by exact type)."""
    tag = _TAG_OF.get(type(msg))
    if tag is None:
        raise CodecError(f"not a wire message type: {type(msg).__name__}")
    return tag


def encode_message(msg: Any) -> Dict[str, Any]:
    """Encode one message to its canonical wire dict ``{"k", "f"}``."""
    return {"k": message_tag(msg), "f": message_fields(msg)}


def decode_message(wire: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_message`."""
    try:
        tag = wire["k"]
        fields = wire["f"]
    except (TypeError, KeyError) as exc:
        raise CodecError(f"malformed wire message: {wire!r}") from exc
    cls = MESSAGE_TAGS.get(tag)
    if cls is None:
        raise CodecError(f"unknown message tag {tag!r}")
    try:
        return cls(**fields)
    except TypeError as exc:
        raise CodecError(
            f"bad fields for {cls.__name__}: {sorted(fields)}"
        ) from exc


def encode_message_bytes(msg: Any) -> bytes:
    """Canonical bytes of one message (used by the property tests and
    the codec micro-benchmark; frames embed the dict form directly)."""
    return cpser.dumps(encode_message(msg))


def decode_message_bytes(blob: bytes) -> Any:
    """Inverse of :func:`encode_message_bytes`."""
    return decode_message(cpser.loads(blob))


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------


def encode_frame(frame_tag: int, body: Dict[str, Any]) -> bytes:
    """One full frame including the length prefix."""
    if frame_tag not in _FRAME_TAGS:
        raise CodecError(f"unknown frame tag {frame_tag!r}")
    payload = bytes([WIRE_VERSION, frame_tag]) + cpser.dumps(body)
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame too large: {len(payload)} bytes")
    return _LEN.pack(len(payload)) + payload


def decode_frame_payload(payload: bytes) -> Tuple[int, Dict[str, Any]]:
    """Decode a frame's payload (everything after the length prefix)."""
    if len(payload) < 2:
        raise CodecError("truncated frame")
    version, frame_tag = payload[0], payload[1]
    if version != WIRE_VERSION:
        raise CodecError(
            f"wire version mismatch: got {version}, expect {WIRE_VERSION}"
        )
    if frame_tag not in _FRAME_TAGS:
        raise CodecError(f"unknown frame tag {frame_tag}")
    body = cpser.loads(payload[2:])
    if not isinstance(body, dict):
        raise CodecError("frame body is not a dict")
    return frame_tag, body


def encode_hello(peer_id: str, dst_node: str) -> bytes:
    return encode_frame(FRAME_HELLO, {"peer": peer_id, "dst": dst_node,
                                      "proto": WIRE_VERSION})


def encode_welcome(incarnation: str) -> bytes:
    return encode_frame(FRAME_WELCOME, {"incarnation": incarnation})


def encode_not_here() -> bytes:
    return encode_frame(FRAME_NOT_HERE, {})


def encode_item(seq: int, src: str, dst: str, msg: Any) -> bytes:
    return encode_frame(FRAME_ITEM, {"seq": seq, "src": src, "dst": dst,
                                     "msg": encode_message(msg)})


def encode_ack(upto: int) -> bytes:
    return encode_frame(FRAME_ACK, {"upto": upto})


class FrameSplitter:
    """Incremental splitter: feed raw bytes, get complete frames out.

    Used by tests and anywhere a non-asyncio byte stream needs framing;
    the asyncio path uses :func:`read_frame` instead.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes):
        """Consume ``data``; yield ``(frame_tag, body)`` per frame."""
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"frame too large: {length} bytes")
            if len(self._buf) < _LEN.size + length:
                return frames
            payload = bytes(self._buf[_LEN.size:_LEN.size + length])
            del self._buf[:_LEN.size + length]
            frames.append(decode_frame_payload(payload))


async def read_frame(reader) -> Optional[Tuple[int, Dict[str, Any]]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame too large: {length} bytes")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return decode_frame_payload(payload)
