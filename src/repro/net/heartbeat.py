"""Replica-side process: heartbeat detection and over-the-wire failover.

A replica process hosts one :class:`~repro.runtime.replica.PassiveReplica`
and watches its engine with the stock
:class:`~repro.runtime.detector.HeartbeatDetector` — fed by real
heartbeats that crossed a socket.  When the timeout expires, the
*unchanged* :class:`~repro.runtime.recovery.RecoveryManager` sequences
recovery; this module only supplies the deployment facade it drives:

* the "failed engine" it halts is a
  :class:`~repro.net.node.RemoteEngineHandle`, whose halt is a fence
  frame fired at the dead engine's primary address;
* ``rebuild_engine`` constructs the successor engine *in this process*
  from the locally shipped checkpoint chain, rewires it onto the net
  transport, and re-registers the engine's node id here — bumping its
  incarnation, which is what makes every peer's channel epoch-reset and
  re-route to this process;
* ``begin_recovery`` then sends real ReplayRequests over the sockets to
  the ingresses and peer engines, which replay from their logs and
  retained output buffers exactly as they would in simulation.

Known restriction: determinism-fault logs are process-local, so the net
runtime must run with ``calibrate=False`` (the spec's engine config
default) — recalibration events recorded on the primary would be absent
from the replica's replay.
"""

from __future__ import annotations

from typing import Dict

from repro.net.node import NetTransport, RemoteEngineHandle
from repro.net.topology import ClusterSpec, build_deployment
from repro.runtime.detector import HeartbeatDetector
from repro.runtime.engine import ExecutionEngine
from repro.runtime.recovery import RecoveryManager
from repro.sim.kernel import Simulator


class ReplicaHost:
    """One process hosting one passive replica (and its successor engine).

    Duck-types the deployment surface :class:`RecoveryManager` and
    :class:`HeartbeatDetector` use: ``engines``, ``network``, ``sim``,
    ``metrics``, ``rebuild_engine``.
    """

    def __init__(self, spec: ClusterSpec, engine_id: str,
                 sim: Simulator, transport: NetTransport, rank: int = 0):
        self.spec = spec
        self.engine_id = engine_id
        #: This follower's promotion rank within the replication group.
        #: Rank 0 is first in the succession line; higher ranks run
        #: rank-scaled detector timeouts so they only act once every
        #: rank below them has died too.
        self.rank = int(rank)
        self.sim = sim
        self.network = transport
        self.deployment = build_deployment(spec, sim=sim)
        self.metrics = self.deployment.metrics
        for engine in self.deployment.engines.values():
            engine.halt()  # all zombies until this replica promotes one

        transport.metrics = self.metrics
        #: What the recovery manager sees as "the engines": the watched
        #: engine only, represented by its remote handle until promotion.
        self.engines: Dict[str, object] = {
            engine_id: RemoteEngineHandle(engine_id, spec, transport.peer_id,
                                          transport=transport, rank=self.rank)
        }
        self.recovery = RecoveryManager(self)

        self.replica = self.deployment.followers[engine_id][self.rank]
        self.replica.network = transport
        transport.register(self.replica)

        config = self.deployment.engines[engine_id].config
        self.detector = HeartbeatDetector(
            sim, self.recovery, engine_id,
            config.heartbeat_interval, config.heartbeat_miss_limit,
            rank=self.rank,
        )
        self.replica.detector = self.detector

    def start(self) -> None:
        """Arm the heartbeat deadline (post-GO)."""
        self.detector.watch()

    # -- RecoveryManager callback ---------------------------------------
    def rebuild_engine(self, engine_id: str) -> ExecutionEngine:
        """Promote: build the successor engine here, replay over the net.

        Mirrors :meth:`repro.runtime.app.Deployment.rebuild_engine`, with
        the networked differences called out inline.
        """
        dep = self.deployment
        replica = self.replica
        engine = dep._build_engine(
            engine_id, cp_seq_start=max(0, replica.last_cp_seq)
        )
        # Rewire onto the net transport *before* anything can transmit.
        engine.network = self.network
        from repro.net.node import disable_external_clock_bound

        disable_external_clock_bound(engine)
        if replica.has_checkpoint:
            engine.restore_components(replica.materialize())
        else:
            for runtime in engine.runtimes.values():
                if engine.fault_manager is not None:
                    engine.fault_manager.replay_into(runtime)
        # Registering the engine's node id here bumps its incarnation:
        # peers' channels epoch-reset on the next WELCOME and re-route.
        self.engines[engine_id] = engine
        self.network.register(engine)
        engine.on_heal = lambda: self.network.register(engine)
        engine.start()  # local heartbeats now feed the local detector
        engine.begin_recovery()
        return engine

    def audit_report(self):
        """Audit/cadence outcome of the promoted engine, if any."""
        from repro.net.node import engine_audit_report

        engine = self.engines.get(self.engine_id)
        if not isinstance(engine, ExecutionEngine):
            return None  # never promoted: nothing ran here
        return engine_audit_report(engine)
