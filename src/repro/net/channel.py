"""Framed, reconnecting socket channels.

An :class:`OutboundChannel` carries messages from one process to one
destination *node* (an engine, replica, ingress, or consumer), wherever
that node is currently hosted.  It mirrors the delivery guarantees of
the simulated :class:`~repro.runtime.link.ReliableChannel`:

* **FIFO, exactly-once within an incarnation.**  Items get per-channel
  sequence numbers and stay buffered until cumulatively acknowledged;
  after a TCP drop the channel reconnects and resends everything
  unacknowledged, and the receiver discards sequence numbers it has
  already seen.
* **Epoch reset across incarnations.**  The WELCOME handshake carries
  the hosted node's *incarnation*.  When it changes (the node was
  re-hosted — i.e. a replica was promoted), buffered traffic for the
  dead incarnation is discarded and sequence numbers restart, exactly
  like ``ReliableChannel.reset()`` on engine failure: the volatile
  channel state died with the engine, and TART's checkpoint + replay
  recovery regenerates anything that mattered.
* **Backpressure.**  The writer honours the socket's flow control
  (``drain()``), and :meth:`backlog` exposes the unsent + unacked depth
  so the real-time pump can stop advancing the local engine when a peer
  falls behind (see ``RealtimeKernel.congestion_check``) — end-to-end
  backpressure instead of unbounded buffering.
* **Batched wire path.**  The send loop drains once per *burst*: every
  item pending at that moment is packed into ``FRAME_BATCH`` frames
  (``batch_max_items`` per frame, singletons stay plain ``FRAME_ITEM``)
  assembled through a per-channel :class:`~repro.net.codec.FrameEncoder`
  scratch buffer — one body serialization and one syscall carry many
  messages.  The receiver coalesces acknowledgements to one cumulative
  ACK per frame; the ack consumer rejects any ``upto`` outside the
  ``[frontier, next_seq]`` window, so a stale host answering after a
  promotion can neither regress nor overrun the ack frontier.

Address lists are ordered candidates: for an engine node the primary
host comes first and its replica's process second, so after a failover
the reconnect loop finds the promoted incarnation by itself (the
replica process answers NOT_HERE until promotion completes).
"""

from __future__ import annotations

import asyncio
import random
import sys
import zlib
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import FenceDeliveryError, TransportError
from repro.net import codec

#: Items buffered (unsent + unacked) above which a channel reports
#: congestion to the pump.
HIGH_WATER_ITEMS = 4096

#: Default cap on items packed into one FRAME_BATCH.  Bounds per-frame
#: latency and keeps a single torn batch cheap to retransmit; bursts
#: larger than this simply produce several batch frames.
BATCH_MAX_ITEMS = 64

#: Default reconnect backoff bounds in seconds (constructor-tunable so
#: chaos tests can compress wall-clock time).
BACKOFF_MIN_S = 0.02
BACKOFF_MAX_S = 0.5

#: Default connect / handshake timeouts in seconds.
CONNECT_TIMEOUT_S = 2.0
HANDSHAKE_TIMEOUT_S = 2.0


def backoff_jitter_rng(seed: int, peer: str, dst_node: str) -> random.Random:
    """A deterministic per-(peer, destination) jitter stream.

    Seeded from stable identifiers only (the cluster seed, the peer's
    *process name*, and the destination node), so the same deployment
    always draws the same jitter sequence — reproducible for chaos
    replay — while distinct channels draw *different* sequences, which
    is what desynchronizes the reconnect storm after a partition heals.
    """
    stable_peer = peer.rsplit(":", 1)[0]  # drop the per-run uuid suffix
    key = f"{seed}|{stable_peer}|{dst_node}".encode()
    return random.Random(zlib.crc32(key))


class OutboundChannel:
    """Orders and retransmits items toward one destination node."""

    def __init__(self, peer_id: str, dst_node: str,
                 addresses: Sequence[Tuple[str, int]],
                 backoff_min: float = BACKOFF_MIN_S,
                 backoff_max: float = BACKOFF_MAX_S,
                 connect_timeout: float = CONNECT_TIMEOUT_S,
                 handshake_timeout: float = HANDSHAKE_TIMEOUT_S,
                 jitter_seed: int = 0,
                 batch_max_items: int = BATCH_MAX_ITEMS,
                 ack_watcher: Optional[Callable[[int], None]] = None):
        if not addresses:
            raise codec.CodecError(f"no addresses for node {dst_node!r}")
        self.peer_id = peer_id
        self.dst_node = dst_node
        self.addresses: List[Tuple[str, int]] = [tuple(a) for a in addresses]
        self.backoff_min = float(backoff_min)
        self.backoff_max = float(backoff_max)
        self.connect_timeout = float(connect_timeout)
        self.handshake_timeout = float(handshake_timeout)
        self.batch_max_items = max(1, int(batch_max_items))
        self._jitter = backoff_jitter_rng(jitter_seed, peer_id, dst_node)
        #: Reusable scratch buffer for frame assembly (hot path).
        self._encoder = codec.FrameEncoder()
        #: Observer of the advancing ack frontier (benchmarks measure
        #: enqueue-to-ack latency through it); called with ``upto``.
        self._ack_watcher = ack_watcher
        #: Items accepted but not yet assigned a sequence number.
        self._pending: Deque[Tuple[str, Any]] = deque()
        #: (seq, ITEM body dict) sent but not yet acknowledged; resends
        #: re-pack these into fresh batch frames.
        self._unacked: Deque[Tuple[int, Dict[str, Any]]] = deque()
        self._next_seq = 0
        #: Cumulative ack frontier: everything below is acknowledged.
        self._ack_frontier = 0
        self._known_incarnation: Optional[str] = None
        #: When set, only incarnations hosted by this peer are accepted
        #: (the node is known to have moved there; see :meth:`redirect`).
        self._expected_peer: Optional[str] = None
        self._writer = None
        #: Whether a handshaken connection is currently up.  Channels to
        #: an unreachable node (its group is mid-failover) are *parked*:
        #: they buffer but do not count as congestion, so one group's
        #: failover cannot stall the pump feeding every other group (see
        #: :meth:`congested`).
        self.connected = False
        self._wake = asyncio.Event()
        self._closed = False
        self._task: Optional[asyncio.Task] = None
        #: Fatal protocol rejection, once one arrived (FRAME_ERROR).
        self.last_error: Optional[Exception] = None
        #: Diagnostics.
        self.items_sent = 0
        self.items_acked = 0
        self.items_resent = 0
        self.reconnects = 0
        self.connect_failures = 0
        self.epoch_resets = 0
        self.frames_sent = 0
        self.batches_sent = 0
        self.bytes_sent = 0
        self.acks_received = 0
        self.acks_rejected = 0
        self.torn_frames = 0
        self.proto_rejects = 0

    def counters(self) -> dict:
        """Per-channel fault/retransmit/epoch counters (for metrics)."""
        return {
            "items_sent": self.items_sent,
            "items_acked": self.items_acked,
            "items_resent": self.items_resent,
            "reconnects": self.reconnects,
            "connect_failures": self.connect_failures,
            "epoch_resets": self.epoch_resets,
            "frames_sent": self.frames_sent,
            "batches_sent": self.batches_sent,
            "bytes_sent": self.bytes_sent,
            "acks_received": self.acks_received,
            "acks_rejected": self.acks_rejected,
            "torn_frames": self.torn_frames,
            "proto_rejects": self.proto_rejects,
        }

    # -- producer side (called synchronously from sim events) ----------
    def enqueue(self, src_node: str, msg: Any) -> None:
        """Accept one message for delivery; never blocks."""
        if self._closed:
            return
        self._pending.append((src_node, msg))
        self._wake.set()

    def backlog(self) -> int:
        """Unsent + unacknowledged item count (congestion signal)."""
        return len(self._pending) + len(self._unacked)

    def congested(self) -> bool:
        """Whether the pump should pause before producing more.

        Only a *connected* channel exerts backpressure.  While the peer
        is down (reconnect loop cycling candidates — e.g. its replication
        group is electing a successor) the backlog grows without pausing
        the pump; promotion triggers an epoch reset that discards the
        dead incarnation's backlog, and replay regenerates what
        mattered.  The trade is bounded stall blast-radius for
        transiently unbounded buffering, sized by the failover window.
        """
        return self.connected and self.backlog() > HIGH_WATER_ITEMS

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Launch the connect/send loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"channel:{self.dst_node}"
            )

    async def close(self) -> None:
        """Stop the channel; buffered items are dropped."""
        self._closed = True
        self._wake.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None

    def reset(self) -> None:
        """Discard buffered traffic (the peer node was declared failed).

        Mirrors ``ReliableChannel.reset()``: in-flight and unacked items
        of the old epoch are lost with the failed node; replay recovers
        whatever mattered.  The reconnect loop keeps running and will
        adopt the node's next incarnation.
        """
        self._pending.clear()
        self._unacked.clear()
        self._known_incarnation = None
        self._next_seq = 0
        self._ack_frontier = 0
        self.epoch_resets += 1
        self._wake.set()

    def redirect(self, host_peer_id: str) -> None:
        """The destination node is now hosted by ``host_peer_id``.

        Called when inbound traffic *from* this node arrives via a peer
        that does not match the channel's adopted incarnation — direct
        evidence that the node was re-hosted (promoted).  Performing the
        epoch reset *now*, before the evidence item is processed, is
        what keeps replay sound: anything the local runtime enqueues in
        response (most importantly a replay fill) lands in the new epoch
        and survives, instead of being discarded when the reconnect loop
        discovers the new incarnation on its own.  The current
        connection (pointed at the dead incarnation) is aborted, and
        only incarnations hosted by ``host_peer_id`` are accepted until
        the node moves again.
        """
        if (self._known_incarnation is not None
                and self._known_incarnation.startswith(host_peer_id + "#")):
            return  # already pointed at the right host
        if (self._known_incarnation is None
                and self._expected_peer == host_peer_id):
            return
        self._expected_peer = host_peer_id
        self._pending.clear()
        self._unacked.clear()
        self._next_seq = 0
        self._ack_frontier = 0
        self._known_incarnation = None
        self.epoch_resets += 1
        if self._writer is not None:
            self._writer.close()
        self._wake.set()

    # -- internals ------------------------------------------------------
    async def _run(self) -> None:
        backoff = self.backoff_min
        addr_idx = 0
        while not self._closed:
            address = self.addresses[addr_idx % len(self.addresses)]
            addr_idx += 1
            try:
                conn = await self._try_connect(address)
            except codec.CodecError as exc:
                # Structured protocol rejection (FRAME_ERROR — e.g. the
                # peer speaks another wire version): retrying cannot
                # help, so park the channel instead of hammering the
                # host with doomed handshakes.
                self.proto_rejects += 1
                self.last_error = exc
                self._closed = True
                print(f"channel to {self.dst_node}: {exc}",
                      file=sys.stderr, flush=True)
                return
            except TransportError:
                # The handshake died mid-frame: a reset, not a refusal.
                self.torn_frames += 1
                conn = None
            if conn is None:
                self.connect_failures += 1
                # Deterministic jitter (0.5x..1.5x) from the per-channel
                # seeded stream: after a partition heals, every sender
                # would otherwise retry on the same exponential ladder
                # and hammer the healed host in synchronized waves.
                await asyncio.sleep(
                    min(self.backoff_max,
                        backoff * (0.5 + self._jitter.random()))
                )
                backoff = min(self.backoff_max, backoff * 1.6)
                continue
            backoff = self.backoff_min
            reader, writer, incarnation = conn
            self._on_incarnation(incarnation)
            self.connected = True
            try:
                await self._converse(reader, writer)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                pass
            finally:
                self.connected = False
                self.reconnects += 1
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _try_connect(self, address: Tuple[str, int]):
        """One connect + handshake attempt; None if unusable."""
        host, port = address
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port),
                timeout=self.connect_timeout,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(codec.encode_hello(self.peer_id, self.dst_node))
            await writer.drain()
            frame = await asyncio.wait_for(codec.read_frame(reader),
                                           timeout=self.handshake_timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            writer.close()
            return None
        if frame is not None and frame[0] == codec.FRAME_ERROR:
            # The peer rejected the handshake outright (version
            # negotiation failed); surface the structured reason.
            writer.close()
            body = frame[1]
            raise codec.CodecError(
                f"peer at {host}:{port} rejected handshake: "
                f"{body.get('error', '')} (peer proto {body.get('proto')!r},"
                f" ours {codec.WIRE_VERSION})"
            )
        if frame is None or frame[0] != codec.FRAME_WELCOME:
            # NOT_HERE (or EOF): the node is not hosted there (yet);
            # back off and let the loop try the next candidate address.
            writer.close()
            return None
        incarnation = frame[1].get("incarnation", "")
        if (self._expected_peer is not None
                and not incarnation.startswith(self._expected_peer + "#")):
            # A stale host answered (e.g. a not-yet-fenced primary after
            # its replica was promoted); keep cycling to the true host.
            writer.close()
            return None
        return reader, writer, incarnation

    def _on_incarnation(self, incarnation: str) -> None:
        if self._known_incarnation is None:
            self._known_incarnation = incarnation
        elif incarnation != self._known_incarnation:
            # The node moved to a new incarnation: epoch reset.  Items
            # buffered for the dead incarnation are conceptually already
            # lost (fail-stop); the promoted node drives replay.
            self._pending.clear()
            self._unacked.clear()
            self._next_seq = 0
            self._ack_frontier = 0
            self._known_incarnation = incarnation
            self.epoch_resets += 1

    def _send_burst(self, writer, bodies: List[Dict[str, Any]],
                    resend: bool = False) -> None:
        """Write one burst of ITEM bodies as batch frames (no drain).

        Chunks of ``batch_max_items`` become ``FRAME_BATCH`` frames; a
        lone item stays a plain ``FRAME_ITEM``.  Frames are assembled in
        the channel's scratch encoder, so a burst costs one body
        serialization per *frame* instead of four allocations per item.
        """
        encoder = self._encoder
        cap = self.batch_max_items
        for start in range(0, len(bodies), cap):
            chunk = bodies[start:start + cap]
            if len(chunk) == 1:
                frame = encoder.encode(codec.FRAME_ITEM, chunk[0])
            else:
                frame = encoder.encode_batch(chunk)
                self.batches_sent += 1
            writer.write(frame)
            self.frames_sent += 1
            self.bytes_sent += len(frame)
        if resend:
            self.items_resent += len(bodies)
        else:
            self.items_sent += len(bodies)

    async def _converse(self, reader, writer) -> None:
        """Send/resend loop for one live connection.

        Drains once per burst: every item pending at wake-up is packed
        into batch frames and flushed with a single ``drain()``, instead
        of the historical frame-write (and receiver ack) per item.
        """
        self._writer = writer
        acks = asyncio.get_running_loop().create_task(
            self._consume_acks(reader), name=f"acks:{self.dst_node}"
        )
        try:
            # Same incarnation, new connection: resend the unacked tail
            # first, in order (the receiver discards duplicates by seq).
            if self._unacked:
                self._send_burst(writer,
                                 [body for _seq, body in self._unacked],
                                 resend=True)
            await writer.drain()
            while not self._closed:
                if acks.done():
                    break  # connection died under the ack reader
                if self._pending:
                    pending = self._pending
                    bodies = []
                    while pending:
                        src, msg = pending.popleft()
                        seq = self._next_seq
                        self._next_seq += 1
                        body = codec.item_body(seq, src, self.dst_node, msg)
                        self._unacked.append((seq, body))
                        bodies.append(body)
                    self._send_burst(writer, bodies)
                    await writer.drain()
                    continue
                self._wake.clear()
                if self._pending:
                    continue
                waiter = asyncio.get_running_loop().create_task(
                    self._wake.wait()
                )
                done, _ = await asyncio.wait(
                    {waiter, acks}, return_when=asyncio.FIRST_COMPLETED
                )
                if not waiter.done():
                    waiter.cancel()
                if acks in done:
                    break
        finally:
            self._writer = None
            if not acks.done():
                acks.cancel()
                try:
                    await acks
                except asyncio.CancelledError:
                    pass

    async def _consume_acks(self, reader) -> None:
        try:
            while True:
                frame = await codec.read_frame(reader)
                if frame is None:
                    return
                frame_tag, body = frame
                if frame_tag != codec.FRAME_ACK:
                    continue
                upto = int(body.get("upto", 0))
                if upto < self._ack_frontier or upto > self._next_seq:
                    # Out of the [frontier, next_seq] window: a stale
                    # host answering after a promotion, or a corrupt
                    # peer.  Accepting a backwards value would regress
                    # the frontier; a forward overrun would acknowledge
                    # items never sent.  Reject and count.
                    self.acks_rejected += 1
                    continue
                self.acks_received += 1
                if upto > self._ack_frontier:
                    self._ack_frontier = upto
                while self._unacked and self._unacked[0][0] < upto:
                    self._unacked.popleft()
                    self.items_acked += 1
                if self._ack_watcher is not None:
                    self._ack_watcher(upto)
        except TransportError:
            # Covers CodecError: the connection died mid-frame or the
            # peer sent garbage.  Either way this is a reset, not an
            # orderly close — count it; the reconnect loop retransmits
            # the unacked tail.
            self.torn_frames += 1


#: Per-attempt connect/handshake timeout of the fence path in seconds.
FENCE_TIMEOUT_S = 1.0


async def send_fence_once(address: Tuple[str, int], peer_id: str,
                          engine_id: str, attempts: int = 10,
                          gap: float = 0.2,
                          timeout: float = FENCE_TIMEOUT_S) -> bool:
    """One-shot fence delivery to an engine's *primary* address (never
    the replica's, so a completed promotion cannot fence itself).

    Returns True when the fence was handed to the peer, and False when
    the peer answered NOT_HERE (nothing is hosted at the primary, so
    there is nothing to fence — the common post-crash case).  If the
    address stays unreachable for the whole capped retry budget, raises
    a structured :class:`~repro.errors.FenceDeliveryError` instead of
    silently giving up: a partitioned-but-alive primary is exactly the
    case operators need to see.
    """
    host, port = address
    for _ in range(max(1, attempts)):
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            await asyncio.sleep(gap)
            continue
        try:
            writer.write(codec.encode_hello(peer_id, engine_id))
            await writer.drain()
            frame = await asyncio.wait_for(codec.read_frame(reader),
                                           timeout=timeout)
            if frame is not None and frame[0] == codec.FRAME_WELCOME:
                writer.write(codec.encode_item(
                    0, peer_id, engine_id, codec.FenceRequest(engine_id)
                ))
                await writer.drain()
                return True
            return False  # NOT_HERE: nothing to fence at the primary
        except (ConnectionError, OSError, asyncio.TimeoutError,
                TransportError):
            await asyncio.sleep(gap)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
    raise FenceDeliveryError(engine_id, address, max(1, attempts))


async def send_corrupt_once(address: Tuple[str, int], peer_id: str,
                            process: str, engine_id: str,
                            component: str = "", attempts: int = 10,
                            gap: float = 0.2,
                            timeout: float = FENCE_TIMEOUT_S) -> bool:
    """One-shot chaos fault: ask ``process`` to corrupt an engine's state.

    Follows the fence path's connect/handshake shape, but addresses the
    target's always-hosted ``proc:<process>`` control node rather than
    the engine node, so the fault lands whether the engine is in its
    primary process or was promoted into its replica's.  Returns True
    when the request was handed over, False on NOT_HERE; exhausting the
    retry budget returns False too — a corruption that cannot be
    delivered (process already dead) is a no-op fault, not an error.
    """
    host, port = address
    control = f"proc:{process}"
    for _ in range(max(1, attempts)):
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            await asyncio.sleep(gap)
            continue
        try:
            writer.write(codec.encode_hello(peer_id, control))
            await writer.drain()
            frame = await asyncio.wait_for(codec.read_frame(reader),
                                           timeout=timeout)
            if frame is not None and frame[0] == codec.FRAME_WELCOME:
                writer.write(codec.encode_item(
                    0, peer_id, control,
                    codec.CorruptRequest(engine_id, component),
                ))
                await writer.drain()
                return True
            return False
        except (ConnectionError, OSError, asyncio.TimeoutError,
                TransportError):
            await asyncio.sleep(gap)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
    return False
