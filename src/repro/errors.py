"""Exception hierarchy for the TART reproduction.

Every error raised by the library derives from :class:`TartError`, so
applications embedding the runtime can catch one base class.  Errors are
split along the package layers: simulation kernel, virtual-time substrate,
component model, scheduling, and recovery.
"""

from __future__ import annotations


class TartError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(TartError):
    """The discrete-event simulation kernel was used incorrectly."""


class VirtualTimeError(TartError):
    """A virtual-time invariant was violated.

    Raised, for example, when a component attempts to emit a message whose
    virtual time is not strictly in the future of its current virtual
    time, which would break causality (paper section II.D, requirement
    that causally later events have later virtual times).
    """


class SilenceViolationError(VirtualTimeError):
    """A sender emitted a data tick inside a range it promised was silent.

    Silence promises are monotonic facts; a violation indicates a broken
    estimator or a mis-implemented silence policy, and would destroy
    determinism, so we fail loudly.
    """


class ComponentError(TartError):
    """A component was defined or used incorrectly."""


class WiringError(ComponentError):
    """The application graph is malformed (unknown port, double wiring,
    dangling service call, component placed on no engine, ...)."""


class SpecValidationError(WiringError, ValueError):
    """A cluster spec document failed validation.

    Raised by :meth:`repro.net.topology.ClusterSpec.from_json` (and the
    spec's ``validate`` hook) for unknown top-level keys and
    out-of-range values, so a typo like ``"folowers_per_group"`` fails
    loudly instead of silently producing a default single-group spec.
    Structured: ``key`` names the offending field, ``value`` carries the
    rejected value, and ``reason`` says what was expected.  Derives from
    :class:`ValueError` so generic config loaders can catch it without
    importing this hierarchy.
    """

    def __init__(self, key: str, value, reason: str):
        super().__init__(f"cluster spec field {key!r}: {reason} "
                         f"(got {value!r})")
        self.key = key
        self.value = value
        self.reason = reason


class StateError(ComponentError):
    """Checkpointable state was used outside the declared cells, or a
    checkpoint could not be captured/restored."""


class SchedulingError(TartError):
    """The deterministic scheduler detected an impossible situation."""


class DivergenceError(StateError):
    """The live engine state diverged from the checkpoint-chain rebuild.

    Raised by the divergence auditor (``repro.runtime.audit``) in
    ``raise`` mode when a component's live canonical bytes no longer
    match the state rebuilt from the last full checkpoint chain plus the
    current delta — i.e. an untracked mutation (bit flip, out-of-band
    write) corrupted checkpointable state.  ``engine_id`` names the
    engine, ``cp_seq`` the checkpoint chain position audited against,
    and ``components`` the component names whose bytes differed.
    """

    def __init__(self, engine_id: str, cp_seq: int, components):
        names = ", ".join(sorted(components))
        super().__init__(
            f"{engine_id}: live state diverged from checkpoint chain "
            f"at cp_seq {cp_seq} in component(s): {names}"
        )
        self.engine_id = engine_id
        self.cp_seq = cp_seq
        self.components = tuple(sorted(components))


class DeterminismFaultError(TartError):
    """A determinism fault could not be logged synchronously.

    Determinism faults (estimator re-calibrations) must reach stable
    storage before taking effect; if the log is unavailable the fault must
    not be applied (paper section II.G.4).
    """


class RecoveryError(TartError):
    """Failover or replay could not complete."""


class FailoverInProgressError(RecoveryError):
    """A failure was reported for an engine whose failover is already
    underway (e.g. the heartbeat detector and the failure injector both
    declare the same engine dead).

    The error is structured so a caller can recognise the benign
    double-report case and ignore it: ``engine_id`` identifies the
    engine, ``failed_at`` is the simulated time at which the failover in
    progress was declared.
    """

    def __init__(self, engine_id: str, failed_at: int):
        super().__init__(
            f"{engine_id}: failover already in progress "
            f"(declared failed at t={failed_at})"
        )
        self.engine_id = engine_id
        self.failed_at = failed_at


class ReplayGapError(RecoveryError):
    """A gap in the tick sequence could not be filled by any sender.

    This means a message range was lost and no retained buffer, log, or
    deterministic re-execution can regenerate it — unrecoverable under the
    paper's single-failure assumption.
    """


class TransportError(TartError):
    """The inter-engine transport was misconfigured or misused."""


class FenceDeliveryError(TransportError):
    """A fence request could not be handed to the peer within the retry
    budget.

    Fencing is best-effort by design (a dead engine cannot be fenced and
    does not need to be), but the *attempt* must terminate: after
    ``attempts`` connect/handshake tries against ``address`` the fence
    path gives up with this structured error instead of silently
    returning, so callers can record the failure and chaos tooling can
    assert the retry budget was honoured.
    """

    def __init__(self, engine_id: str, address, attempts: int):
        super().__init__(
            f"fence for {engine_id}: no delivery to {address!r} "
            f"after {attempts} attempt(s)"
        )
        self.engine_id = engine_id
        self.address = address
        self.attempts = attempts


class ChaosError(TartError):
    """A chaos schedule was malformed or could not be executed."""


class UnrecoverableClusterError(ChaosError):
    """A fault schedule destroyed state the recovery protocol needs.

    Raised (instead of hanging or producing a partial stream) when a
    schedule is genuinely unsurvivable — e.g. an engine *and* its only
    replica were both killed, so the checkpoint chain and the successor
    process are gone.  ``lost_state`` names exactly what was lost;
    ``schedule_seed`` identifies the schedule for reproduction.
    """

    def __init__(self, lost_state: str, schedule_seed=None,
                 delivered=None, expected=None):
        detail = f"unrecoverable: {lost_state}"
        if schedule_seed is not None:
            detail += f" (schedule seed {schedule_seed})"
        if delivered is not None and expected is not None:
            detail += f"; delivered {delivered}/{expected} outputs"
        super().__init__(detail)
        self.lost_state = lost_state
        self.schedule_seed = schedule_seed
        self.delivered = delivered
        self.expected = expected
