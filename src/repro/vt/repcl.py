"""Replay clocks (RepCl): compact causal clocks for recorded runs.

A :class:`RepCl` is an HLC-style hybrid clock over the component set
("Replay Clocks", "Tracing Distributed Algorithms Using Replay Clocks",
PAPERS.md): a coarse **epoch** derived from virtual time, a bounded map
of per-component **offsets** (how far behind the epoch each component's
last-known event is), and a tie-breaking **counter** for events that
share an ⟨epoch, offsets⟩ core.  Components whose knowledge has fallen
more than ``max_offset`` epochs behind are dropped from the offset map,
which bounds the encoded size regardless of run length.

Clocks are *pure observation*: they are computed by an attached
:class:`ReplayClockTracer` from the message stream and never ride on the
wire or influence scheduling, so traced and untraced runs stay
byte-identical (asserted by test, like ``ExecutionTracer``).

``merge`` is the lattice join and is commutative and associative
(hypothesis-checked in ``tests/props``): epochs max, per-component
known-epochs pointwise max, sub-threshold entries dropped, and the
counter carried only from inputs whose core equals the joined core.
Dropping is join-safe because an entry dropped at any intermediate step
(``known < max(epochs) - max_offset``) would also be dropped by the
final join, whose epoch is at least as large.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.vt.time import TICKS_PER_MS

#: Virtual ticks per epoch: one epoch per simulated millisecond.
DEFAULT_EPOCH_TICKS = TICKS_PER_MS

#: Offset window ε: components more than this many epochs behind the
#: clock's epoch are dropped from the offset map (bounded encoding).
DEFAULT_MAX_OFFSET = 1 << 16


@dataclass(frozen=True)
class RepCl:
    """One replay-clock value ⟨epoch, offsets, counter⟩.

    ``offsets`` is a canonically sorted tuple of ``(component_index,
    lag)`` pairs with ``0 <= lag < max_offset``; ``epoch - lag`` is the
    latest epoch the clock knows that component to have acted in.
    """

    epoch: int = 0
    offsets: Tuple[Tuple[int, int], ...] = ()
    counter: int = 0

    # -- knowledge -----------------------------------------------------
    def known(self) -> Dict[int, int]:
        """component index -> latest known epoch."""
        return {idx: self.epoch - lag for idx, lag in self.offsets}

    def known_epoch(self, index: int) -> Optional[int]:
        for idx, lag in self.offsets:
            if idx == index:
                return self.epoch - lag
        return None

    def core(self) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
        """The ⟨epoch, offsets⟩ pair the counter disambiguates within."""
        return (self.epoch, self.offsets)

    # -- ordering ------------------------------------------------------
    def dominates(self, other: "RepCl",
                  max_offset: int = DEFAULT_MAX_OFFSET) -> bool:
        """True when this clock's knowledge covers ``other``'s.

        A component missing from the offset map is only known to be at
        most ``epoch - max_offset``, so missing entries dominate only
        what has fallen below that floor.
        """
        if self.epoch < other.epoch:
            return False
        mine = self.known()
        floor = self.epoch - max_offset
        for idx, known in other.known().items():
            if mine.get(idx, floor) < known:
                return False
        return True

    # -- encoding ------------------------------------------------------
    def encode(self) -> Dict:
        """Canonical-serializer-friendly dict (bounded size)."""
        return {
            "e": self.epoch,
            "o": [[idx, lag] for idx, lag in self.offsets],
            "c": self.counter,
        }

    @classmethod
    def decode(cls, doc: Dict) -> "RepCl":
        offsets = tuple(sorted((int(i), int(l)) for i, l in doc["o"]))
        return cls(epoch=int(doc["e"]), offsets=offsets,
                   counter=int(doc["c"]))

    def to_bytes(self) -> bytes:
        from repro.runtime import checkpoint as cpser

        return cpser.dumps(self.encode())

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RepCl":
        from repro.runtime import checkpoint as cpser

        return cls.decode(cpser.loads(blob))


def _normalize(epoch: int, known: Dict[int, int],
               max_offset: int) -> Tuple[Tuple[int, int], ...]:
    """Canonical bounded offset tuple for a known-epoch map."""
    return tuple(sorted(
        (idx, epoch - e) for idx, e in known.items()
        if epoch - e < max_offset
    ))


def observe(clock: RepCl, index: int, vt: int,
            epoch_ticks: int = DEFAULT_EPOCH_TICKS,
            max_offset: int = DEFAULT_MAX_OFFSET) -> RepCl:
    """Advance ``clock`` for a local event of component ``index`` at ``vt``."""
    event_epoch = vt // epoch_ticks
    epoch = max(clock.epoch, event_epoch)
    known = clock.known()
    known[index] = max(known.get(index, event_epoch), event_epoch)
    offsets = _normalize(epoch, known, max_offset)
    counter = (clock.counter + 1
               if (epoch, offsets) == clock.core() else 0)
    return RepCl(epoch=epoch, offsets=offsets, counter=counter)


def merge(a: RepCl, b: RepCl,
          max_offset: int = DEFAULT_MAX_OFFSET) -> RepCl:
    """Lattice join of two clock values (commutative, associative)."""
    epoch = max(a.epoch, b.epoch)
    known: Dict[int, int] = {}
    for clk in (a, b):
        for idx, e in clk.known().items():
            if known.get(idx, e - 1) < e:
                known[idx] = e
    offsets = _normalize(epoch, known, max_offset)
    core = (epoch, offsets)
    counter = 0
    for clk in (a, b):
        if clk.core() == core:
            counter = max(counter, clk.counter)
    return RepCl(epoch=epoch, offsets=offsets, counter=counter)


def merge_all(clocks: Iterable[RepCl],
              max_offset: int = DEFAULT_MAX_OFFSET) -> RepCl:
    out = RepCl()
    for clk in clocks:
        out = merge(out, clk, max_offset)
    return out


class ReplayClockTracer:
    """Observer that stamps a :class:`RepCl` on every dispatched message.

    Implements the :class:`~repro.core.scheduler.ComponentRuntime`
    observer protocol (``on_arrival`` / ``on_dispatch`` / ``on_emit`` /
    ``on_complete``).  Attachment is pure observation: the tracer keeps
    one clock per component, a ``(wire_id, seq) -> sender clock`` table
    filled at emission and joined at dispatch, and a single globally
    indexed event stream — nothing it does feeds back into scheduling,
    RNG draws, or the wire format.

    Messages with no recorded emission (external ingress traffic) become
    causal roots: their dispatch clock derives from the virtual time
    alone.
    """

    def __init__(self,
                 epoch_ticks: int = DEFAULT_EPOCH_TICKS,
                 max_offset: int = DEFAULT_MAX_OFFSET):
        self.epoch_ticks = epoch_ticks
        self.max_offset = max_offset
        self.clocks: Dict[str, RepCl] = {}
        self.node_index: Dict[str, int] = {}
        self.engine_of: Dict[str, str] = {}
        #: (wire_id, seq) -> the sender's clock at emission.
        self.message_clocks: Dict[Tuple[int, int], RepCl] = {}
        self.events: list = []
        self._next_index = 0
        self.arrivals = 0

    # -- attachment ----------------------------------------------------
    def attach(self, deployment) -> "ReplayClockTracer":
        """Observe every runtime of a deployment, across failovers.

        Component indices are assigned from the application's sorted
        component-name list, so any two deployments of the same spec
        agree on the index space.  ``rebuild_engine`` is wrapped so
        promoted engines re-attach their fresh runtimes.
        """
        for idx, name in enumerate(sorted(deployment.app.component_names())):
            self.node_index.setdefault(name, idx)
        for engine_id, engine in deployment.engines.items():
            for runtime in engine.runtimes.values():
                self.attach_runtime(runtime, engine_id)
        original_rebuild = deployment.rebuild_engine

        def rebuild_and_reattach(engine_id, *args, **kwargs):
            engine = original_rebuild(engine_id, *args, **kwargs)
            for runtime in engine.runtimes.values():
                self.attach_runtime(runtime, engine_id)
            return engine

        deployment.rebuild_engine = rebuild_and_reattach
        return self

    def attach_runtime(self, runtime, engine_id: str = "?") -> None:
        name = runtime.component.name
        self.node_index.setdefault(name, len(self.node_index))
        self.engine_of[name] = engine_id
        self.clocks.setdefault(name, RepCl())
        runtime.observer = self

    # -- lookups -------------------------------------------------------
    def clock_of(self, component: str) -> RepCl:
        return self.clocks.get(component, RepCl())

    def clock_for_message(self, wire_id: int, seq: int) -> Optional[RepCl]:
        return self.message_clocks.get((wire_id, seq))

    def __len__(self) -> int:
        return len(self.events)

    # -- observer protocol --------------------------------------------
    def _record(self, kind: str, component: str, wire: int, seq: int,
                vt: int, clock: RepCl) -> None:
        self.events.append({
            "index": self._next_index,
            "kind": kind,
            "component": component,
            "engine": self.engine_of.get(component, "?"),
            "wire": wire,
            "seq": seq,
            "vt": vt,
            "repcl": clock.encode(),
        })
        self._next_index += 1

    def on_arrival(self, runtime, msg) -> None:
        self.arrivals += 1

    def on_dispatch(self, runtime, msg) -> None:
        name = runtime.component.name
        clock = self.clocks.get(name, RepCl())
        sender = self.message_clocks.get((msg.wire_id, msg.seq))
        if sender is not None:
            clock = merge(clock, sender, self.max_offset)
        clock = observe(clock, self.node_index[name], msg.vt,
                        self.epoch_ticks, self.max_offset)
        self.clocks[name] = clock
        if sender is None:
            # External root: remember the derived clock so causal
            # queries can annotate the message itself.
            self.message_clocks[(msg.wire_id, msg.seq)] = clock
        self._record("dispatch", name, msg.wire_id, msg.seq, msg.vt, clock)

    def on_emit(self, runtime, spec, msg) -> None:
        name = runtime.component.name
        clock = observe(self.clocks.get(name, RepCl()),
                        self.node_index[name], msg.vt,
                        self.epoch_ticks, self.max_offset)
        self.clocks[name] = clock
        self.message_clocks[(msg.wire_id, msg.seq)] = clock
        self._record("send", name, msg.wire_id, msg.seq, msg.vt, clock)

    def on_complete(self, runtime, busy, end_vt: int) -> None:
        name = runtime.component.name
        clock = observe(self.clocks.get(name, RepCl()),
                        self.node_index[name], end_vt,
                        self.epoch_ticks, self.max_offset)
        self.clocks[name] = clock
        msg = busy.message
        self._record("complete", name, msg.wire_id, msg.seq, end_vt, clock)
