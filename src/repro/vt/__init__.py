"""Virtual-time substrate.

Virtual time (VT) is TART's deterministic logical clock: an integer tick
count (1 tick = 1 ns) attached to every message, intended to approximate
the real arrival time but required only to respect causality and
determinism (paper section II.D).

This package provides tick arithmetic and tie-breaking
(:mod:`~repro.vt.time`), per-wire tick-stream accounting with gap
detection (:mod:`~repro.vt.ticks`), silence-horizon bookkeeping
(:mod:`~repro.vt.silence`), and bounded replay clocks for recorded runs
(:mod:`~repro.vt.repcl`).
"""

from repro.vt.repcl import ReplayClockTracer, RepCl
from repro.vt.time import (
    NEVER,
    TICKS_PER_MS,
    TICKS_PER_S,
    TICKS_PER_US,
    MessageKey,
    format_vt,
)
from repro.vt.ticks import TickStreamReceiver, TickStreamSender
from repro.vt.silence import SilenceMap

__all__ = [
    "MessageKey",
    "NEVER",
    "RepCl",
    "ReplayClockTracer",
    "SilenceMap",
    "TICKS_PER_MS",
    "TICKS_PER_S",
    "TICKS_PER_US",
    "TickStreamReceiver",
    "TickStreamSender",
    "format_vt",
]
