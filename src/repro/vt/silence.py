"""Silence-horizon bookkeeping across a component's input wires.

A component with fan-in > 1 may only dequeue the earliest pending message
(vt *t*) once **every other** input wire is known silent through *t*
(pessimistic scheduling, paper II.D/II.E).  :class:`SilenceMap` holds the
per-wire horizons and answers exactly that question, and reports which
wires are blocking — the targets of curiosity probes.

The dispatch loop asks :meth:`silent_through` and :meth:`min_horizon`
once per delivered event, so both are backed by a lazy min-heap of
``(horizon, wire_id)`` entries: :meth:`advance` pushes the new horizon
and leaves the superseded entry in place, and readers discard stale
entries (ones that no longer match the wire's current horizon) as they
surface.  Each heap read is then amortized O(log n) instead of a full
O(n) scan of the horizon table — the horizons dict stays the source of
truth, the heap is just an index over it.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.vt.time import NEVER


class SilenceMap:
    """Per-wire accounted horizons for one receiving component."""

    def __init__(self, wire_ids: Iterable[int] = ()):
        self._horizons: Dict[int, int] = {int(w): -1 for w in wire_ids}
        #: Lazy min-heap over the horizons: superseded entries stay until
        #: a reader pops them ("stale" = value != current horizon).
        self._heap: List[Tuple[int, int]] = [
            (-1, w) for w in self._horizons
        ]
        heapq.heapify(self._heap)

    def add_wire(self, wire_id: int) -> None:
        """Register an input wire (horizon starts at -1: nothing known)."""
        if wire_id in self._horizons:
            raise SchedulingError(f"wire {wire_id} already registered")
        self._horizons[wire_id] = -1
        heapq.heappush(self._heap, (-1, wire_id))

    def close_wire(self, wire_id: int) -> None:
        """Mark a wire permanently silent (its sender terminated)."""
        self._require(wire_id)
        self._horizons[wire_id] = NEVER
        heapq.heappush(self._heap, (NEVER, wire_id))

    def advance(self, wire_id: int, through_vt: int) -> bool:
        """Raise a wire's horizon; returns True if it moved.

        Horizons are monotonic — regressions are ignored, because a
        silence promise is a fact about ticks that are already determined.
        """
        self._require(wire_id)
        if through_vt > self._horizons[wire_id]:
            self._horizons[wire_id] = through_vt
            heapq.heappush(self._heap, (through_vt, wire_id))
            return True
        return False

    def horizon(self, wire_id: int) -> int:
        """Current accounted horizon of one wire."""
        self._require(wire_id)
        return self._horizons[wire_id]

    def _clean_top(self) -> Optional[Tuple[int, int]]:
        """The least live (horizon, wire_id) entry, discarding stale ones.

        Monotonic horizons make staleness a pure value check: an entry is
        live iff it still equals the wire's current horizon, and at most
        one such entry per wire exists (pushes happen only on strict
        increase).
        """
        heap = self._heap
        while heap and heap[0][0] != self._horizons.get(heap[0][1]):
            heapq.heappop(heap)
        return heap[0] if heap else None

    def min_horizon(self) -> int:
        """The least horizon across all wires (NEVER if no wires)."""
        top = self._clean_top()
        return top[0] if top is not None else NEVER

    def silent_through(self, vt: int, excluding: int = None) -> bool:
        """Are all wires (optionally except one) accounted through ``vt``?

        The scheduler asks this with ``excluding`` set to the wire the
        candidate message arrived on: that wire is accounted *by* the
        message itself.  Answered from the heap top (and, when the top is
        the excluded wire itself, the runner-up), not a full scan.
        """
        top = self._clean_top()
        if top is None or top[0] >= vt:
            return True
        if top[1] != excluding:
            return False
        # The only under-``vt`` candidate so far is the excluded wire:
        # the verdict is decided by the runner-up minimum.
        popped = heapq.heappop(self._heap)
        second = self._clean_top()
        heapq.heappush(self._heap, popped)
        return second is None or second[0] >= vt

    def blocking_wires(self, vt: int, excluding: int = None) -> List[int]:
        """Wires whose horizon is below ``vt`` — curiosity-probe targets."""
        return sorted(
            wire_id
            for wire_id, horizon in self._horizons.items()
            if wire_id != excluding and horizon < vt
        )

    def wires(self) -> List[int]:
        """All registered wire ids, sorted."""
        return sorted(self._horizons)

    def _require(self, wire_id: int) -> None:
        if wire_id not in self._horizons:
            raise SchedulingError(f"unknown wire {wire_id}")

    # -- checkpoint support -------------------------------------------
    def snapshot(self) -> dict:
        """Serializable horizon map (the heap is an index, not state)."""
        return {"horizons": dict(self._horizons)}

    @classmethod
    def restore(cls, snap: dict) -> "SilenceMap":
        """Rebuild from :meth:`snapshot` output."""
        obj = cls()
        obj._horizons = {int(k): int(v) for k, v in snap["horizons"].items()}
        obj._heap = [(h, w) for w, h in obj._horizons.items()]
        heapq.heapify(obj._heap)
        return obj

    def __repr__(self) -> str:
        parts = ", ".join(f"{w}->{h}" for w, h in sorted(self._horizons.items()))
        return f"SilenceMap({parts})"
