"""Silence-horizon bookkeeping across a component's input wires.

A component with fan-in > 1 may only dequeue the earliest pending message
(vt *t*) once **every other** input wire is known silent through *t*
(pessimistic scheduling, paper II.D/II.E).  :class:`SilenceMap` holds the
per-wire horizons and answers exactly that question, and reports which
wires are blocking — the targets of curiosity probes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import SchedulingError
from repro.vt.time import NEVER


class SilenceMap:
    """Per-wire accounted horizons for one receiving component."""

    def __init__(self, wire_ids: Iterable[int] = ()):
        self._horizons: Dict[int, int] = {int(w): -1 for w in wire_ids}

    def add_wire(self, wire_id: int) -> None:
        """Register an input wire (horizon starts at -1: nothing known)."""
        if wire_id in self._horizons:
            raise SchedulingError(f"wire {wire_id} already registered")
        self._horizons[wire_id] = -1

    def close_wire(self, wire_id: int) -> None:
        """Mark a wire permanently silent (its sender terminated)."""
        self._require(wire_id)
        self._horizons[wire_id] = NEVER

    def advance(self, wire_id: int, through_vt: int) -> bool:
        """Raise a wire's horizon; returns True if it moved.

        Horizons are monotonic — regressions are ignored, because a
        silence promise is a fact about ticks that are already determined.
        """
        self._require(wire_id)
        if through_vt > self._horizons[wire_id]:
            self._horizons[wire_id] = through_vt
            return True
        return False

    def horizon(self, wire_id: int) -> int:
        """Current accounted horizon of one wire."""
        self._require(wire_id)
        return self._horizons[wire_id]

    def min_horizon(self) -> int:
        """The least horizon across all wires (NEVER if no wires)."""
        if not self._horizons:
            return NEVER
        return min(self._horizons.values())

    def silent_through(self, vt: int, excluding: int = None) -> bool:
        """Are all wires (optionally except one) accounted through ``vt``?

        The scheduler asks this with ``excluding`` set to the wire the
        candidate message arrived on: that wire is accounted *by* the
        message itself.
        """
        for wire_id, horizon in self._horizons.items():
            if wire_id == excluding:
                continue
            if horizon < vt:
                return False
        return True

    def blocking_wires(self, vt: int, excluding: int = None) -> List[int]:
        """Wires whose horizon is below ``vt`` — curiosity-probe targets."""
        return sorted(
            wire_id
            for wire_id, horizon in self._horizons.items()
            if wire_id != excluding and horizon < vt
        )

    def wires(self) -> List[int]:
        """All registered wire ids, sorted."""
        return sorted(self._horizons)

    def _require(self, wire_id: int) -> None:
        if wire_id not in self._horizons:
            raise SchedulingError(f"unknown wire {wire_id}")

    # -- checkpoint support -------------------------------------------
    def snapshot(self) -> dict:
        """Serializable horizon map."""
        return {"horizons": dict(self._horizons)}

    @classmethod
    def restore(cls, snap: dict) -> "SilenceMap":
        """Rebuild from :meth:`snapshot` output."""
        obj = cls()
        obj._horizons = {int(k): int(v) for k, v in snap["horizons"].items()}
        return obj

    def __repr__(self) -> str:
        parts = ", ".join(f"{w}->{h}" for w, h in sorted(self._horizons.items()))
        return f"SilenceMap({parts})"
