"""Per-wire tick-stream accounting.

Every wire between components carries a conceptual stream of ticks: each
tick is either a *data* tick (a message) or *silent* (paper section II.D:
"Each tick on a communications channel between components is accounted
for either as a data tick, or as a silence").

The sender side (:class:`TickStreamSender`) assigns sequence numbers,
enforces that data ticks have strictly increasing virtual times, enforces
previously promised silence, and retains sent messages in a volatile
buffer so that the range can be *replayed* after a downstream failover.
The buffer is trimmed when the receiver acknowledges a stable checkpoint
covering a prefix (inter-component messages are never logged — II.F.2).

The receiver side (:class:`TickStreamReceiver`) tracks the accounted
horizon, detects sequence gaps (lost messages → replay request), and
discards duplicates ("the duplicate messages will have duplicate
timestamps and will be discarded" — II.F.4).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.errors import SilenceViolationError, VirtualTimeError


class TickStreamSender:
    """Sender-side bookkeeping for one outgoing wire.

    Retained items are the full wire messages (anything with ``seq`` and
    ``vt`` attributes); keeping the message itself makes replay a plain
    re-transmit, identical bytes included.

    Silence promises come in two strengths:

    * **observational** (default) — a statement of fact derived from
      estimators and message history.  Emitting a data tick at or below
      an observational promise is a hard error: it means the promise was
      not actually a fact, which would break determinism.
    * **binding** (``binding=True``) — hyper-aggressive promises (the
      paper's bias algorithm) that *constrain* future outputs: the
      runtime bumps later output virtual times above ``floor_vt``.
      Binding promises are themselves deterministic (derived only from
      the emitted-message history), so the bump replays identically.
    """

    def __init__(self, wire_id: int, retain: bool = True):
        self.wire_id = wire_id
        #: Sequence number of the next data tick to send.
        self.next_seq = 0
        #: Virtual time of the last data tick sent (-1 before any).
        self.last_data_vt = -1
        #: Highest virtual time promised silent.
        self.silence_promised = -1
        #: Highest *binding* promise; future outputs must exceed this.
        self.floor_vt = -1
        #: Whether to retain messages for replay.  Disabled for wires to
        #: external consumers (which never request replay) and for
        #: deployments that do not checkpoint at all.
        self.retain = retain
        #: Retained messages for replay, seq-ascending.
        self._retained: Deque[object] = deque()
        #: Virtual-time window for load-correlated delay estimation
        #: (None = no tracking).  Part of the deterministic state:
        #: emission vts inside the window feed
        #: :class:`~repro.core.estimators.QueueCorrelatedDelayEstimator`.
        self.recent_window: Optional[int] = None
        self._recent_vts: Deque[int] = deque()

    def emit_message(self, message) -> None:
        """Record an outgoing data tick.

        ``message.seq`` must equal :attr:`next_seq` (the caller builds
        the message with that sequence number) and ``message.vt`` must
        advance past both the last data tick and every promise.
        """
        if message.seq != self.next_seq:
            raise VirtualTimeError(
                f"wire {self.wire_id}: message seq {message.seq} != "
                f"expected {self.next_seq}"
            )
        vt = message.vt
        if vt <= self.last_data_vt:
            raise VirtualTimeError(
                f"wire {self.wire_id}: data tick vt {vt} does not advance "
                f"past {self.last_data_vt}"
            )
        if vt <= self.silence_promised:
            raise SilenceViolationError(
                f"wire {self.wire_id}: data tick at vt {vt} violates "
                f"silence promised through {self.silence_promised}"
            )
        self.next_seq += 1
        self.last_data_vt = vt
        # A data tick at vt implicitly accounts everything through vt.
        self.silence_promised = vt
        if self.retain:
            self._retained.append(message)
        if self.recent_window is not None:
            self._recent_vts.append(vt)
            floor = vt - self.recent_window
            while self._recent_vts and self._recent_vts[0] <= floor:
                self._recent_vts.popleft()

    def promise_silence(self, through_vt: int, binding: bool = False) -> int:
        """Record a silence promise; returns the new horizon.

        Promises are monotonic: promising less than already promised is a
        no-op (promises are facts; facts don't retract).
        """
        if through_vt > self.silence_promised:
            self.silence_promised = through_vt
        if binding and through_vt > self.floor_vt:
            self.floor_vt = through_vt
        return self.silence_promised

    def replay_from(self, from_seq: int) -> List[object]:
        """Retained messages with seq >= ``from_seq``, for re-sending."""
        return [m for m in self._retained if m.seq >= from_seq]

    def trim_through(self, seq_inclusive: int) -> int:
        """Drop retained messages with seq <= ``seq_inclusive``.

        Called when the downstream engine acknowledges a checkpoint that
        covers those ticks.  Returns the number of messages dropped.
        """
        dropped = 0
        while self._retained and self._retained[0].seq <= seq_inclusive:
            self._retained.popleft()
            dropped += 1
        return dropped

    def retained_count(self) -> int:
        """Number of messages currently retained for potential replay."""
        return len(self._retained)

    def recent_count(self, at_vt: int) -> int:
        """Data ticks emitted within ``recent_window`` before ``at_vt``.

        A deterministic function of the emission history, usable by
        load-correlated delay estimators.
        """
        if self.recent_window is None:
            return 0
        floor = at_vt - self.recent_window
        return sum(1 for vt in self._recent_vts if floor < vt <= at_vt)

    # -- checkpoint support -------------------------------------------
    def snapshot(self, encode: Optional[Callable[[object], object]] = None) -> dict:
        """Serializable sender state (for engine checkpoints)."""
        encode = encode or (lambda m: m)
        return {
            "wire_id": self.wire_id,
            "next_seq": self.next_seq,
            "last_data_vt": self.last_data_vt,
            "silence_promised": self.silence_promised,
            "floor_vt": self.floor_vt,
            "retain": self.retain,
            "retained": [encode(m) for m in self._retained],
            "recent_window": self.recent_window,
            "recent_vts": list(self._recent_vts),
        }

    @classmethod
    def restore(cls, snap: dict,
                decode: Optional[Callable[[object], object]] = None) -> "TickStreamSender":
        """Rebuild a sender from :meth:`snapshot` output."""
        decode = decode or (lambda m: m)
        obj = cls(snap["wire_id"], retain=snap.get("retain", True))
        obj.next_seq = snap["next_seq"]
        obj.last_data_vt = snap["last_data_vt"]
        obj.silence_promised = snap["silence_promised"]
        obj.floor_vt = snap.get("floor_vt", -1)
        obj._retained = deque(decode(m) for m in snap["retained"])
        obj.recent_window = snap.get("recent_window")
        obj._recent_vts = deque(snap.get("recent_vts", []))
        return obj


class TickStreamReceiver:
    """Receiver-side bookkeeping for one incoming wire."""

    def __init__(self, wire_id: int):
        self.wire_id = wire_id
        #: Next expected data-tick sequence number.
        self.next_seq = 0
        #: All ticks through this vt are accounted (data received in-order
        #: or promised silent).
        self.horizon = -1
        self._last_vt = -1

    def accept(self, seq: int, vt: int) -> str:
        """Classify an arriving data tick.

        Returns one of:

        * ``"deliver"`` — in-order, fresh: hand to the scheduler.
        * ``"duplicate"`` — already seen (replay overshoot): discard.
        * ``"gap"`` — sequence jumped: messages were lost; the caller must
          request replay of ``[next_seq, seq)`` before this tick can be
          delivered.
        """
        if seq < self.next_seq:
            return "duplicate"
        if seq > self.next_seq:
            return "gap"
        if vt <= self._last_vt:
            # In-order tick whose vt regressed: sender bug.
            raise VirtualTimeError(
                f"wire {self.wire_id}: in-order tick seq {seq} has vt {vt} "
                f"not beyond previous data vt {self._last_vt}"
            )
        self.next_seq = seq + 1
        self.horizon = max(self.horizon, vt)
        self._last_vt = vt
        return "deliver"

    def advance_silence(self, through_vt: int) -> bool:
        """Apply a silence advance; returns True if the horizon moved."""
        if through_vt > self.horizon:
            self.horizon = through_vt
            return True
        return False

    # -- checkpoint support -------------------------------------------
    def snapshot(self) -> dict:
        """Serializable receiver state (for engine checkpoints)."""
        return {
            "wire_id": self.wire_id,
            "next_seq": self.next_seq,
            "horizon": self.horizon,
            "last_vt": self._last_vt,
        }

    @classmethod
    def restore(cls, snap: dict) -> "TickStreamReceiver":
        """Rebuild a receiver from :meth:`snapshot` output."""
        obj = cls(snap["wire_id"])
        obj.next_seq = snap["next_seq"]
        obj.horizon = snap["horizon"]
        obj._last_vt = snap["last_vt"]
        return obj
