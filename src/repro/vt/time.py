"""Virtual-time arithmetic and deterministic tie-breaking.

Virtual times are plain Python ints (ticks; 1 tick = 1 ns as in the
paper's implementation).  This module centralises the unit constants and
the total order used to schedule messages deterministically.

The paper's footnote 2: "In the rare event that messages from two
different schedulers arrive at the identical time, there must be a
deterministic tie-breaking rule, e.g. using ID numbers of the wires to
break ties."  :class:`MessageKey` implements exactly that rule —
messages are ordered by ``(vt, wire_id, seq)``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ticks per microsecond (1 tick = 1 ns).
TICKS_PER_US = 1_000
#: Ticks per millisecond.
TICKS_PER_MS = 1_000_000
#: Ticks per second.
TICKS_PER_S = 1_000_000_000

#: A virtual time later than any reachable time; used as the horizon of a
#: closed wire (a wire whose sender has terminated is silent forever).
NEVER = 2**62


def format_vt(vt: int) -> str:
    """Render a virtual time human-readably (microseconds with remainder)."""
    if vt >= NEVER:
        return "NEVER"
    whole, frac = divmod(vt, TICKS_PER_US)
    if frac:
        return f"{whole}.{frac:03d}us"
    return f"{whole}us"


@dataclass(frozen=True, order=True)
class MessageKey:
    """Total order over messages: virtual time, then wire id, then seq.

    ``wire_id`` is the globally unique id assigned at wiring time, so the
    order is identical on every replica and on every replay — the
    deterministic tie-break the paper requires.
    """

    vt: int
    wire_id: int
    seq: int

    def __str__(self) -> str:
        return f"(vt={format_vt(self.vt)}, wire={self.wire_id}, seq={self.seq})"
