"""Developer tools: report generation and result inspection."""
