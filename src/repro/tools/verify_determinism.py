"""Determinism verification for user applications.

Components must obey the paper's restrictions (no shared state, no
non-deterministic operations, estimator-driven features only).  Python
cannot enforce those statically, so this tool makes them *checkable*:
it runs your deployment several times under perturbations that must not
matter — execution jitter, silence-policy choice — and diffs the
virtual-time outcomes.  Any divergence means a component (or an
estimator) smuggled non-determinism in, and the report says where.

Usage::

    from repro.tools.verify_determinism import verify_determinism

    report = verify_determinism(my_deployment_factory, until=seconds(2))
    assert report.deterministic, report.summary()

The factory is called once per trial and must build a *fresh* deployment
(same seed internally each time — the tool checks your wiring, not your
workload generator).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    CuriositySilencePolicy,
)
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import us


@dataclasses.dataclass
class Divergence:
    """One detected mismatch between trials."""

    trial: str
    sink: str
    index: int
    reference: object
    observed: object

    def __str__(self) -> str:
        return (f"[{self.trial}] sink {self.sink!r} diverges at output "
                f"#{self.index}: expected {self.reference!r}, got "
                f"{self.observed!r}")


@dataclasses.dataclass
class DeterminismReport:
    """Outcome of :func:`verify_determinism`."""

    trials: List[str]
    outputs_compared: int
    divergences: List[Divergence]

    @property
    def deterministic(self) -> bool:
        """True when every trial produced the reference stream."""
        return not self.divergences

    def summary(self) -> str:
        """Human-readable verdict."""
        if self.deterministic:
            return (f"deterministic: {len(self.trials)} trials, "
                    f"{self.outputs_compared} outputs identical")
        lines = [f"NON-DETERMINISTIC: {len(self.divergences)} divergence(s)"]
        lines += [f"  {d}" for d in self.divergences[:10]]
        return "\n".join(lines)


def _vt_stream(deployment) -> Dict[str, List[Tuple]]:
    return {
        sink: [(seq, vt, _freeze(payload)) for seq, vt, payload, _t in
               consumer.effective_outputs]
        for sink, consumer in deployment.consumers.items()
    }


def _freeze(payload):
    if isinstance(payload, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in payload.items()))
    if isinstance(payload, (list, tuple)):
        return tuple(_freeze(v) for v in payload)
    return payload


def verify_determinism(
    deployment_factory: Callable[[], "Deployment"],
    until: int,
    extra_trials: Optional[Dict[str, Callable[["Deployment"], None]]] = None,
) -> DeterminismReport:
    """Run the deployment under must-not-matter perturbations and diff.

    Built-in trials: a repeat run (flushes accidental global state), a
    heavy-jitter run (virtual outcomes must not track real time), and an
    aggressive-silence run (propagation must not change behaviour).
    ``extra_trials`` maps trial names to functions that mutate a freshly
    built deployment before it runs.

    Perturbations are applied through the engine configs, so the factory
    needs no cooperation beyond building the same app each call.
    """

    def perturb_jitter(deployment) -> None:
        for engine in deployment.engines.values():
            engine.config = dataclasses.replace(
                engine.config,
                jitter=NormalTickJitter(1.0, 0.5, correlated=True),
            )
            for runtime in engine.runtimes.values():
                runtime.services.jitter = engine.config.jitter

    def perturb_policy(deployment) -> None:
        for engine in deployment.engines.values():
            for runtime in engine.runtimes.values():
                if runtime.deterministic:
                    runtime.policy.stop()
                    policy = AggressiveSilencePolicy(interval=us(250))
                    runtime.policy = policy
                    policy.bind(runtime)

    trials: Dict[str, Callable] = {
        "repeat": lambda _d: None,
        "heavy-jitter": perturb_jitter,
        "aggressive-silence": perturb_policy,
    }
    trials.update(extra_trials or {})

    reference_dep = deployment_factory()
    reference_dep.run(until=until)
    reference = _vt_stream(reference_dep)
    compared = sum(len(v) for v in reference.values())

    divergences: List[Divergence] = []
    for name, perturb in trials.items():
        deployment = deployment_factory()
        perturb(deployment)
        deployment.run(until=until)
        observed = _vt_stream(deployment)
        for sink, want in reference.items():
            got = observed.get(sink, [])
            # Policy/jitter changes may strand a short tail at cutoff;
            # the delivered prefix must match exactly.
            n = min(len(want), len(got))
            for i in range(n):
                if want[i] != got[i]:
                    divergences.append(Divergence(name, sink, i,
                                                  want[i], got[i]))
                    break
            if len(got) < len(want) * 0.5:
                divergences.append(Divergence(
                    name, sink, n, f"{len(want)} outputs",
                    f"only {len(got)} outputs"))
    return DeterminismReport(list(trials), compared, divergences)
