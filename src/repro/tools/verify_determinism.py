"""Determinism verification for user applications.

Components must obey the paper's restrictions (no shared state, no
non-deterministic operations, estimator-driven features only).  Python
cannot enforce those statically, so this tool makes them *checkable*:
it runs your deployment several times under perturbations that must not
matter — execution jitter, silence-policy choice — and diffs the
virtual-time outcomes.  Any divergence means a component (or an
estimator) smuggled non-determinism in, and the report says where.

Usage::

    from repro.tools.verify_determinism import verify_determinism

    report = verify_determinism(my_deployment_factory, until=seconds(2))
    assert report.deterministic, report.summary()

The factory is called once per trial and must build a *fresh* deployment
(same seed internally each time — the tool checks your wiring, not your
workload generator).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    CuriositySilencePolicy,
)
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import us


@dataclasses.dataclass
class Divergence:
    """One detected mismatch between trials."""

    trial: str
    sink: str
    index: int
    reference: object
    observed: object

    def __str__(self) -> str:
        return (f"[{self.trial}] sink {self.sink!r} diverges at output "
                f"#{self.index}: expected {self.reference!r}, got "
                f"{self.observed!r}")


@dataclasses.dataclass
class DeterminismReport:
    """Outcome of :func:`verify_determinism`."""

    trials: List[str]
    outputs_compared: int
    divergences: List[Divergence]

    @property
    def deterministic(self) -> bool:
        """True when every trial produced the reference stream."""
        return not self.divergences

    def summary(self) -> str:
        """Human-readable verdict."""
        if self.deterministic:
            return (f"deterministic: {len(self.trials)} trials, "
                    f"{self.outputs_compared} outputs identical")
        lines = [f"NON-DETERMINISTIC: {len(self.divergences)} divergence(s)"]
        lines += [f"  {d}" for d in self.divergences[:10]]
        return "\n".join(lines)


def _vt_stream(deployment) -> Dict[str, List[Tuple]]:
    return {
        sink: [(seq, vt, freeze_payload(payload)) for seq, vt, payload, _t in
               consumer.effective_outputs]
        for sink, consumer in deployment.consumers.items()
    }


def freeze_payload(payload):
    """A hashable, order-insensitive-for-dicts view of one payload.

    Used for comparing output streams across trials *and* across
    processes: payloads that cross a :mod:`repro.net` socket come back
    as plain dicts/lists whatever they started as, so comparisons must
    not depend on container identity or dict insertion order.
    """
    if isinstance(payload, dict):
        return tuple(sorted((k, freeze_payload(v))
                            for k, v in payload.items()))
    if isinstance(payload, (list, tuple)):
        return tuple(freeze_payload(v) for v in payload)
    return payload


def compare_streams(
    reference: Dict[str, List[Tuple]],
    observed: Dict[str, List[Tuple]],
    trial: str,
    require_complete: bool = False,
) -> List[Divergence]:
    """Diff two per-sink output streams of ``(seq, vt, frozen payload)``.

    The delivered prefix must match element-for-element.  With
    ``require_complete`` every reference output must also be present
    (networked acceptance runs wait for completion first, so a short
    stream there is a real loss); without it a short tail is tolerated
    down to half the reference length, since perturbation trials may
    strand undelivered outputs at the simulation cutoff.
    """
    divergences: List[Divergence] = []
    for sink, want in reference.items():
        got = observed.get(sink, [])
        n = min(len(want), len(got))
        for i in range(n):
            if want[i] != got[i]:
                divergences.append(Divergence(trial, sink, i,
                                              want[i], got[i]))
                break
        if require_complete:
            if len(got) != len(want):
                divergences.append(Divergence(
                    trial, sink, n, f"{len(want)} outputs",
                    f"{len(got)} outputs"))
        elif len(got) < len(want) * 0.5:
            divergences.append(Divergence(
                trial, sink, n, f"{len(want)} outputs",
                f"only {len(got)} outputs"))
    return divergences


def verify_trace_equivalence(
    reference: Dict[str, List[Tuple]],
    observed: Dict[str, List[Tuple]],
    trial: str = "networked",
    require_complete: bool = True,
) -> DeterminismReport:
    """Judge a captured output trace against a reference trace.

    This is the entry point for traces that did not come from an
    in-process run — e.g. consumer streams collected by
    ``repro.net.cluster`` from a real multi-process deployment.  Both
    arguments map sink name to ``(seq, vt, frozen payload)`` lists as
    produced by :func:`freeze_payload`-based capture.
    """
    compared = sum(len(v) for v in reference.values())
    divergences = compare_streams(reference, observed, trial,
                                  require_complete=require_complete)
    return DeterminismReport([trial], compared, divergences)


def verify_determinism(
    deployment_factory: Callable[[], "Deployment"],
    until: int,
    extra_trials: Optional[Dict[str, Callable[["Deployment"], None]]] = None,
) -> DeterminismReport:
    """Run the deployment under must-not-matter perturbations and diff.

    Built-in trials: a repeat run (flushes accidental global state), a
    heavy-jitter run (virtual outcomes must not track real time), and an
    aggressive-silence run (propagation must not change behaviour).
    ``extra_trials`` maps trial names to functions that mutate a freshly
    built deployment before it runs.

    Perturbations are applied through the engine configs, so the factory
    needs no cooperation beyond building the same app each call.
    """

    def perturb_jitter(deployment) -> None:
        for engine in deployment.engines.values():
            engine.config = dataclasses.replace(
                engine.config,
                jitter=NormalTickJitter(1.0, 0.5, correlated=True),
            )
            for runtime in engine.runtimes.values():
                runtime.services.jitter = engine.config.jitter

    def perturb_policy(deployment) -> None:
        for engine in deployment.engines.values():
            for runtime in engine.runtimes.values():
                if runtime.deterministic:
                    runtime.policy.stop()
                    policy = AggressiveSilencePolicy(interval=us(250))
                    runtime.policy = policy
                    policy.bind(runtime)

    trials: Dict[str, Callable] = {
        "repeat": lambda _d: None,
        "heavy-jitter": perturb_jitter,
        "aggressive-silence": perturb_policy,
    }
    trials.update(extra_trials or {})

    reference_dep = deployment_factory()
    reference_dep.run(until=until)
    reference = _vt_stream(reference_dep)
    compared = sum(len(v) for v in reference.values())

    divergences: List[Divergence] = []
    for name, perturb in trials.items():
        deployment = deployment_factory()
        perturb(deployment)
        deployment.run(until=until)
        observed = _vt_stream(deployment)
        divergences.extend(compare_streams(reference, observed, name))
    return DeterminismReport(list(trials), compared, divergences)
