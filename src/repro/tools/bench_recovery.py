"""``python -m repro.tools.bench_recovery``: measure the three costs
the cadence controller reasons about, and write ``BENCH_recovery.json``.

1. **Checkpoint capture** — wall microseconds to snapshot every
   component on an engine and encode the canonical blob (both full and
   incremental captures, measured separately).
2. **Replay rate** — virtual ticks of log replayed per wall second,
   measured over real in-simulator failovers (kill + promote + replay).
3. **Audit rebuild** — wall microseconds for one divergence audit:
   fold the mirrored chain forward with a fresh delta and byte-compare
   against live state.

These are the empirical inputs to the recovery-time objective
(``docs/recovery.md``): capture cost bounds how often checkpointing is
affordable, replay rate converts a wall-clock RTO into a tick budget,
and rebuild cost is the audit's steady-state overhead.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Dict, List

from repro.apps.pipeline import build_pipeline_app, reading_factory
from repro.apps.wordcount import birth_of
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import Placement
from repro.sim.kernel import TICKS_PER_MS, ms


def _build(audit: str = "off", master_seed: int = 7) -> Deployment:
    app = build_pipeline_app(window=5)
    config = EngineConfig(checkpoint_interval=ms(10))
    if audit != "off":
        config = EngineConfig(checkpoint_interval=ms(10), audit=audit)
    dep = Deployment(
        app,
        Placement({"parser": "E1", "enricher": "E1", "aggregator": "E2"}),
        engine_config=config, master_seed=master_seed, birth_of=birth_of,
    )
    dep.add_poisson_producer("readings", reading_factory(),
                             mean_interarrival=ms(1))
    return dep


def _summary(samples_us: List[float]) -> Dict:
    ordered = sorted(samples_us)
    return {
        "samples": len(ordered),
        "mean_us": round(statistics.fmean(ordered), 2),
        "p50_us": round(ordered[len(ordered) // 2], 2),
        "p95_us": round(ordered[int(len(ordered) * 0.95) - 1], 2),
    }


def bench_capture(rounds: int = 200) -> Dict:
    """Time full and incremental captures on a busy engine."""
    dep = _build()
    dep.run(until=ms(50))
    engine = dep.engine("E1")
    full: List[float] = []
    incremental: List[float] = []
    blob_bytes = 0.0
    for i in range(rounds):
        dep.run(until=dep.sim.now + ms(2))  # accumulate dirty state
        force_full = i % 2 == 0
        started = time.perf_counter()
        engine.capture_checkpoint(force_full=force_full,
                                  avoid_full=not force_full)
        elapsed_us = (time.perf_counter() - started) * 1e6
        (full if force_full else incremental).append(elapsed_us)
        blob_bytes = dep.metrics.gauge_value("cadence.checkpoint_bytes",
                                             blob_bytes)
    return {
        "full": _summary(full),
        "incremental": _summary(incremental),
        "components_per_engine": len(engine.runtimes),
    }


def bench_audit_rebuild(rounds: int = 200) -> Dict:
    """Time the chain-fold + byte-compare at real checkpoint boundaries."""
    dep = _build(audit="heal")
    dep.run(until=ms(100))  # several captures: the mirrored chain exists
    auditor = dep.engine("E1").auditor
    samples: List[float] = []
    for _ in range(rounds):
        dep.run(until=dep.sim.now + ms(2))
        started = time.perf_counter()
        outcome = auditor.audit_once()
        samples.append((time.perf_counter() - started) * 1e6)
        assert outcome == "clean", outcome
    return _summary(samples)


def bench_replay(failovers: int = 5) -> Dict:
    """Measure replay throughput over real kill + promote + replay cycles.

    Wall time is measured around the simulation window that performs
    the failover; the replayed span is the virtual downtime the
    recovery manager records.  The resulting ticks-per-second is the
    end-to-end rate a wall-clock RTO must be converted through.
    """
    dep = _build()
    dep.run(until=ms(100))
    spans: List[int] = []
    walls: List[float] = []
    for i in range(failovers):
        victim = "E1" if i % 2 == 0 else "E2"
        failed_at = dep.sim.now
        dep.recovery.engine_failed(victim, detection_delay=ms(2))
        started = time.perf_counter()
        dep.run(until=dep.sim.now + ms(30))
        walls.append(time.perf_counter() - started)
        history = dep.recovery.history[victim][-1]
        spans.append(dep.sim.now - failed_at)
        assert history is not None
    total_ticks = sum(spans)
    total_s = sum(walls)
    return {
        "failovers": len(spans),
        "replayed_ticks": total_ticks,
        "wall_s": round(total_s, 4),
        "ticks_per_sec": round(total_ticks / total_s, 1),
        "sim_ms_per_wall_s": round(total_ticks / TICKS_PER_MS / total_s, 2),
    }


def bench_group_failover(
    shapes=((1, 1), (3, 1), (3, 2)),
    messages: int = 240,
    speed: float = 0.1,
) -> Dict:
    """Live SIGKILL-to-first-recovered-byte latency per cluster shape.

    For each ``engines x followers`` shape, runs the real multi-process
    cluster with ``--kill-active`` semantics and measures
    ``group_failover_ms``: wall milliseconds from the SIGKILL to the
    first byte a sink depending on the victim's replication group
    delivers afterwards (detection + promotion + replay + reconnect).
    The non-sharded ``1x1`` shape is the legacy engine+replica pair;
    the ``3xK`` shapes measure group-local failover while the other
    groups keep streaming.
    """
    import argparse
    import asyncio

    from repro.net.cluster import (
        build_spec,
        default_victim,
        run_networked,
        with_addresses,
    )
    from repro.net.topology import reference_run, sink_upstream_engines

    shapes_out: Dict[str, Dict] = {}
    for engines, followers in shapes:
        args = argparse.Namespace(
            engines=engines, replicas=1, followers=followers,
            messages=messages, mean_ms=1.0, window=10, seed=7,
            speed=speed, checkpoint_ms=25.0, heartbeat_ms=10.0,
            heartbeat_miss=3, recovery_target=None,
            audit="off", audit_every=1,
        )
        spec = build_spec(args)
        reference = reference_run(spec)
        ref_counts = {sink: len(s) for sink, s in reference.items()}
        victim = default_victim(spec)
        result = asyncio.run(run_networked(
            with_addresses(spec), ref_counts, kill_engine=victim,
            kill_fraction=0.4, deadline_s=120.0,
        ))
        label = f"{engines}x{followers}"
        if result.get("error") or not result.get("complete"):
            shapes_out[label] = {"error": result.get("error")
                                 or "incomplete"}
            continue
        kill_tick = (result.get("killed") or {}).get("at_ticks")
        arrivals = result.get("arrival_ticks") or {}
        upstream = sink_upstream_engines(spec)
        victim_sinks = [s for s, deps in upstream.items()
                        if victim in deps]
        first = min((t for sink in victim_sinks
                     for t in arrivals.get(sink, []) if t >= kill_tick),
                    default=None)
        failover_ms = (None if first is None
                       else round((first - kill_tick) / (1e6 * speed), 2))
        shapes_out[label] = {
            "engines": engines,
            "followers": followers,
            "victim": victim,
            "group_failover_ms": failover_ms,
            "stutter": result.get("stutter"),
            "epoch_resets": result.get("epoch_resets"),
            "elapsed_s": result.get("elapsed_s"),
        }
    return shapes_out


def bench_bundle_replay(rounds: int = 3) -> Dict:
    """Record a ``.replay`` flight-recorder bundle and time a cold
    load + seek-to-horizon (``docs/timetravel.md``).

    ``record_ms`` is the cost of executing the simulated twin under a
    replay-clock tracer and persisting the bundle; ``replay_ms`` is the
    cost the debugger pays per cold seek (rebuild + re-execute +
    byte-verify against the recorded snapshot).
    """
    import tempfile

    from repro.net.topology import ClusterSpec
    from repro.runtime.flightrec import ReplayBundle, record_run
    from repro.tools.timetravel import TimeTravelSession

    spec = ClusterSpec(
        engines=["e0", "e1"], replicas=1, master_seed=7,
        workload={"readings": {"n_messages": 120,
                               "mean_interarrival_ms": 1.0}},
    )
    record_samples: List[float] = []
    replay_samples: List[float] = []
    events = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(rounds):
            started = time.perf_counter()
            path = record_run(spec, Path(tmp) / f"bench{i}",
                              source="bench")
            record_samples.append((time.perf_counter() - started) * 1e3)
            started = time.perf_counter()
            bundle = ReplayBundle.load(path)
            session = TimeTravelSession(bundle)
            assert session.verify_final()
            replay_samples.append((time.perf_counter() - started) * 1e3)
            events = len(bundle.events)
    return {
        "rounds": rounds,
        "events": events,
        "record_ms": round(statistics.fmean(record_samples), 2),
        "replay_ms": round(statistics.fmean(replay_samples), 2),
    }


def main() -> int:
    result = {
        "bench": "recovery",
        "checkpoint_capture": bench_capture(),
        "audit_rebuild_us": bench_audit_rebuild(),
        "replay": bench_replay(),
        "bundle_replay": bench_bundle_replay(),
        "group_failover": bench_group_failover(),
    }
    out = Path("BENCH_recovery.json")
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
