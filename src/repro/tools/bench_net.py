"""``python -m repro.tools.bench_net``: the wire + scheduler perf
trajectory, written to ``BENCH_net.json`` and ``BENCH_sched.json``.

Two measurements, committed alongside every change to the wire path or
the dispatch loop so the repository carries its own perf history:

1. **Streaming wire path** — a message stream crosses a real localhost
   socket to a protocol-faithful receiver, twice.  The *baseline* mode
   is the pre-batching wire path, frozen in this harness because the
   live code no longer works that way: one ``FRAME_ITEM`` per message
   assembled with four allocations, the tagged-dict canonical
   serializer (whose per-key sort was the encoder hot spot), and a
   receiver that answers and flushes one ACK per item — exactly the
   historical ``channel._converse`` / ``server._item_loop`` pair.  The
   *batched* mode is the shipped :class:`~repro.net.channel
   .OutboundChannel`: scratch-buffer frame assembly, ``FRAME_BATCH``
   packing, and one coalesced ACK per frame.  Reported per mode:
   msgs/sec, bytes per frame write (≈ bytes per syscall), ack frames
   per delivered item, and p50/p99 enqueue-to-ack latency.
2. **Scheduler dispatch** — the stock pipeline deployment runs purely
   in simulation and we report dispatched messages per wall second,
   which is dominated by the dispatch/silence hot loop
   (:meth:`~repro.core.scheduler.ComponentRuntime.maybe_dispatch`).

``--quick`` shrinks both runs for CI smoke; the committed snapshots
should come from a full run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import struct
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.core.message import SilenceAdvance
from repro.net import codec
from repro.net.channel import OutboundChannel

_LEN = struct.Struct(">I")

#: Messages enqueued between cooperative yields: the pump injects sim
#: events in bursts, and the socket loop coalesces whatever accumulated.
_ENQUEUE_CHUNK = 256


# ----------------------------------------------------------------------
# The frozen pre-batching wire path (bench-local; see module docstring).
# ----------------------------------------------------------------------
def _legacy_encode(obj: Any) -> Any:
    """The historical tagged-dict canonical transform (every dict pays a
    per-key ``json.dumps`` for sort ordering — the old encoder hot spot)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, tuple):
        return {"__t__": "t", "v": [_legacy_encode(x) for x in obj]}
    if isinstance(obj, list):
        return [_legacy_encode(x) for x in obj]
    if isinstance(obj, dict):
        items = [[_legacy_encode(k), _legacy_encode(v)]
                 for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__t__": "d", "v": items}
    raise TypeError(f"unsupported bench payload {type(obj).__name__}")


def _legacy_frame(frame_tag: int, body: Any) -> bytes:
    """Historical four-allocation frame assembly (one frame per call)."""
    blob = json.dumps(_legacy_encode(body), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return (_LEN.pack(2 + len(blob))
            + bytes([codec.WIRE_VERSION]) + bytes([frame_tag]) + blob)


async def _legacy_stream(port: int, n_messages: int) -> Dict:
    """Drive the frozen per-item sender loop against ``port``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(codec.encode_hello("bench:legacy", "sink"))
    await writer.drain()
    frame = await codec.read_frame(reader)
    assert frame is not None and frame[0] == codec.FRAME_WELCOME

    enqueued_at: List[float] = []
    latencies_us: List[float] = []
    stats = {"frames_sent": 0, "bytes_sent": 0, "acks_received": 0,
             "batches_sent": 0}
    acked_through = 0

    async def consume_acks() -> None:
        nonlocal acked_through
        while acked_through < n_messages:
            frame = await codec.read_frame(reader)
            if frame is None:
                return
            if frame[0] != codec.FRAME_ACK:
                continue
            stats["acks_received"] += 1
            upto = int(frame[1].get("upto", 0))
            now = time.perf_counter()
            for seq in range(acked_through, upto):
                latencies_us.append((now - enqueued_at[seq]) * 1e6)
            acked_through = max(acked_through, upto)

    started = time.perf_counter()
    acks = asyncio.get_running_loop().create_task(consume_acks())
    for seq in range(n_messages):
        enqueued_at.append(time.perf_counter())
        msg = SilenceAdvance(0, seq)
        frame = _legacy_frame(
            codec.FRAME_ITEM,
            {"seq": seq, "src": "bench-src", "dst": "sink",
             "msg": codec.encode_message(msg)},
        )
        writer.write(frame)
        stats["frames_sent"] += 1
        stats["bytes_sent"] += len(frame)
        if seq % _ENQUEUE_CHUNK == _ENQUEUE_CHUNK - 1:
            await writer.drain()
            await asyncio.sleep(0)
    await writer.drain()
    await acks
    wall_s = time.perf_counter() - started
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return _mode_result(n_messages, wall_s, stats, latencies_us)


# ----------------------------------------------------------------------
# The shipped batched wire path.
# ----------------------------------------------------------------------
async def _batched_stream(port: int, n_messages: int) -> Dict:
    """Drive a real :class:`OutboundChannel` (batch frames, scratch
    encoder) against ``port``."""
    enqueued_at: List[float] = []
    latencies_us: List[float] = []
    acked_through = 0

    def on_ack(upto: int) -> None:
        nonlocal acked_through
        now = time.perf_counter()
        for seq in range(acked_through, upto):
            latencies_us.append((now - enqueued_at[seq]) * 1e6)
        acked_through = max(acked_through, upto)

    channel = OutboundChannel("bench:1", "sink", [("127.0.0.1", port)],
                              ack_watcher=on_ack)
    channel.start()
    started = time.perf_counter()
    for seq in range(n_messages):
        enqueued_at.append(time.perf_counter())
        channel.enqueue("bench-src", SilenceAdvance(0, seq))
        if seq % _ENQUEUE_CHUNK == _ENQUEUE_CHUNK - 1:
            await asyncio.sleep(0)
    while channel.items_acked < n_messages:
        await asyncio.sleep(0.001)
    wall_s = time.perf_counter() - started
    counters = channel.counters()
    await channel.close()
    return _mode_result(n_messages, wall_s, counters, latencies_us)


class _Receiver:
    """Protocol-faithful receiving end, switchable ack policy.

    ``ack_per_item=True`` reproduces the historical server loop: every
    item is answered with its own ACK frame and an immediate flush.
    False matches the current server: one cumulative ACK per received
    frame.  Batch bodies decode either way (the decoder reads both the
    tagged legacy encoding and the current plain one).
    """

    def __init__(self, ack_per_item: bool):
        self.ack_per_item = ack_per_item
        self.expected = 0
        self.server = None
        self.port = None

    async def start(self) -> None:
        self.server = await asyncio.start_server(self._conn, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        self.server.close()
        await self.server.wait_closed()

    async def _conn(self, reader, writer) -> None:
        try:
            frame = await codec.read_frame(reader)
            if frame is None or frame[0] != codec.FRAME_HELLO:
                return
            writer.write(codec.encode_welcome("bench#1"))
            await writer.drain()
            encoder = codec.FrameEncoder()
            while True:
                frame = await codec.read_frame(reader)
                if frame is None:
                    return
                tag, body = frame
                if tag == codec.FRAME_ITEM:
                    items = (body,)
                elif tag == codec.FRAME_BATCH:
                    items = codec.batch_items(body)
                else:
                    continue
                for item in items:
                    seq = int(item["seq"])
                    if seq >= self.expected:
                        self.expected = seq + 1
                    if self.ack_per_item:
                        writer.write(encoder.encode_ack(self.expected))
                        await writer.drain()
                if not self.ack_per_item:
                    writer.write(encoder.encode_ack(self.expected))
                    await writer.drain()
        except (ConnectionError, OSError, codec.TransportError):
            pass
        finally:
            writer.close()


def _latency_summary(samples_us: List[float]) -> Dict:
    ordered = sorted(samples_us)
    return {
        "samples": len(ordered),
        "mean_us": round(statistics.fmean(ordered), 2),
        "p50_us": round(ordered[len(ordered) // 2], 2),
        "p99_us": round(ordered[min(len(ordered) - 1,
                                    int(len(ordered) * 0.99))], 2),
    }


def _mode_result(n_messages: int, wall_s: float, counters: Dict,
                 latencies_us: List[float]) -> Dict:
    return {
        "messages": n_messages,
        "wall_s": round(wall_s, 4),
        "msgs_per_sec": round(n_messages / wall_s, 1),
        "frames_sent": counters["frames_sent"],
        "batches_sent": counters["batches_sent"],
        "bytes_sent": counters["bytes_sent"],
        "bytes_per_frame": round(
            counters["bytes_sent"] / max(1, counters["frames_sent"]), 1),
        "acks_received": counters["acks_received"],
        "ack_frames_per_item": round(
            counters["acks_received"] / max(1, n_messages), 4),
        "enqueue_to_ack": _latency_summary(latencies_us),
    }


async def _run_mode(n_messages: int, batched: bool) -> Dict:
    receiver = _Receiver(ack_per_item=not batched)
    await receiver.start()
    try:
        if batched:
            return await _batched_stream(receiver.port, n_messages)
        return await _legacy_stream(receiver.port, n_messages)
    finally:
        await receiver.stop()


def bench_wire(n_messages: int) -> Dict:
    """Frozen pre-batching path vs the shipped batched path."""
    baseline = asyncio.run(_run_mode(n_messages, batched=False))
    batched = asyncio.run(_run_mode(n_messages, batched=True))
    return {
        "baseline": baseline,
        "batched": batched,
        "speedup_msgs_per_sec": round(
            batched["msgs_per_sec"] / baseline["msgs_per_sec"], 2),
        "ack_frames_per_item_drop": round(
            baseline["ack_frames_per_item"]
            - batched["ack_frames_per_item"], 4),
    }


def bench_scheduler(span_ms: float) -> Dict:
    """Dispatched messages per wall second on the stock pipeline app."""
    from repro.apps.pipeline import build_pipeline_app, reading_factory
    from repro.runtime.app import Deployment
    from repro.runtime.placement import Placement
    from repro.sim.kernel import ms

    app = build_pipeline_app(window=5)
    dep = Deployment(
        app,
        Placement({"parser": "E1", "enricher": "E1", "aggregator": "E2"}),
        master_seed=7,
    )
    dep.add_poisson_producer("readings", reading_factory(),
                             mean_interarrival=ms(1))
    started = time.perf_counter()
    dep.run(until=ms(span_ms))
    wall_s = time.perf_counter() - started
    processed = dep.metrics.counter("messages_processed")
    return {
        "span_sim_ms": span_ms,
        "wall_s": round(wall_s, 4),
        "messages_processed": processed,
        "events_per_sec": round(processed / wall_s, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench_net",
        description="Measure wire-path and scheduler throughput; write "
                    "BENCH_net.json and BENCH_sched.json.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke (do not commit)")
    parser.add_argument("--out-dir", default=".",
                        help="directory the BENCH files are written to")
    args = parser.parse_args(argv)

    n_messages = 2_000 if args.quick else 20_000
    span_ms = 200.0 if args.quick else 2_000.0

    net = {"bench": "net", "quick": args.quick}
    net.update(bench_wire(n_messages))
    sched = {"bench": "sched", "quick": args.quick}
    sched.update(bench_scheduler(span_ms))

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, payload in (("BENCH_net.json", net),
                          ("BENCH_sched.json", sched)):
        path = out_dir / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
