"""``python -m repro.tools.loadgen``: open-loop gateway load harness.

Measures the public ingress path end to end and writes the committed
snapshot ``BENCH_gateway.json``.  Two phases, both verified against the
replayed-shadow-log oracle (see :mod:`repro.gateway.cluster`):

1. **steady** — a fleet of open-loop clients offers a fixed aggregate
   Poisson arrival rate well inside the admission envelope.  Reported:
   p50/p99/p999 admission-to-consumer latency (the gateway stamps
   ``birth = vt`` at admission; the consumer's latency metric measures
   to delivery), achieved throughput, and the determinism verdict.
2. **overload** — a synchronized burst from many more clients than the
   (deliberately tightened) admission controller will hold, with small
   per-client token buckets.  The gateway must degrade by *answering* —
   BUSY ``rate`` and BUSY ``shed`` both nonzero, zero crashes, zero
   exactly-once violations — and the accepted subset must still replay
   byte-identically.

Open loop means arrival times are fixed up front: clients keep
submitting on schedule no matter how the gateway responds, so the
overload phase genuinely overloads instead of politely slowing down.

``--quick`` shrinks both phases for CI smoke; committed snapshots
should come from a full run.  ``--connect HOST:PORT`` skips the
self-contained cluster and fires the fleet at an already-running
gateway (started via ``python -m repro.net.cluster --gateway``),
reporting client-observed accept round trips instead.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.gateway.client import (
    ClientPlan,
    build_clients,
    fleet_summary,
)
from repro.gateway.cluster import (
    build_gateway_spec,
    gateway_payload_factory,
    run_trial,
)

#: Phase parameters: (clients, messages, aggregate msgs/sec).
_STEADY = {"quick": (40, 400, 800.0), "full": (200, 4000, 2000.0)}
_OVERLOAD_CLIENTS = {"quick": 120, "full": 400}
#: Submissions per client in the overload burst.
_OVERLOAD_PER_CLIENT = 4
#: Admission cap during overload — far below the burst size, so the
#: controller *must* shed.
_OVERLOAD_MAX_INFLIGHT = 32
#: Overload per-client bucket: burst 2 of 4 submissions, so the token
#: bucket *must* rate-limit the rest.
_OVERLOAD_BUCKET = (50.0, 2.0)


def _spec_args(window: int, seed: int, max_inflight: int,
               client_rate: float, client_burst: float
               ) -> argparse.Namespace:
    """The knob namespace ``build_gateway_spec`` consumes."""
    return argparse.Namespace(
        engines=2, replicas=1, window=window, seed=seed,
        checkpoint_ms=25.0, heartbeat_ms=10.0, heartbeat_miss=3,
        max_inflight=max_inflight, max_inflight_bytes=8 * 1024 * 1024,
        client_rate=client_rate, client_burst=client_burst,
        retry_ms=25.0,
    )


def _steady_phase(quick: bool, seed: int, timeout: float) -> Dict:
    clients, messages, rate = _STEADY["quick" if quick else "full"]
    plan = ClientPlan(n_clients=clients, total_messages=messages,
                      rate_msgs_per_s=rate, seed=seed)
    spec = build_gateway_spec(
        _spec_args(window=10, seed=seed, max_inflight=1024,
                   client_rate=4 * rate, client_burst=2 * rate), plan,
    )
    started = time.monotonic()
    result = run_trial("loadgen-steady", spec, plan, None, 0.4, timeout)
    wall_s = time.monotonic() - started
    lat = result["latency"]
    gw = result["gateway"]
    span_s = max(plan.duration_s(), 1e-9)
    return {
        "clients": plan.n_clients,
        "offered": plan.total_messages,
        "offered_msgs_per_s": rate,
        "accepted": gw["accepted"],
        "achieved_msgs_per_s": round(gw["accepted"] / span_s, 1),
        "p50_us": lat["p50_us"],
        "p99_us": lat["p99_us"],
        "p999_us": lat["p999_us"],
        "samples": lat["samples"],
        "stutter": result["stutter"],
        "deterministic": result["deterministic"],
        "ok": result["ok"],
        "violations": result["exactly_once_violations"],
        "wall_s": round(wall_s, 4),
    }


def _overload_phase(quick: bool, seed: int, timeout: float) -> Dict:
    clients = _OVERLOAD_CLIENTS["quick" if quick else "full"]
    messages = clients * _OVERLOAD_PER_CLIENT
    plan = ClientPlan(n_clients=clients, total_messages=messages,
                      rate_msgs_per_s=0.0, seed=seed)  # burst
    bucket_rate, bucket_burst = _OVERLOAD_BUCKET
    spec = build_gateway_spec(
        _spec_args(window=10, seed=seed,
                   max_inflight=_OVERLOAD_MAX_INFLIGHT,
                   client_rate=bucket_rate, client_burst=bucket_burst),
        plan,
    )
    started = time.monotonic()
    result = run_trial("loadgen-overload", spec, plan, None, 0.4, timeout)
    wall_s = time.monotonic() - started
    gw = result["gateway"]
    return {
        "clients": plan.n_clients,
        "offered": plan.total_messages,
        "max_inflight_msgs": _OVERLOAD_MAX_INFLIGHT,
        "accepted": gw["accepted"],
        "shed": gw["shed"],
        "rate_limited": gw["rate_limited"],
        "stutter": result["stutter"],
        "deterministic": result["deterministic"],
        "ok": result["ok"],
        "violations": result["exactly_once_violations"],
        "wall_s": round(wall_s, 4),
    }


def _percentile(samples: List[float], q: float) -> float:
    """Linear-interpolation percentile (numpy default definition)."""
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


def _connect_mode(addr: str, clients: int, messages: int, rate: float,
                  seed: int, input_id: str) -> int:
    """Fire the fleet at an external gateway; report accept RTTs."""
    host, _, port = addr.rpartition(":")
    plan = ClientPlan(n_clients=clients, total_messages=messages,
                      rate_msgs_per_s=rate, seed=seed, input_id=input_id)

    async def _run():
        fleet = build_clients(plan, (host or "127.0.0.1", int(port)),
                              gateway_payload_factory())
        t0 = time.monotonic() + 0.25
        return await asyncio.gather(*(c.run(t0) for c in fleet))

    stats = asyncio.run(_run())
    summary = fleet_summary(stats)
    rtts = [s for stat in stats for s in stat.rtt_s]
    report = {
        "connect": f"{host or '127.0.0.1'}:{port}",
        "fleet": summary,
        "accept_rtt": {
            "samples": len(rtts),
            "p50_us": round(_percentile(rtts, 50.0) * 1e6, 1),
            "p99_us": round(_percentile(rtts, 99.0) * 1e6, 1),
            "p999_us": round(_percentile(rtts, 99.9) * 1e6, 1),
        } if rtts else {"samples": 0},
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    failed = (summary["conflicts"] or summary["unresolved"]
              or not summary["accepted"])
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.loadgen",
        description="Open-loop load harness for the ingress gateway; "
                    "writes BENCH_gateway.json.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small phases for CI smoke")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-phase wall-clock deadline in seconds")
    parser.add_argument("--out-dir", default=".",
                        help="where to write BENCH_gateway.json")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="drive an already-running gateway instead "
                             "of the self-contained cluster phases")
    parser.add_argument("--clients", type=int, default=40,
                        help="--connect mode: fleet size")
    parser.add_argument("--messages", type=int, default=400,
                        help="--connect mode: total submissions")
    parser.add_argument("--rate", type=float, default=800.0,
                        help="--connect mode: aggregate msgs/sec")
    parser.add_argument("--input", default="readings",
                        help="--connect mode: target input id")
    args = parser.parse_args(argv)

    if args.connect is not None:
        return _connect_mode(args.connect, args.clients, args.messages,
                             args.rate, args.seed, args.input)

    print("loadgen: steady phase ...", file=sys.stderr, flush=True)
    steady = _steady_phase(args.quick, args.seed, args.timeout)
    print(f"loadgen: steady accepted={steady['accepted']}"
          f"/{steady['offered']} p50={steady['p50_us']}us "
          f"p99={steady['p99_us']}us p999={steady['p999_us']}us "
          f"deterministic={steady['deterministic']}",
          file=sys.stderr, flush=True)
    print("loadgen: overload phase ...", file=sys.stderr, flush=True)
    overload = _overload_phase(args.quick, args.seed, args.timeout)
    print(f"loadgen: overload accepted={overload['accepted']}"
          f"/{overload['offered']} shed={overload['shed']} "
          f"rate_limited={overload['rate_limited']} "
          f"deterministic={overload['deterministic']}",
          file=sys.stderr, flush=True)

    payload = {
        "bench": "gateway",
        "quick": bool(args.quick),
        "steady": steady,
        "overload": overload,
        "exactly_once_violations": (steady["violations"]
                                    + overload["violations"]),
    }
    path = Path(args.out_dir) / "BENCH_gateway.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))

    ok = (steady["ok"] and overload["ok"] and overload["shed"] > 0
          and overload["rate_limited"] > 0
          and payload["exactly_once_violations"] == 0)
    print("loadgen: " + ("OK" if ok else "FAILED"),
          file=sys.stderr, flush=True)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
