"""``python -m repro.tools.timetravel``: step, inspect, and query a
recorded ``.replay`` bundle.

Determinism makes any recorded run a *steppable artifact*: re-executing
the bundle's spec against its recorded inputs (seeded workload or
external message logs, plus the chaos schedule when present) reproduces
every intermediate state byte-for-byte.  On top of that this tool
offers:

* ``info``   — bundle manifest and recording stats.
* ``seek``   — re-execute to a target VT and show per-component digests
  (seeking to the recorded horizon verifies byte identity against the
  bundle's audit snapshot).
* ``dump``   — component state cells at a VT.
* ``diff``   — state delta between two VTs.
* ``why``    — the transitive causal closure of messages that could
  have influenced a component's state at a VT, walked over the recorded
  RepCl-annotated event stream.

Seeks are forward-only on a live simulator; backward seeks rebuild and
re-execute from VT 0.  Visited states are cached by VT and replayed
seeks are *skipped* (the edda activity-cache idiom: completed work is
answered from the cache, only new work executes) — ``stats`` reports
the skip/execute split.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.runtime import checkpoint as cpser
from repro.runtime.flightrec import (
    BundleError,
    ReplayBundle,
    capture_state,
    prepare_run,
)
from repro.vt.repcl import RepCl, merge_all
from repro.vt.time import format_vt


class TimeTravelSession:
    """Re-execution session over one bundle, with a seek cache."""

    def __init__(self, bundle: ReplayBundle):
        self.bundle = bundle
        self._dep = None
        self._cache: Dict[int, Dict] = {}
        self.stats = {"executed": 0, "skipped": 0, "rebuilds": 0}

    def _rebuild(self) -> None:
        self._dep = prepare_run(self.bundle.spec,
                                schedule=self.bundle.schedule,
                                external=self.bundle.external)
        self.stats["rebuilds"] += 1

    def seek(self, vt: int) -> Dict:
        """State document at ``vt`` (see ``flightrec.capture_state``)."""
        if vt < 0:
            raise BundleError(f"cannot seek to negative vt {vt}")
        cached = self._cache.get(vt)
        if cached is not None:
            self.stats["skipped"] += 1
            return cached
        if self._dep is None or self._dep.sim.now > vt:
            self._rebuild()
        self._dep.run(until=vt)
        self.stats["executed"] += 1
        doc = capture_state(self._dep)
        self._cache[vt] = doc
        return doc

    def state_bytes_at(self, vt: int) -> bytes:
        return cpser.dumps(self.seek(vt))

    def verify_final(self) -> bool:
        """Byte-identity of the re-executed horizon state vs the bundle."""
        return (self.state_bytes_at(self.bundle.ran_until)
                == self.bundle.state_bytes)


# ----------------------------------------------------------------------
# Causal queries
# ----------------------------------------------------------------------

def causal_closure(events: List[Dict], component: str,
                   vt: int) -> List[Dict]:
    """Messages that could have influenced ``component``'s state at ``vt``.

    Exact transitive closure over the recorded event stream: every
    message the component dispatched at or before ``vt``, plus —
    recursively, through each message's recorded ``send`` event — every
    message its sender had dispatched before emitting it.  Messages with
    no recorded send are external roots.  Re-executed dispatches after a
    failover reference the same ``(wire, seq)`` identity and are
    deduplicated.  Each entry carries the receiver's RepCl at dispatch,
    so the closure speaks the same vocabulary as ``explain_hold``.
    """
    dispatches: Dict[str, List[Dict]] = {}
    sends: Dict[Tuple[int, int], Dict] = {}
    for event in events:
        if event["kind"] == "dispatch":
            dispatches.setdefault(event["component"], []).append(event)
        elif event["kind"] == "send":
            sends.setdefault((event["wire"], event["seq"]), event)

    closure: Dict[Tuple[int, int], Dict] = {}
    expanded: Dict[str, int] = {}
    work = deque()

    def add(event: Dict) -> None:
        key = (event["wire"], event["seq"])
        send = sends.get(key)
        if key not in closure:
            closure[key] = {
                "wire": event["wire"],
                "seq": event["seq"],
                "vt": event["vt"],
                "to": event["component"],
                "from": send["component"] if send else "external",
                "repcl": event["repcl"],
            }
        if send is not None:
            work.append((send["component"], send["index"]))

    for event in dispatches.get(component, []):
        if event["vt"] <= vt:
            add(event)
    while work:
        sender, bound = work.popleft()
        if expanded.get(sender, -1) >= bound:
            continue
        expanded[sender] = bound
        for event in dispatches.get(sender, []):
            if event["index"] >= bound:
                break
            add(event)
    return sorted(closure.values(),
                  key=lambda m: (m["vt"], m["wire"], m["seq"]))


def target_clock(events: List[Dict], component: str, vt: int) -> RepCl:
    """The component's merged RepCl over everything it did through ``vt``."""
    return merge_all(
        RepCl.decode(e["repcl"]) for e in events
        if e["component"] == component and e["kind"] == "dispatch"
        and e["vt"] <= vt
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _jsonable(obj):
    """JSON-safe view of a canonical-serializer value (tags tuples/bytes)."""
    return json.loads(cpser.dumps(obj).decode("utf-8"))


def _emit(doc: Dict, as_json: bool, lines: List[str]) -> None:
    if as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for line in lines:
            print(line)


def cmd_info(bundle: ReplayBundle, args) -> int:
    doc = dict(bundle.manifest)
    doc["path"] = str(bundle.path)
    lines = [f"bundle {bundle.path}"]
    for key in ("source", "seed", "scenario", "replay_mode", "ran_until",
                "event_count", "external_count", "engines", "components",
                "sinks"):
        lines.append(f"  {key}: {doc.get(key)}")
    lines.append(f"  ran_until: {format_vt(bundle.ran_until)}")
    _emit(doc, args.json, lines)
    return 0


def cmd_seek(bundle: ReplayBundle, args) -> int:
    session = TimeTravelSession(bundle)
    vt = bundle.ran_until if args.vt is None else args.vt
    doc = session.seek(vt)
    out = {
        "vt": vt,
        "components": {
            name: {"component_vt": entry["component_vt"],
                   "mid_call": entry["mid_call"]}
            for name, entry in doc["components"].items()
        },
        "digests": doc["digests"],
        "stats": session.stats,
    }
    lines = [f"seek {format_vt(vt)} "
             f"(executed={session.stats['executed']}, "
             f"skipped={session.stats['skipped']})"]
    for name in sorted(doc["components"]):
        entry = doc["components"][name]
        digest = doc["digests"].get(name, "<mid-call>")
        lines.append(f"  {name}: vt={entry['component_vt']} "
                     f"digest={digest[:16]}")
    identical: Optional[bool] = None
    if args.verify or vt == bundle.ran_until:
        identical = (cpser.dumps(doc) == bundle.state_bytes
                     if vt == bundle.ran_until
                     else None)
        if vt != bundle.ran_until:
            lines.append("  (verify skipped: target is not the recorded "
                         "horizon)")
        else:
            out["byte_identical"] = identical
            lines.append(f"  byte-identical to recorded snapshot: "
                         f"{identical}")
    _emit(out, args.json, lines)
    return 0 if identical in (None, True) else 1


def cmd_dump(bundle: ReplayBundle, args) -> int:
    session = TimeTravelSession(bundle)
    doc = session.seek(args.vt)
    names = [args.component] if args.component else sorted(doc["components"])
    out: Dict = {"vt": args.vt, "components": {}}
    lines = [f"state at {format_vt(args.vt)}"]
    for name in names:
        entry = doc["components"].get(name)
        if entry is None:
            raise BundleError(f"unknown component {name!r} "
                              f"(known: {sorted(doc['components'])})")
        out["components"][name] = _jsonable(entry)
        lines.append(f"  {name} (vt={entry['component_vt']}, "
                     f"mid_call={entry['mid_call']}):")
        for cell, value in sorted(entry.get("cells", {}).items()):
            lines.append(f"    {cell} = {value!r}")
    _emit(out, args.json, lines)
    return 0


def diff_states(before: Dict, after: Dict) -> Dict[str, Dict]:
    changed: Dict[str, Dict] = {}
    names = set(before["components"]) | set(after["components"])
    for name in sorted(names):
        b = before["components"].get(name, {})
        a = after["components"].get(name, {})
        cells_b = b.get("cells", {}) or {}
        cells_a = a.get("cells", {}) or {}
        delta = {}
        for cell in sorted(set(cells_b) | set(cells_a)):
            if cells_b.get(cell) != cells_a.get(cell):
                delta[cell] = {"before": cells_b.get(cell),
                               "after": cells_a.get(cell)}
        if delta or b.get("component_vt") != a.get("component_vt"):
            changed[name] = {
                "component_vt": [b.get("component_vt"),
                                 a.get("component_vt")],
                "cells": delta,
            }
    return changed


def cmd_diff(bundle: ReplayBundle, args) -> int:
    session = TimeTravelSession(bundle)
    lo, hi = sorted((args.vt, args.vt2))
    before, after = session.seek(lo), session.seek(hi)
    changed = diff_states(before, after)
    out = {"from_vt": lo, "to_vt": hi, "changed": _jsonable(changed),
           "stats": session.stats}
    lines = [f"diff {format_vt(lo)} -> {format_vt(hi)}: "
             f"{len(changed)} component(s) changed"]
    for name, entry in changed.items():
        vts = entry["component_vt"]
        lines.append(f"  {name}: vt {vts[0]} -> {vts[1]}")
        for cell, pair in entry["cells"].items():
            lines.append(f"    {cell}: {pair['before']!r} -> "
                         f"{pair['after']!r}")
    _emit(out, args.json, lines)
    return 0


def cmd_why(bundle: ReplayBundle, args) -> int:
    vt = bundle.ran_until if args.vt is None else args.vt
    if args.component not in bundle.manifest.get("components", []):
        raise BundleError(
            f"unknown component {args.component!r} "
            f"(known: {bundle.manifest.get('components')})")
    messages = causal_closure(bundle.events, args.component, vt)
    clock = target_clock(bundle.events, args.component, vt)
    dominated = sum(
        1 for m in messages if clock.dominates(RepCl.decode(m["repcl"]))
    )
    out = {
        "component": args.component,
        "vt": vt,
        "count": len(messages),
        "external_roots": sum(1 for m in messages
                              if m["from"] == "external"),
        "dominated_by_target": dominated,
        "target_repcl": clock.encode(),
        "messages": messages,
    }
    lines = [f"{len(messages)} message(s) could have influenced "
             f"{args.component} at {format_vt(vt)} "
             f"({out['external_roots']} external root(s))"]
    for m in messages:
        lines.append(f"  wire {m['wire']} seq {m['seq']} "
                     f"vt={m['vt']} {m['from']} -> {m['to']}")
    _emit(out, args.json, lines)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.timetravel",
        description="Time-travel debugging over recorded .replay bundles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--bundle", required=True,
                       help=".replay bundle directory")
        p.add_argument("--json", action="store_true",
                       help="machine-readable JSON output")

    p = sub.add_parser("info", help="show the bundle manifest")
    common(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("seek", help="re-execute to a target VT")
    common(p)
    p.add_argument("--vt", type=int, default=None,
                   help="target virtual time (default: recorded horizon)")
    p.add_argument("--verify", action="store_true",
                   help="byte-compare against the recorded snapshot "
                        "(automatic at the recorded horizon)")
    p.set_defaults(fn=cmd_seek)

    p = sub.add_parser("dump", help="dump component state at a VT")
    common(p)
    p.add_argument("--vt", type=int, required=True)
    p.add_argument("--component", default=None)
    p.set_defaults(fn=cmd_dump)

    p = sub.add_parser("diff", help="diff state between two VTs")
    common(p)
    p.add_argument("--vt", type=int, required=True)
    p.add_argument("--vt2", type=int, required=True)
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("why", help="causal closure for a component at a VT")
    common(p)
    p.add_argument("--component", required=True)
    p.add_argument("--vt", type=int, default=None,
                   help="target virtual time (default: recorded horizon)")
    p.set_defaults(fn=cmd_why)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        bundle = ReplayBundle.load(args.bundle)
        return args.fn(bundle, args)
    except BundleError as exc:
        print(f"timetravel: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
