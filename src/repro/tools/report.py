"""Generate a full evaluation report in Markdown.

Runs every experiment (paper figures, recovery, ablations, extensions)
at the chosen scale and writes one self-contained Markdown document with
paper-vs-measured tables — the automated companion to EXPERIMENTS.md.

Usage::

    python -m repro.tools.report                 # quick scale, stdout
    python -m repro.tools.report --full -o report.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, TextIO

from repro.sim.kernel import ms, seconds


def _md_table(rows: List[Dict], columns: Optional[List[str]] = None) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "*(no rows)*"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if value is None:
            return "—"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join(["---"] * len(columns)) + "|"
    body = "\n".join(
        "| " + " | ".join(fmt(row.get(col)) for col in columns) + " |"
        for row in rows
    )
    return f"{header}\n{rule}\n{body}"


def generate_report(full: bool = False, out: TextIO = sys.stdout,
                    seed: int = 0) -> None:
    """Run every experiment and write the Markdown report to ``out``."""
    from repro.experiments import (
        run_bias_ablation,
        run_checkpoint_ablation,
        run_comm_estimator_ablation,
        run_dumb_estimator,
        run_fig2,
        run_fig3,
        run_fig4,
        run_fig5,
        run_preprobe_ablation,
        run_priority_ablation,
        run_recovery,
        run_retuning_ablation,
        run_silence_policy_ablation,
        run_throughput,
    )
    from repro.experiments.fig4_sensitivity import best_coefficient
    from repro.experiments.throughput import saturation_point

    dur = seconds(5) if full else seconds(2)
    w = out.write

    w("# TART reproduction report\n\n")
    w(f"Scale: {'full' if full else 'quick'}; master seed {seed}.\n\n")

    w("## Figure 2 — estimator calibration\n\n")
    fig2 = run_fig2(seed=seed)
    w(_md_table([
        {"quantity": "slope (µs/iteration)", "paper": 61.827,
         "measured": fig2["measured"]["slope_us_per_iteration"]},
        {"quantity": "R²", "paper": 0.9154,
         "measured": fig2["measured"]["r_squared"]},
        {"quantity": "residual skewness", "paper": "right-skewed",
         "measured": fig2["measured"]["residual_skewness"]},
        {"quantity": "residual–iteration corr.", "paper": "~0",
         "measured": fig2["measured"]["residual_iteration_corr"]},
    ]))
    w("\n\n")

    w("## Figure 3 — latency vs variability (paper: 2.8–4.1% overhead)\n\n")
    fig3 = run_fig3(duration=dur, spreads=(0, 3, 6, 9) if not full
                    else tuple(range(10)), seed=seed)
    w(_md_table(fig3, ["sd_us", "mode", "mean_latency_us", "overhead_pct",
                       "probes_per_message"]))
    w("\n\n")

    w("## §III.A — dumb estimator (paper: up to ~13% overhead)\n\n")
    dumb = run_dumb_estimator(duration=dur, spreads=(0, 4, 9) if not full
                              else tuple(range(10)), seed=seed)
    w(_md_table(dumb, ["sd_us", "smart_overhead_pct", "dumb_overhead_pct"]))
    w("\n\n")

    w("## §III.A — throughput saturation (paper: 1235 msg/s both modes)\n\n")
    thr = run_throughput(duration=dur,
                         rates=(1000, 1225, 1350) if not full else
                         (1000, 1100, 1150, 1200, 1225, 1250, 1275, 1300),
                         seed=seed)
    w(_md_table(thr, ["mode", "rate_per_sender", "mean_latency_us",
                      "stable"]))
    for mode in ("nondeterministic", "deterministic"):
        w(f"\nsaturation ({mode}): {saturation_point(thr, mode)} "
          f"msg/s/sender")
    w("\n\n")

    w("## Figure 4 — estimator-coefficient sensitivity "
      "(paper: minimum at 60–62)\n\n")
    fig4 = run_fig4(duration=dur, coefficients_us=(48, 54, 58, 60, 62, 66, 70)
                    if not full else tuple(range(48, 71, 2)), seed=seed)
    w(_md_table(fig4, ["coefficient_us", "det_latency_us",
                       "out_of_order_fraction", "probes_per_message"]))
    w(f"\nbest coefficient: **{best_coefficient(fig4)} µs/iteration**\n\n")

    w("## Figure 5 — distributed run (paper: curiosity <20%, lazy ≫)\n\n")
    fig5 = run_fig5(n_requests=3000 if full else 800, seed=seed)
    w(_md_table(fig5["summary"]))
    w("\n\n")

    w("## §II.F — recovery\n\n")
    rec = run_recovery(duration=dur, kill_at=dur // 2, seed=seed)
    w(_md_table([{"quantity": k, "value": v} for k, v in rec.items()]))
    w("\n\n")

    w("## §II.G — ablations\n\n### Checkpoint frequency\n\n")
    w(_md_table(run_checkpoint_ablation(
        intervals=(ms(25), ms(100)) if not full
        else (ms(10), ms(25), ms(50), ms(100), ms(200)),
        duration=dur, seed=seed)))
    w("\n\n### Silence policies\n\n")
    w(_md_table(run_silence_policy_ablation(duration=dur, seed=seed)))
    w("\n\n### Bias under asymmetric rates\n\n")
    w(_md_table(run_bias_ablation(duration=dur, seed=seed)))
    w("\n\n### Dynamic re-tuning\n\n")
    ret = run_retuning_ablation(duration=3 * dur, seed=seed)
    w(_md_table([{"quantity": k, "value": v} for k, v in ret.items()]))
    w("\n\n")

    w("## §IV — TART vs active replication vs transactions\n\n")
    from repro.experiments.alternatives import run_alternatives

    w(_md_table(run_alternatives(duration=dur, seed=seed)))
    w("\n\n")

    w("## Extensions\n\n### Pre-probing curiosity\n\n")
    w(_md_table(run_preprobe_ablation(
        n_requests=3000 if full else 800, seed=seed)))
    w("\n\n### Thread priorities under CPU contention\n\n")
    w(_md_table(run_priority_ablation(duration=dur, seed=seed)))
    w("\n\n### Load-correlated delay estimation\n\n")
    w(_md_table(run_comm_estimator_ablation(duration=dur, seed=seed)))
    w("\n")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Run the full TART evaluation and emit Markdown.")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale parameters (slow)")
    parser.add_argument("-o", "--output", default=None,
                        help="output file (default: stdout)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.output:
        with open(args.output, "w") as fh:
            generate_report(full=args.full, out=fh, seed=args.seed)
        print(f"wrote {args.output}")
    else:
        generate_report(full=args.full, seed=args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
