"""repro.chaos: a seeded fault plane for the live networked runtime.

The simulator's :class:`~repro.runtime.failure.FailureInjector` exercises
the paper's full failure model — fail-stop crashes plus link faults that
lose, re-order, or duplicate messages — but only against *simulated*
links.  This package points the same failure model at the real
multi-process runtime (:mod:`repro.net`):

* :mod:`repro.chaos.schedule` — seeded, scriptable fault schedules in a
  JSON format shared with the simulator, so one fault script runs both
  in-simulator (fast, deterministic ground truth) and against a live
  cluster;
* :mod:`repro.chaos.proxy` — a TCP fault proxy interposed on every
  inter-process link: added latency, bandwidth throttle, connection
  reset, blackhole/partition windows, half-open stalls, partition heal;
* :mod:`repro.chaos.runner` — a process chaos runner that delivers
  SIGKILL / SIGSTOP+SIGCONT to engines, replicas, and the schedule's
  other victims at seeded points, including double faults and
  crash-during-promotion;
* :mod:`repro.chaos.invariants` — the post-run judge: recovered consumer
  streams byte-identical to the simulated reference, exactly-once
  delivery, and one-incarnation-per-node convergence, with a structured
  :class:`~repro.errors.UnrecoverableClusterError` naming the lost state
  when a schedule is genuinely unsurvivable.

``python -m repro.chaos --seed S`` runs one seeded schedule end to end;
``python -m repro.net.cluster --chaos S`` does the same from the cluster
CLI.  See ``docs/chaos.md``.
"""

from repro.chaos.invariants import check_invariants
from repro.chaos.proxy import FaultProxy, LinkPolicy
from repro.chaos.schedule import ChaosEvent, ChaosSchedule, SCENARIOS

__all__ = [
    "ChaosEvent",
    "ChaosSchedule",
    "FaultProxy",
    "LinkPolicy",
    "SCENARIOS",
    "check_invariants",
]
