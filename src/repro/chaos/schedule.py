"""Seeded fault schedules: one JSON format for simulator and live runs.

A :class:`ChaosSchedule` is a list of timed fault events.  Times are
*simulated milliseconds* on the cluster's shared tick clock (1 ms =
10^6 ticks), which is the one timebase both worlds understand: the
simulator applies an event at tick ``ms(at_ms)``, and the live runner
applies it when the shared :class:`~repro.net.clock.RealtimeClock`
reaches the same tick (``at_ms / (1000 * speed)`` wall seconds after
GO).  A schedule is fully determined by its seed: re-running the same
seed reproduces the same scenario, victims, and timings, and
:meth:`ChaosSchedule.log_lines` renders it in a stable, diffable form.

Event kinds
===========

==============  ========================================================
``kill``        SIGKILL ``target`` process (fail-stop)
``stop``        SIGSTOP ``target`` (process freeze; heartbeats stop)
``cont``        SIGCONT ``target`` (a frozen stale engine resumes — and
                must be fenced, not believed)
``partition``   blackhole both directions of ``link`` for
                ``duration_ms``, then heal that link
``latency``     add ``delay_ms`` one-way delay on ``link`` for
                ``duration_ms``
``throttle``    cap ``link`` at ``rate_bps`` bytes/second for
                ``duration_ms``
``reset``       hard-close every live connection on ``link`` once
``half_open``   for ``duration_ms``, new connections on ``link`` are
                accepted but never answered (handshake stalls)
``heal``        clear every link fault immediately
``impair``      steady ``loss_prob``/``dup_prob`` on ``link`` (simulator
                frame faults; the live lowering is periodic resets —
                TCP's version of a lossy link)
``corrupt``     plant an untracked state mutation in ``target``'s
                engine (optionally naming the victim ``component``) —
                invisible to delta checkpoints, caught only by the
                divergence audit (``--audit``)
==============  ========================================================

``target`` is a process name (``engine-e0``, ``replica-e0``,
``coordinator``); ``link`` is an unordered pair of process names.

Simulator lowering (:meth:`ChaosSchedule.sim_events`) keeps only the
events with *content* consequences — kills, partitions, impairments —
because the reliability protocols hide pure timing faults from the
output stream by design, and content is exactly what the determinism
oracle checks.  Process-level targets become node-level targets via
:func:`repro.net.topology.plan_cluster_nodes`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ChaosError
from repro.net.topology import (
    ClusterSpec,
    component_placement,
    plan_cluster_nodes,
)
from repro.sim.kernel import ms

#: Schedule document version; bump on incompatible format changes.
SCHEDULE_VERSION = 1

_PROCESS_KINDS = ("kill", "stop", "cont", "corrupt")
_LINK_KINDS = ("partition", "latency", "throttle", "reset", "half_open",
               "impair")


@dataclass
class ChaosEvent:
    """One timed fault."""

    kind: str
    at_ms: float
    target: Optional[str] = None
    link: Optional[Tuple[str, str]] = None
    duration_ms: Optional[float] = None
    delay_ms: Optional[float] = None
    rate_bps: Optional[float] = None
    loss_prob: Optional[float] = None
    dup_prob: Optional[float] = None
    #: "corrupt" only: name of the component whose state to mutate
    #: (None = auto-pick the first corruptible cell on the engine).
    component: Optional[str] = None

    def validate(self) -> None:
        if self.kind in _PROCESS_KINDS:
            if not self.target:
                raise ChaosError(f"{self.kind} event needs a target")
        elif self.kind in _LINK_KINDS:
            if not self.link or len(self.link) != 2:
                raise ChaosError(f"{self.kind} event needs a 2-process link")
        elif self.kind != "heal":
            raise ChaosError(f"unknown event kind {self.kind!r}")
        if self.at_ms < 0:
            raise ChaosError(f"{self.kind} event at negative time")

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "at_ms": round(float(self.at_ms), 3)}
        if self.target is not None:
            out["target"] = self.target
        if self.link is not None:
            out["link"] = list(self.link)
        if self.component is not None:
            out["component"] = self.component
        for key in ("duration_ms", "delay_ms", "rate_bps",
                    "loss_prob", "dup_prob"):
            value = getattr(self, key)
            if value is not None:
                out[key] = round(float(value), 6)
        return out

    @classmethod
    def from_dict(cls, raw: Dict) -> "ChaosEvent":
        known = {"kind", "at_ms", "target", "link", "duration_ms",
                 "delay_ms", "rate_bps", "loss_prob", "dup_prob",
                 "component"}
        unknown = set(raw) - known
        if unknown:
            raise ChaosError(f"unknown event keys: {sorted(unknown)}")
        link = raw.get("link")
        event = cls(
            kind=raw["kind"], at_ms=float(raw["at_ms"]),
            target=raw.get("target"),
            link=tuple(link) if link else None,
            duration_ms=raw.get("duration_ms"),
            delay_ms=raw.get("delay_ms"), rate_bps=raw.get("rate_bps"),
            loss_prob=raw.get("loss_prob"), dup_prob=raw.get("dup_prob"),
            component=raw.get("component"),
        )
        event.validate()
        return event

    def log_line(self) -> str:
        """One stable, diffable line describing this event."""
        parts = [f"t=+{self.at_ms:09.3f}ms", self.kind]
        if self.target:
            parts.append(self.target)
        if self.link:
            parts.append("<->".join(self.link))
        if self.component:
            parts.append(f"component={self.component}")
        for key in ("duration_ms", "delay_ms", "rate_bps",
                    "loss_prob", "dup_prob"):
            value = getattr(self, key)
            if value is not None:
                parts.append(f"{key}={value:g}")
        return " ".join(parts)


@dataclass
class ChaosSchedule:
    """A seeded, serializable fault script."""

    events: List[ChaosEvent] = field(default_factory=list)
    seed: Optional[int] = None
    scenario: str = "custom"

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "version": SCHEDULE_VERSION,
            "seed": self.seed,
            "scenario": self.scenario,
            "events": [e.to_dict() for e in self.ordered()],
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        raw = json.loads(text)
        version = raw.get("version", SCHEDULE_VERSION)
        if version != SCHEDULE_VERSION:
            raise ChaosError(f"schedule version {version} != "
                             f"{SCHEDULE_VERSION}")
        return cls(
            events=[ChaosEvent.from_dict(e) for e in raw.get("events", [])],
            seed=raw.get("seed"),
            scenario=raw.get("scenario", "custom"),
        )

    # -- views ----------------------------------------------------------
    def ordered(self) -> List[ChaosEvent]:
        """Events in application order (time, then declaration order)."""
        indexed = sorted(enumerate(self.events),
                         key=lambda pair: (pair[1].at_ms, pair[0]))
        return [event for _idx, event in indexed]

    def log_lines(self) -> List[str]:
        """The diffable schedule log (acceptance: same seed, same log)."""
        header = f"schedule scenario={self.scenario} seed={self.seed}"
        return [header] + [e.log_line() for e in self.ordered()]

    def end_ms(self) -> float:
        """Simulated ms at which the last fault (incl. windows) ends."""
        end = 0.0
        for event in self.events:
            end = max(end, event.at_ms + (event.duration_ms or 0.0))
        return end

    def stall_budget_s(self, speed: float) -> float:
        """Extra wall-clock the live run may stall behind the schedule.

        Partition/stop windows pause delivery (and, via backpressure,
        the producers), so the run's deadline must stretch by roughly
        the summed window lengths.
        """
        stalled_ms = sum(event.duration_ms or 0.0
                         for event in self.events
                         if event.kind in ("partition", "stop",
                                           "half_open"))
        return stalled_ms / (1000.0 * speed)

    # -- survivability ---------------------------------------------------
    def lost_state(self, spec: ClusterSpec) -> Optional[str]:
        """Name the state an unsurvivable schedule destroys, else None.

        A schedule is unsurvivable when, for some engine, the engine
        process and *every* follower process of its replication group
        are dead at the end of the schedule (killed, or stopped and
        never continued) — the volatile engine state, every shipped
        checkpoint chain, and the whole succession line are then gone.
        With replication disabled, any engine kill is unsurvivable.
        """
        dead: Dict[str, bool] = {}
        for event in self.ordered():
            if event.kind in ("kill", "stop"):
                dead[event.target] = True
            elif event.kind == "cont":
                dead.pop(event.target, None)
        for engine_id in spec.engines:
            engine_dead = dead.get(f"engine-{engine_id}", False)
            followers = spec.follower_processes(engine_id)
            if engine_dead and not followers:
                return (f"engine {engine_id}: killed with no followers "
                        f"configured; volatile state and checkpoint "
                        f"chain lost")
            if engine_dead and all(dead.get(p, False) for p in followers):
                return (f"engine {engine_id}: engine-{engine_id} and all "
                        f"{len(followers)} follower process(es) dead; "
                        f"checkpoint chains and succession line lost")
        return None

    # -- simulator lowering ----------------------------------------------
    def sim_events(self, spec: ClusterSpec) -> List[Dict]:
        """Lower to node-level simulator events.

        Returns dicts consumed by
        :meth:`repro.runtime.failure.FailureInjector.apply_schedule`.
        Timing-only kinds are dropped (see module docstring); a kill of
        a replica process has no simulator lowering either, because the
        simulated deployment keeps replicas as stable-side state — its
        *consequences* are covered by :meth:`lost_state`.
        """
        nodes_of = plan_cluster_nodes(spec)
        lowered: List[Dict] = []
        # Promotion-aware host tracking: killing the process that
        # *currently* hosts an engine (the engine process, or — after an
        # earlier kill — the follower process it promoted into) lowers
        # to a simulator engine kill; killing an idle follower does not.
        current_host = {e: f"engine-{e}" for e in spec.engines}
        dead_procs: set = set()
        for event in self.ordered():
            at_ticks = int(ms(event.at_ms))
            if event.kind == "kill":
                dead_procs.add(event.target)
                victim = next((e for e, host in current_host.items()
                               if host == event.target), None)
                if victim is not None:
                    lowered.append({
                        "kind": "kill", "at_ticks": at_ticks,
                        "node": victim,
                    })
                    current_host[victim] = next(
                        (p for p in spec.follower_processes(victim)
                         if p not in dead_procs), None,
                    )
            elif event.kind == "partition":
                a, b = event.link
                lowered.append({
                    "kind": "partition", "at_ticks": at_ticks,
                    "duration_ticks": int(ms(event.duration_ms or 0.0)),
                    "a_nodes": list(nodes_of.get(a, [])),
                    "b_nodes": list(nodes_of.get(b, [])),
                })
            elif event.kind == "impair":
                a, b = event.link
                for src in nodes_of.get(a, []):
                    for dst in nodes_of.get(b, []):
                        for s, d in ((src, dst), (dst, src)):
                            lowered.append({
                                "kind": "impair", "at_ticks": at_ticks,
                                "src": s, "dst": d,
                                "loss_prob": event.loss_prob or 0.0,
                                "dup_prob": event.dup_prob or 0.0,
                            })
            elif (event.kind == "corrupt"
                  and event.target.startswith("engine-")):
                # Content fault by construction: the mutation bypasses
                # dirty tracking, so only the audit distinguishes the
                # run from a clean one.  (The generator never combines
                # corrupt with a kill of the same engine — the live
                # no-op against a dead process has no sim equivalent.)
                lowered.append({
                    "kind": "corrupt", "at_ticks": at_ticks,
                    "node": event.target[len("engine-"):],
                    "component": event.component,
                })
        return lowered

    # -- expectations for the invariant checker --------------------------
    def expected_hosts(self, spec: ClusterSpec) -> Dict[str, Optional[str]]:
        """engine node id -> process expected to host it at the end.

        ``None`` means "either is legitimate" (e.g. a SIGSTOP'd engine
        that was continued: promotion may or may not have raced the
        freeze, and the fence resolves the duel either way).
        """
        expected: Dict[str, Optional[str]] = {}
        killed = {e.target for e in self.events if e.kind == "kill"}
        stopped = {e.target for e in self.events
                   if e.kind in ("stop", "cont")}
        for engine_id in spec.engines:
            engine_proc = f"engine-{engine_id}"
            if engine_proc in killed and spec.followers() >= 1:
                # First surviving follower in the succession line hosts
                # the engine at the end (earlier ranks killed too mean
                # repeated promotions down the chain).
                expected[engine_id] = next(
                    (p for p in spec.follower_processes(engine_id)
                     if p not in killed), None,
                )
            elif engine_proc in stopped:
                expected[engine_id] = None
            else:
                expected[engine_id] = engine_proc
        return expected


# ----------------------------------------------------------------------
# Seeded generation
# ----------------------------------------------------------------------


def _span_ms(spec: ClusterSpec) -> float:
    """Workload span in simulated ms (the canvas faults are drawn on)."""
    return max(1.0, spec.workload_span_ticks() / 1e6)


def _detection_ms(spec: ClusterSpec) -> float:
    """Simulated ms for a heartbeat timeout to fire."""
    return spec.heartbeat_interval_ms * (spec.heartbeat_miss_limit + 1)


def _pick_engine(rng: random.Random, spec: ClusterSpec) -> str:
    return rng.choice(list(spec.engines))


def _gen_kill_active(rng, spec):
    victim = _pick_engine(rng, spec)
    return [ChaosEvent("kill", rng.uniform(0.30, 0.60) * _span_ms(spec),
                       target=f"engine-{victim}")]


def _gen_kill_replica(rng, spec):
    victim = _pick_engine(rng, spec)
    return [ChaosEvent("kill", rng.uniform(0.20, 0.50) * _span_ms(spec),
                       target=f"replica-{victim}")]


def _gen_partition_heal(rng, spec):
    span = _span_ms(spec)
    victim = _pick_engine(rng, spec)
    peers = [f"engine-{e}" for e in spec.engines if e != victim]
    other = rng.choice(["coordinator"] + peers)
    return [ChaosEvent("partition", rng.uniform(0.25, 0.45) * span,
                       link=(other, f"engine-{victim}"),
                       duration_ms=rng.uniform(0.15, 0.30) * span)]


def _gen_double_fault(rng, spec):
    span = _span_ms(spec)
    engines = list(spec.engines)
    victim = rng.choice(engines)
    others = [e for e in engines if e != victim] or [victim]
    bystander = rng.choice(others)
    events = [ChaosEvent("kill", rng.uniform(0.30, 0.50) * span,
                         target=f"engine-{victim}")]
    if spec.replicas >= 1 and bystander != victim:
        # A *different* engine's replica dies too: still survivable.
        events.append(ChaosEvent(
            "kill", rng.uniform(0.20, 0.60) * span,
            target=f"replica-{bystander}",
        ))
    return events


def _gen_partition_promotion(rng, spec):
    """Kill an engine, then cut the promoting replica off mid-recovery."""
    span = _span_ms(spec)
    victim = _pick_engine(rng, spec)
    kill_at = rng.uniform(0.30, 0.45) * span
    cut_at = kill_at + _detection_ms(spec) * rng.uniform(0.8, 1.4)
    return [
        ChaosEvent("kill", kill_at, target=f"engine-{victim}"),
        ChaosEvent("partition", cut_at,
                   link=("coordinator", f"replica-{victim}"),
                   duration_ms=rng.uniform(0.10, 0.20) * span),
    ]


def _gen_latency_throttle(rng, spec):
    span = _span_ms(spec)
    victim = _pick_engine(rng, spec)
    link = ("coordinator", f"engine-{victim}")
    return [
        ChaosEvent("latency", rng.uniform(0.15, 0.30) * span, link=link,
                   delay_ms=rng.uniform(5.0, 20.0),
                   duration_ms=rng.uniform(0.20, 0.35) * span),
        ChaosEvent("reset", rng.uniform(0.45, 0.60) * span, link=link),
        ChaosEvent("throttle", rng.uniform(0.62, 0.72) * span, link=link,
                   rate_bps=rng.uniform(64, 256) * 1024,
                   duration_ms=rng.uniform(0.10, 0.20) * span),
        ChaosEvent("heal", rng.uniform(0.85, 0.95) * span),
    ]


def _gen_stop_cont(rng, spec):
    """Freeze an engine past its heartbeat timeout, then thaw it.

    The replica promotes while the engine is frozen; on SIGCONT the
    stale engine resumes under a promoted identity and must be fenced.
    """
    span = _span_ms(spec)
    victim = _pick_engine(rng, spec)
    stop_at = rng.uniform(0.30, 0.45) * span
    frozen_ms = _detection_ms(spec) * rng.uniform(2.0, 3.0)
    return [
        ChaosEvent("stop", stop_at, target=f"engine-{victim}"),
        ChaosEvent("cont", stop_at + frozen_ms, target=f"engine-{victim}"),
    ]


def _gen_corrupt_state(rng, spec):
    """Plant untracked state corruption the divergence audit must heal.

    Prefers the pipeline's ``enricher``: its MapCell state is shipped
    through dirty-tracked deltas but never read back into the output
    path, so the corruption is invisible both to checkpoints *and* to
    the byte-identity oracle — only the audit (``--audit``) can tell
    this run from a clean one, which is exactly what the scenario
    exercises.  Falls back to auto-picking a cell on a random engine
    for non-pipeline apps.
    """
    span = _span_ms(spec)
    victim = _pick_engine(rng, spec)
    component = None
    placement = component_placement(spec)
    if "enricher" in placement:
        component = "enricher"
        victim = placement["enricher"]
    return [ChaosEvent("corrupt", rng.uniform(0.25, 0.45) * span,
                       target=f"engine-{victim}", component=component)]


def _component_hosting_engines(spec: ClusterSpec) -> List[str]:
    """Engines hosting at least one component, in spec order."""
    placed = set(component_placement(spec).values())
    hosting = [e for e in spec.engines if e in placed]
    return hosting or list(spec.engines)


def _gen_group_leader_kill(rng, spec):
    """Kill one group's leader while load flows through the others.

    Targets an engine that actually hosts components (hash placement on
    a sharded spec can differ from spec order), so the kill stalls a
    real lane; the invariant checker then demands group-local
    convergence *and* deliveries from every independent group during
    the failover window.
    """
    victim = rng.choice(_component_hosting_engines(spec))
    return [ChaosEvent("kill", rng.uniform(0.35, 0.55) * _span_ms(spec),
                       target=f"engine-{victim}")]


def _gen_leader_then_follower_kill(rng, spec):
    """Kill a leader, then its rank-0 follower after it promoted.

    The second kill lands one-to-two detection windows after the first —
    enough for rank 0 to promote and resume heartbeats — so it takes
    down the *promoted* engine, and the group must fail over a second
    time into rank 1 (whose rank-scaled detector timeout makes it act
    only once both predecessors are gone).  On specs with fewer than two
    followers the second kill is withheld: the schedule stays
    survivable by construction.
    """
    span = _span_ms(spec)
    victim = rng.choice(_component_hosting_engines(spec))
    kill_at = rng.uniform(0.20, 0.30) * span
    events = [ChaosEvent("kill", kill_at, target=f"engine-{victim}")]
    if spec.followers() >= 2:
        follow_at = kill_at + _detection_ms(spec) * rng.uniform(1.1, 1.6)
        events.append(ChaosEvent("kill", follow_at,
                                 target=spec.follower_process(victim, 0)))
    return events


def _gen_unsurvivable(rng, spec):
    """Kill an engine *and* its replica: state is genuinely lost."""
    span = _span_ms(spec)
    victim = _pick_engine(rng, spec)
    kill_at = rng.uniform(0.30, 0.50) * span
    return [
        ChaosEvent("kill", kill_at, target=f"engine-{victim}"),
        ChaosEvent("kill", kill_at + rng.uniform(0.0, 0.05) * span,
                   target=f"replica-{victim}"),
    ]


def _gen_gateway_client_reset(rng, spec):
    """Hard-close every live client connection to the gateway mid-burst.

    Exercises the gateway's session-survives-connection contract: the
    reset rides the ``("clients", "gateway")`` link of the fault proxy
    (client connections are classified by their GW_HELLO group), so
    clients must reconnect, retransmit every unanswered req, and be
    re-answered from the dedup table without a single double-stamp.

    Gateway specs drive load from external wall-clock clients, not from
    a seeded workload, so ``_span_ms`` is meaningless here; the time
    canvas comes from ``spec.gateway["span_ms"]`` (the harness sets it
    to the planned client-burst span).
    """
    span = _span_ms(spec)
    if span <= 1.0:
        span = float(spec.gateway.get("span_ms", 400.0))
    return [ChaosEvent("reset", rng.uniform(0.35, 0.65) * span,
                       link=("clients", "gateway"))]


#: name -> generator.  Order matters: ``seed % len`` picks the scenario,
#: so consecutive seeds sweep the whole failure model.  ``unsurvivable``
#: is deliberately *not* in the rotation — it is only run when asked
#: for, to prove graceful degradation.
SCENARIOS = {
    "kill_active": _gen_kill_active,
    "kill_replica": _gen_kill_replica,
    "partition_heal": _gen_partition_heal,
    "double_fault": _gen_double_fault,
    "partition_promotion": _gen_partition_promotion,
    "latency_throttle": _gen_latency_throttle,
    "stop_cont": _gen_stop_cont,
    # Appended in arrival order so earlier seeds keep their historical
    # scenarios (seed % len picks from this rotation).
    "corrupt_state": _gen_corrupt_state,
    "group_leader_kill": _gen_group_leader_kill,
    "leader_then_follower_kill": _gen_leader_then_follower_kill,
}

EXTRA_SCENARIOS = {
    "unsurvivable": _gen_unsurvivable,
    "gateway_client_reset": _gen_gateway_client_reset,
}

_ROTATION = list(SCENARIOS)


def generate_schedule(seed: int, spec: ClusterSpec,
                      scenario: Optional[str] = None) -> ChaosSchedule:
    """The deterministic schedule for one seed (and optional scenario).

    Everything — scenario choice, victims, timings, fault parameters —
    is drawn from ``random.Random(seed)``, so the same seed always
    yields a byte-identical schedule for the same spec.
    """
    rng = random.Random(seed)
    if scenario is None:
        scenario = _ROTATION[seed % len(_ROTATION)]
    generator = SCENARIOS.get(scenario) or EXTRA_SCENARIOS.get(scenario)
    if generator is None:
        known = sorted(SCENARIOS) + sorted(EXTRA_SCENARIOS)
        raise ChaosError(f"unknown scenario {scenario!r} (known: {known})")
    events = generator(rng, spec)
    for event in events:
        event.validate()
    return ChaosSchedule(events=events, seed=seed, scenario=scenario)
