"""TCP fault proxy: every inter-process link, interposable.

One :class:`FaultProxy` fronts a whole cluster.  For each process it
opens a listener on a fresh port and forwards accepted connections to
the process's real listen address; :func:`proxied_spec` rewrites a
:class:`~repro.net.topology.ClusterSpec` so every *dialed* address is a
proxy port while every process still *binds* its real port (the spec's
``listen`` overrides).  No repro.net code changes behaviour — the
cluster genuinely cannot tell a proxied link from a direct one until a
fault fires.

The proxy classifies each connection by **directed link** — (source
process, destination process) — by sniffing the first frame: every
repro.net connection opens with a HELLO frame whose ``peer`` field is
``<process name>:<uuid>``.  The sniffed bytes are forwarded verbatim, so
the handshake is untouched.

Faults are per-directed-link :class:`LinkPolicy` state:

* ``delay_s`` — added one-way latency (each forwarded chunk waits);
* ``rate_bps`` — bandwidth cap (token-bucket-ish sleep per chunk);
* ``blackholed`` — partition: established connections stall (bytes stop
  flowing, TCP backpressure does the rest) and new handshakes hang;
  healing kills the stalled connections so both ends re-handshake and
  the channel protocol's retransmission + dedup takes over;
* ``half_open`` — only *new* connections hang (accept-then-stall),
  established ones keep flowing — the classic "SYN works, nothing else
  does" failure;
* :meth:`FaultProxy.reset` — one-shot hard close of the link's live
  connections.

Nothing here is seeded: the proxy is a dumb actuator.  All randomness
(which faults, when, where) lives in the seeded schedule, which is what
makes a chaos run reproducible.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Dict, List, Optional, Tuple

from repro.net import codec
from repro.net.topology import ClusterSpec, plan_cluster_nodes

_LEN = struct.Struct(">I")

#: Forwarding chunk size.  Small enough that latency/throttle shaping
#: has sub-frame granularity, large enough to not throttle throughput.
_CHUNK = 65536

#: How long a sniffer waits for the first frame before treating the
#: connection as unclassifiable (it is then forwarded on the wildcard
#: policy; repro.net always sends HELLO immediately, so this only
#: triggers for foreign connections).
_SNIFF_TIMEOUT_S = 5.0


class LinkPolicy:
    """Mutable fault state of one directed link."""

    def __init__(self):
        self.delay_s: float = 0.0
        self.rate_bps: Optional[float] = None
        self.blackholed: bool = False
        self.half_open: bool = False

    def clear(self) -> None:
        self.delay_s = 0.0
        self.rate_bps = None
        self.blackholed = False
        self.half_open = False

    def impaired(self) -> bool:
        return bool(self.delay_s or self.rate_bps or self.blackholed
                    or self.half_open)


class _ProxyConn:
    """One accepted connection being forwarded (or stalled)."""

    def __init__(self, proxy: "FaultProxy", dst_proc: str,
                 client_reader, client_writer, target: Tuple[str, int]):
        self.proxy = proxy
        self.dst_proc = dst_proc
        self.src_proc = "?"
        self.client_reader = client_reader
        self.client_writer = client_writer
        self.target = target
        self.tasks: List[asyncio.Task] = []
        self._upstream_writer = None

    # -- life ------------------------------------------------------------
    async def run(self) -> None:
        try:
            sniffed = await self._sniff()
            policy = self.proxy.policy(self.src_proc, self.dst_proc)
            if policy.blackholed or policy.half_open:
                # Accept-then-stall: the dialer's handshake timeout is
                # what turns this into a retry, exactly like a SYN that
                # vanished into a partitioned network.
                self.proxy.count(self.src_proc, self.dst_proc, "stalled")
                await self._stall()
                return
            reader, writer = await asyncio.open_connection(*self.target)
            self._upstream_writer = writer
            writer.write(sniffed)
            await writer.drain()
            self.tasks.append(asyncio.get_running_loop().create_task(
                self._pump(reader, self.client_writer,
                           self.dst_proc, self.src_proc)
            ))
            await self._pump(self.client_reader, writer,
                             self.src_proc, self.dst_proc)
        except (ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, codec.CodecError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self.close()
            self.proxy._conns.discard(self)

    async def _sniff(self) -> bytes:
        """Read exactly the first frame; classify; return its raw bytes."""
        try:
            header = await asyncio.wait_for(
                self.client_reader.readexactly(_LEN.size),
                timeout=_SNIFF_TIMEOUT_S,
            )
            (length,) = _LEN.unpack(header)
            if length > codec.MAX_FRAME_BYTES:
                raise codec.CodecError(f"frame too large: {length}")
            payload = await asyncio.wait_for(
                self.client_reader.readexactly(length),
                timeout=_SNIFF_TIMEOUT_S,
            )
        except asyncio.TimeoutError:
            return b""
        tag, body = codec.decode_frame_payload(payload)
        if tag == codec.FRAME_HELLO:
            peer = str(body.get("peer", ""))
            self.src_proc = peer.rsplit(":", 1)[0] or "?"
        elif tag == codec.FRAME_GW_HELLO:
            # Gateway client connections open with GW_HELLO; client ids
            # are "<group>:<n>", so the group ("clients") names the
            # source side of the link — one policy covers the fleet.
            client = str(body.get("client", ""))
            self.src_proc = client.rsplit(":", 1)[0] or "?"
        return header + payload

    async def _stall(self) -> None:
        """Hold the connection open, forward nothing, until killed."""
        await asyncio.Event().wait()

    async def _pump(self, reader, writer, src: str, dst: str) -> None:
        while True:
            data = await reader.read(_CHUNK)
            if not data:
                break
            policy = self.proxy.policy(src, dst)
            if policy.blackholed:
                # Partition fired mid-connection: stop forwarding.  The
                # unread socket fills, TCP flow control pushes back on
                # the sender, and healing kills this connection.
                self.proxy.count(src, dst, "stalled")
                await self._stall()
            if policy.delay_s > 0:
                await asyncio.sleep(policy.delay_s)
            if policy.rate_bps:
                await asyncio.sleep(len(data) / policy.rate_bps)
            writer.write(data)
            await writer.drain()
            self.proxy.count(src, dst, "bytes", len(data))
        writer.close()

    def on_link(self, a: str, b: str) -> bool:
        return {self.src_proc, self.dst_proc} & {a, b} == {a, b} or (
            self.src_proc in (a, b) and self.dst_proc in (a, b)
        )

    def close(self) -> None:
        for task in self.tasks:
            if not task.done():
                task.cancel()
        for writer in (self.client_writer, self._upstream_writer):
            if writer is not None:
                try:
                    writer.close()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass


class FaultProxy:
    """All proxy listeners and link policies for one cluster."""

    def __init__(self):
        #: process name -> (real host, real port) forward target.
        self.targets: Dict[str, Tuple[str, int]] = {}
        #: process name -> (proxy host, proxy port).
        self.fronts: Dict[str, Tuple[str, int]] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._policies: Dict[Tuple[str, str], LinkPolicy] = {}
        self._conns: set = set()
        #: (src, dst, counter) -> value; the proxy's own diagnostics.
        self.counters: Dict[Tuple[str, str, str], int] = {}

    # -- wiring ----------------------------------------------------------
    def plan(self, process: str, target: Tuple[str, int],
             front: Tuple[str, int]) -> None:
        """Declare one process's real address and its proxy front."""
        self.targets[process] = tuple(target)
        self.fronts[process] = tuple(front)

    async def start(self) -> None:
        """Bind every planned front (call inside the event loop)."""
        for process, (host, port) in self.fronts.items():
            server = await asyncio.start_server(
                self._make_handler(process), host, port
            )
            self._servers.append(server)

    def _make_handler(self, process: str):
        async def handle(reader, writer):
            conn = _ProxyConn(self, process, reader, writer,
                              self.targets[process])
            self._conns.add(conn)
            await conn.run()
        return handle

    async def close(self) -> None:
        for conn in list(self._conns):
            conn.close()
        self._conns.clear()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()

    # -- policy plane ----------------------------------------------------
    def policy(self, src: str, dst: str) -> LinkPolicy:
        """The directed-link policy (created on first touch)."""
        key = (src, dst)
        policy = self._policies.get(key)
        if policy is None:
            policy = self._policies[key] = LinkPolicy()
        return policy

    def count(self, src: str, dst: str, name: str, n: int = 1) -> None:
        key = (src, dst, name)
        self.counters[key] = self.counters.get(key, 0) + n

    def _kill_link_conns(self, a: str, b: str) -> None:
        for conn in list(self._conns):
            if conn.src_proc in (a, b) and conn.dst_proc in (a, b):
                conn.close()
                self._conns.discard(conn)

    def partition(self, a: str, b: str) -> None:
        """Blackhole both directions of the a<->b link."""
        self.policy(a, b).blackholed = True
        self.policy(b, a).blackholed = True
        self.count(a, b, "partitions")

    def heal_link(self, a: str, b: str) -> None:
        """Clear a<->b faults; stalled connections die so both ends
        re-handshake cleanly (retransmission recovers the traffic)."""
        self.policy(a, b).clear()
        self.policy(b, a).clear()
        self._kill_link_conns(a, b)

    def heal_all(self) -> None:
        """Clear every fault on every link."""
        stalled = [key for key, policy in self._policies.items()
                   if policy.blackholed or policy.half_open]
        for policy in self._policies.values():
            policy.clear()
        for a, b in stalled:
            self._kill_link_conns(a, b)

    def set_latency(self, a: str, b: str, delay_s: float) -> None:
        self.policy(a, b).delay_s = float(delay_s)
        self.policy(b, a).delay_s = float(delay_s)

    def set_throttle(self, a: str, b: str, rate_bps: float) -> None:
        self.policy(a, b).rate_bps = float(rate_bps)
        self.policy(b, a).rate_bps = float(rate_bps)

    def set_half_open(self, a: str, b: str, on: bool = True) -> None:
        self.policy(a, b).half_open = bool(on)
        self.policy(b, a).half_open = bool(on)

    def reset(self, a: str, b: str) -> None:
        """Hard-close the link's live connections once."""
        self.count(a, b, "resets")
        self._kill_link_conns(a, b)

    # -- reporting -------------------------------------------------------
    def report(self) -> Dict[str, Dict[str, int]]:
        """``"src->dst" -> {counter: value}`` (stable keys, diffable)."""
        out: Dict[str, Dict[str, int]] = {}
        for (src, dst, name), value in sorted(self.counters.items()):
            out.setdefault(f"{src}->{dst}", {})[name] = value
        return out


def proxied_spec(spec: ClusterSpec,
                 port_of=None) -> Tuple[ClusterSpec, FaultProxy]:
    """Front every address of ``spec`` with a fault proxy.

    ``spec`` must already carry real addresses (see
    ``repro.net.cluster.with_addresses``).  Returns a deep-copied spec in
    which every dialed address is a proxy front and each process binds
    its real port via ``spec.listen``, plus the planned (not yet
    started) :class:`FaultProxy`.  ``port_of`` is injectable for tests;
    it defaults to OS-assigned free ports.
    """
    if port_of is None:
        from repro.net.cluster import free_port

        def port_of(_process):
            return ("127.0.0.1", free_port())

    run_spec = ClusterSpec.from_json(spec.to_json())
    proxy = FaultProxy()
    mapping: Dict[Tuple[str, int], Tuple[str, int]] = {}
    for process in plan_cluster_nodes(run_spec):
        real = tuple(run_spec.addresses[f"proc:{process}"][0])
        front = tuple(port_of(process))
        proxy.plan(process, real, front)
        mapping[real] = front
        run_spec.listen[process] = real
    run_spec.addresses = {
        node: [mapping.get(tuple(addr), tuple(addr)) for addr in addrs]
        for node, addrs in run_spec.addresses.items()
    }
    return run_spec, proxy
