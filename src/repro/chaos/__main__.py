"""``python -m repro.chaos``: run one seeded chaos experiment.

Exit codes: 0 — live run byte-identical to the simulated reference and
all invariants hold; 1 — an invariant failed (a real bug); 2 — the
schedule was unsurvivable and the cluster degraded gracefully with a
structured :class:`~repro.errors.UnrecoverableClusterError` (expected
for ``--scenario unsurvivable``, a surprise otherwise).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.chaos.runner import run_chaos
from repro.chaos.schedule import (
    EXTRA_SCENARIOS,
    SCENARIOS,
    ChaosSchedule,
    generate_schedule,
)
from repro.errors import UnrecoverableClusterError
from repro.net.topology import ClusterSpec


def build_spec(args: argparse.Namespace) -> ClusterSpec:
    """A chaos-tuned cluster spec: same workload and sharded layout as
    the cluster CLI (one pipeline lane per engine when there are three
    or more, placed by consistent hashing), compressed transport
    timeouts so partitions and kills resolve in test-scale wall time."""
    from repro.apps.pipeline import build_pipeline_app, lane_key, lane_suffix
    from repro.net.topology import sharded_placement

    engines = [f"e{i}" for i in range(args.engines)]
    lanes = 1 if args.engines <= 2 else args.engines
    app_args = {"window": args.window}
    placement = {}
    if lanes > 1:
        app_args["lanes"] = lanes
        app = build_pipeline_app(**app_args)
        placement = sharded_placement(app.component_names(), engines,
                                      group_key=lane_key)
    workload = {}
    per, rem = divmod(args.messages, lanes)
    for lane in range(lanes):
        n = per + (1 if lane < rem else 0)
        if n:
            workload[f"readings{lane_suffix(lane)}"] = {
                "n_messages": n,
                "mean_interarrival_ms": args.mean_ms,
            }
    return ClusterSpec(
        app="pipeline",
        app_args=app_args,
        engines=engines,
        placement=placement,
        replicas=args.replicas,
        followers_per_group=getattr(args, "followers", None),
        master_seed=args.master_seed,
        speed=args.speed,
        checkpoint_interval_ms=args.checkpoint_ms,
        heartbeat_interval_ms=args.heartbeat_ms,
        heartbeat_miss_limit=args.heartbeat_miss,
        workload=workload,
        recovery_target_ms=args.recovery_target,
        audit=args.audit,
        audit_every=args.audit_every,
        connect_timeout_s=0.5,
        handshake_timeout_s=0.5,
        backoff_min_s=0.02,
        backoff_max_s=0.2,
        fence_attempts=10,
        fence_gap_s=0.1,
    )


def main(argv: Optional[List[str]] = None) -> int:
    known = sorted(SCENARIOS) + sorted(EXTRA_SCENARIOS)
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Generate the seeded fault schedule for --seed, run "
                    "it against a live multi-process cluster behind a "
                    "TCP fault proxy, and verify the recovered output "
                    "byte-identical to the simulated reference.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="schedule seed; also picks the scenario "
                             "(seed %% n rotates through them)")
    parser.add_argument("--scenario", default=None, choices=known,
                        help="force a scenario instead of the rotation")
    parser.add_argument("--schedule", default=None, metavar="FILE",
                        help="run a saved schedule JSON instead of "
                             "generating one")
    parser.add_argument("--emit-schedule", action="store_true",
                        help="print the schedule JSON and exit (diff "
                             "two seeds, or save for --schedule)")
    parser.add_argument("--sim-only", action="store_true",
                        help="only run the in-simulator replay")
    parser.add_argument("--skip-sim", action="store_true",
                        help="skip the in-simulator replay")
    parser.add_argument("--engines", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=1, choices=(0, 1))
    parser.add_argument("--followers", type=int, default=None, metavar="K",
                        help="followers per replication group (overrides "
                             "--replicas)")
    parser.add_argument("--messages", type=int, default=240)
    parser.add_argument("--mean-ms", type=float, default=1.0)
    parser.add_argument("--window", type=int, default=10)
    parser.add_argument("--master-seed", type=int, default=7,
                        help="workload/application seed (the chaos "
                             "--seed only drives the fault schedule)")
    parser.add_argument("--speed", type=float, default=0.1)
    parser.add_argument("--checkpoint-ms", type=float, default=25.0)
    parser.add_argument("--heartbeat-ms", type=float, default=10.0)
    parser.add_argument("--heartbeat-miss", type=int, default=3)
    parser.add_argument("--recovery-target", type=float, default=None,
                        metavar="MS",
                        help="recovery-time objective in simulated ms; "
                             "engines adapt their checkpoint cadence to "
                             "keep worst-case replay under it")
    parser.add_argument("--audit", nargs="?", const="heal", default="off",
                        choices=("off", "raise", "heal"),
                        help="divergence audit mode on every engine "
                             "(bare --audit means heal); corrupt "
                             "schedules force heal when left off")
    parser.add_argument("--audit-every", type=int, default=1,
                        help="audit once per N checkpoint captures")
    parser.add_argument("--timeout", type=float, default=None,
                        help="live-run wall-clock deadline in seconds")
    parser.add_argument("--record", default=None, metavar="DIR",
                        help="write a .replay flight-recorder bundle of "
                             "the run (see docs/timetravel.md); invariant "
                             "failures always record a reproducer bundle")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the full metrics registry as JSON "
                             "at shutdown")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable report on stdout")
    args = parser.parse_args(argv)

    spec = build_spec(args)
    schedule = None
    if args.schedule:
        schedule = ChaosSchedule.from_json(Path(args.schedule).read_text())
    if args.emit_schedule:
        schedule = schedule or generate_schedule(args.seed, spec,
                                                 args.scenario)
        print(schedule.to_json())
        return 0

    try:
        report = run_chaos(
            spec, args.seed,
            scenario=args.scenario,
            schedule=schedule,
            deadline_s=args.timeout,
            run_sim=not args.skip_sim,
            run_live=not args.sim_only,
            record_dir=args.record,
        )
    except UnrecoverableClusterError as exc:
        print(f"chaos: {exc}", file=sys.stderr, flush=True)
        if args.as_json:
            print(json.dumps({
                "ok": False,
                "unrecoverable": True,
                "lost_state": exc.lost_state,
                "seed": exc.schedule_seed,
                "delivered": exc.delivered,
                "expected": exc.expected,
            }, indent=2, sort_keys=True))
        return 2

    if args.metrics_out is not None:
        Path(args.metrics_out).write_text(
            json.dumps(report.get("metrics"), indent=2, sort_keys=True)
            + "\n")
        print(f"chaos: wrote metrics to {args.metrics_out}",
              file=sys.stderr, flush=True)
    report.pop("metrics", None)  # bulky; lives in --metrics-out / bundles
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    verdict = report.get("verdict", {})
    for violation in verdict.get("violations", []):
        print(f"chaos: violation: {violation}", file=sys.stderr, flush=True)
    status = "OK" if report["ok"] else "FAIL"
    print(f"chaos: seed {args.seed} ({report['scenario']}): {status}",
          file=sys.stderr, flush=True)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
