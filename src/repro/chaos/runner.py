"""Chaos runner: drive a seeded schedule against a live cluster.

:class:`ChaosDriver` is the actuator bridge.  It plugs into
:func:`repro.net.cluster.run_networked`'s lifecycle hooks and converts
each :class:`~repro.chaos.schedule.ChaosEvent` into real-world actions
at the scheduled moment: process faults are POSIX signals (SIGKILL /
SIGSTOP / SIGCONT) on the spawned children, link faults are policy
flips on the :class:`~repro.chaos.proxy.FaultProxy` every connection is
routed through.  Schedule times are simulated milliseconds; the driver
maps them onto the cluster's shared epoch (``t0 + at_ms / (1000 *
speed)`` wall seconds), so the *same* schedule the simulator lowers to
ticks fires at the equivalent moments in real time.

:func:`run_chaos` is the whole experiment: simulate the clean
reference, optionally re-simulate *with* the schedule's sim lowering
applied (the fast ground-truth of satellite value: one fault script,
two worlds), then run the real multi-process cluster behind fault
proxies while the driver injects faults, and finally judge the result
with :func:`repro.chaos.invariants.check_invariants`.
"""

from __future__ import annotations

import asyncio
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.invariants import check_invariants
from repro.errors import UnrecoverableClusterError
from repro.chaos.proxy import FaultProxy, proxied_spec
from repro.chaos.schedule import ChaosSchedule, generate_schedule
from repro.net.cluster import run_networked, with_addresses
from repro.net.topology import (
    ClusterSpec,
    attach_workload,
    build_deployment,
    reference_run,
    stream_of,
)
from repro.runtime.failure import FailureInjector
from repro.sim.kernel import ms
from repro.tools.verify_determinism import verify_trace_equivalence


def _stderr(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


class ChaosDriver:
    """Applies one schedule to one live run (signals + proxy flips)."""

    #: Period between live "impair" resets inside the fault window.
    IMPAIR_RESET_GAP_S = 0.4

    def __init__(self, schedule: ChaosSchedule, proxy: FaultProxy,
                 spec: ClusterSpec,
                 log: Callable[[str], None] = _stderr):
        self.schedule = schedule
        self.proxy = proxy
        self.spec = spec
        self.log = log
        self.children: Dict = {}
        #: Applied-action log lines, in application order (diffable).
        self.applied: List[str] = []
        #: Corrupt events actually handed to a live process (the audit
        #: invariant only demands heals for corruption that landed).
        self.corrupted: List[Dict] = []
        self._task: Optional[asyncio.Task] = None
        self._corrupt_tasks: List[asyncio.Task] = []
        self._actions = self._plan()

    # -- planning --------------------------------------------------------
    def _wall(self, at_ms: float) -> float:
        """Schedule time -> wall seconds after the GO epoch."""
        return at_ms / (1000.0 * self.spec.speed)

    def _plan(self) -> List[Tuple[float, str, Callable[[], None]]]:
        """Flatten events (and their window ends) into timed actions."""
        actions: List[Tuple[float, str, Callable[[], None]]] = []

        def add(at_ms: float, label: str, fn: Callable[[], None]) -> None:
            actions.append((self._wall(at_ms), label, fn))

        for event in self.schedule.ordered():
            kind, link = event.kind, event.link
            end_ms = event.at_ms + (event.duration_ms or 0.0)
            if kind in ("kill", "stop", "cont"):
                add(event.at_ms, event.log_line(),
                    lambda k=kind, t=event.target: self._signal(k, t))
            elif kind == "partition":
                a, b = link
                add(event.at_ms, event.log_line(),
                    lambda a=a, b=b: self.proxy.partition(a, b))
                add(end_ms, f"t=+{end_ms:09.3f}ms heal {a}<->{b}",
                    lambda a=a, b=b: self.proxy.heal_link(a, b))
            elif kind == "latency":
                a, b = link
                delay_s = self._wall(event.delay_ms or 0.0)
                add(event.at_ms, event.log_line(),
                    lambda a=a, b=b, d=delay_s:
                        self.proxy.set_latency(a, b, d))
                add(end_ms, f"t=+{end_ms:09.3f}ms latency-end {a}<->{b}",
                    lambda a=a, b=b: self.proxy.set_latency(a, b, 0.0))
            elif kind == "throttle":
                a, b = link
                add(event.at_ms, event.log_line(),
                    lambda a=a, b=b, r=float(event.rate_bps or 0.0):
                        self.proxy.set_throttle(a, b, r))
                add(end_ms, f"t=+{end_ms:09.3f}ms throttle-end {a}<->{b}",
                    lambda a=a, b=b: self.proxy.set_throttle(a, b, 0.0))
            elif kind == "reset":
                a, b = link
                add(event.at_ms, event.log_line(),
                    lambda a=a, b=b: self.proxy.reset(a, b))
            elif kind == "half_open":
                a, b = link
                add(event.at_ms, event.log_line(),
                    lambda a=a, b=b: self.proxy.set_half_open(a, b, True))
                add(end_ms, f"t=+{end_ms:09.3f}ms half-open-end {a}<->{b}",
                    lambda a=a, b=b: self.proxy.heal_link(a, b))
            elif kind == "heal":
                add(event.at_ms, event.log_line(), self.proxy.heal_all)
            elif kind == "corrupt":
                add(event.at_ms, event.log_line(),
                    lambda t=event.target, c=event.component or "":
                        self._corrupt(t, c))
            elif kind == "impair":
                # Live lowering of a lossy link: periodic hard resets —
                # TCP either delivers bytes exactly or drops the
                # connection, so "loss" becomes forced reconnects.
                a, b = link
                gap_ms = self.IMPAIR_RESET_GAP_S * 1000.0 * self.spec.speed
                t = event.at_ms
                while True:
                    add(t, f"t=+{t:09.3f}ms impair-reset {a}<->{b}",
                        lambda a=a, b=b: self.proxy.reset(a, b))
                    t += max(gap_ms, 0.001)
                    if event.duration_ms is None or t > end_ms:
                        break
        actions.sort(key=lambda action: action[0])
        return actions

    # -- lifecycle hooks (called by run_networked) -----------------------
    async def start(self) -> None:
        await self.proxy.start()

    def attach(self, children: Dict) -> None:
        self.children = children

    def on_go(self, t0: float) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._drive(t0), name="chaos-driver"
        )

    async def close(self) -> None:
        if self._task is not None and not self._task.done():
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
        for task in self._corrupt_tasks:
            if not task.done():
                task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        await self.proxy.close()

    # -- execution -------------------------------------------------------
    async def _drive(self, t0: float) -> None:
        for offset_s, label, fn in self._actions:
            delay = (t0 + offset_s) - time.time()
            if delay > 0:
                await asyncio.sleep(delay)
            try:
                fn()
                line = f"chaos apply {label}"
            except Exception as exc:  # noqa: BLE001 - dead target etc.
                line = f"chaos skip {label} ({type(exc).__name__}: {exc})"
            self.applied.append(line)
            self.log(line)

    def _corrupt(self, target: str, component: str) -> None:
        """Deliver one CorruptRequest to the process hosting ``target``.

        Dials the process's *real* address (``proxy.targets``), not its
        proxy front: corruption is god-mode fault injection and must
        land regardless of whatever link faults the schedule has up.
        Delivery is async (connect + handshake take real time); the
        spawned task records the outcome when it resolves.
        """
        address = self.proxy.targets.get(target)
        if address is None:
            raise KeyError(f"no proxied process named {target!r}")
        engine_id = target.split("-", 1)[-1]

        async def _deliver() -> None:
            from repro.net.channel import send_corrupt_once

            ok = await send_corrupt_once(
                address, "chaos-driver", target, engine_id, component,
            )
            if ok:
                self.corrupted.append({
                    "target": target, "component": component or None,
                })
            self.log(f"chaos corrupt "
                     f"{'delivered to' if ok else 'undeliverable:'} "
                     f"{target} component={component or 'auto'}")

        self._corrupt_tasks.append(
            asyncio.get_running_loop().create_task(
                _deliver(), name=f"corrupt:{target}"
            )
        )

    def _signal(self, kind: str, target: str) -> None:
        child = self.children.get(target)
        if child is None:
            raise KeyError(f"no child process named {target!r}")
        if kind == "kill":
            child.kill()
        elif kind == "stop":
            child.stop()
        else:
            child.cont()

    # -- reporting -------------------------------------------------------
    def report(self) -> Dict:
        return {
            "applied": list(self.applied),
            "pending": max(0, len(self._actions) - len(self.applied)),
            "corrupted": list(self.corrupted),
            "proxy": self.proxy.report(),
        }


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def simulate_with_schedule(spec: ClusterSpec,
                           schedule: ChaosSchedule,
                           collect: Optional[Dict] = None) -> Dict[str, List]:
    """Run the spec in-simulator with the schedule's sim lowering.

    The fast half of the shared-schedule contract: the same fault
    script, lowered to node-level simulator events, applied to a pure
    in-process deployment.  Returns per-sink output streams.  When
    ``collect`` is given, the finished deployment and its metrics are
    stashed there for callers that want more than the streams.
    """
    dep = build_deployment(spec)
    attach_workload(dep, spec)
    FailureInjector(dep).apply_schedule(schedule.sim_events(spec))
    until = (2 * spec.workload_span_ticks()
             + int(ms(schedule.end_ms())) + ms(1000))
    dep.run(until=until)
    if collect is not None:
        collect["deployment"] = dep
        collect["metrics"] = dep.metrics
    return {sink: stream_of(consumer)
            for sink, consumer in dep.consumers.items()}


def record_chaos_bundle(spec: ClusterSpec, schedule: ChaosSchedule,
                        out_dir, verdict: Optional[Dict] = None,
                        log: Callable[[str], None] = _stderr):
    """Write a ``.replay`` reproducer bundle for a chaos run.

    Recording re-executes the run's simulated twin under the replay
    clock tracer (byte-identical by the determinism guarantee).  Never
    raises: a recording failure must not mask the chaos verdict.
    """
    from repro.runtime.flightrec import record_run

    try:
        path = record_run(spec, out_dir, schedule=schedule,
                          seed=schedule.seed, scenario=schedule.scenario,
                          source="chaos", verdict=verdict)
    except Exception as exc:  # noqa: BLE001 - reported, not fatal
        log(f"chaos: bundle recording failed: "
            f"{type(exc).__name__}: {exc}")
        return None
    log(f"chaos: wrote replay bundle {path}")
    return path


def chaos_deadline_s(spec: ClusterSpec, schedule: ChaosSchedule,
                     base_deadline_s: Optional[float] = None) -> float:
    """Wall-clock budget for one live chaos run.

    Survivable schedules get the clean-run budget plus the schedule's
    stall windows.  Unsurvivable schedules get a *short* budget — just
    past the last fault plus detection slack — so the run fails fast
    with a structured error instead of waiting out a deadline that can
    never be met.
    """
    span_s = spec.workload_span_ticks() / (1e9 * spec.speed)
    base = base_deadline_s or max(30.0, 6.0 * span_s + 10.0)
    if schedule.lost_state(spec) is not None:
        end_s = schedule.end_ms() / (1000.0 * spec.speed)
        detect_s = (spec.heartbeat_interval_ms
                    * (spec.heartbeat_miss_limit + 1)) / (1000.0 * spec.speed)
        return min(base, end_s + detect_s + 8.0)
    return base + schedule.stall_budget_s(spec.speed)


def run_chaos(
    spec: ClusterSpec,
    seed: int,
    scenario: Optional[str] = None,
    schedule: Optional[ChaosSchedule] = None,
    deadline_s: Optional[float] = None,
    run_sim: bool = True,
    run_live: bool = True,
    log: Callable[[str], None] = _stderr,
    record_dir: Optional[str] = None,
) -> Dict:
    """One full chaos experiment; returns the report dict.

    Raises :class:`~repro.errors.UnrecoverableClusterError` when the
    schedule destroys state and the live run (correctly) cannot reach
    the reference output — callers decide whether that is the expected
    outcome (``--scenario unsurvivable``) or a surprise.

    ``record_dir`` writes a flight-recorder ``.replay`` bundle of the
    run's simulated twin (see ``repro.runtime.flightrec``).  Regardless
    of the flag, any invariant failure writes
    ``chaos-failure-seed<N>.replay`` in the working directory, so every
    red run ships its own reproducer.
    """
    if schedule is None:
        schedule = generate_schedule(seed, spec, scenario)
    for line in schedule.log_lines():
        log(line)

    if (spec.audit == "off"
            and any(e.kind == "corrupt" for e in schedule.events)):
        # A corrupt schedule without the audit is undetectable by
        # construction; running it that way can only ever pass vacuously.
        spec.audit = "heal"
        log("chaos: schedule injects state corruption; enabling "
            "--audit heal")

    report: Dict = {
        "seed": schedule.seed,
        "scenario": schedule.scenario,
        "schedule": [e.to_dict() for e in schedule.ordered()],
        "lost_state": schedule.lost_state(spec),
    }

    log(f"chaos: simulating clean reference ...")
    reference = reference_run(spec)
    ref_counts = {sink: len(s) for sink, s in reference.items()}
    report["reference_outputs"] = sum(ref_counts.values())

    sim_collect: Dict = {}
    if run_sim and report["lost_state"] is None:
        # In-simulator replay of the same fault script: fast ground
        # truth that the schedule itself is survivable and content-safe.
        sim_streams = simulate_with_schedule(spec, schedule, sim_collect)
        sim_verdict = verify_trace_equivalence(
            reference, sim_streams,
            trial=f"sim-chaos-seed-{schedule.seed}", require_complete=True,
        )
        report["sim"] = {
            "deterministic": sim_verdict.deterministic,
            "outputs": sum(len(s) for s in sim_streams.values()),
        }
        if not sim_verdict.deterministic:
            log(sim_verdict.summary())
        log(f"chaos: sim replay "
            f"{'OK' if sim_verdict.deterministic else 'DIVERGED'} "
            f"({report['sim']['outputs']} outputs)")

    if not run_live:
        report["ok"] = bool(report.get("sim", {}).get("deterministic",
                                                      True))
        if "metrics" in sim_collect:
            report["metrics"] = sim_collect["metrics"].dump_json()
        _maybe_record(spec, schedule, record_dir, report, log)
        return report

    run_spec, proxy = proxied_spec(with_addresses(spec))
    driver = ChaosDriver(schedule, proxy, run_spec, log=log)
    budget = chaos_deadline_s(run_spec, schedule, deadline_s)
    log(f"chaos: live run (deadline {budget:.1f}s, "
        f"{len(driver._actions)} scheduled action(s)) ...")
    result = asyncio.run(run_networked(
        run_spec, ref_counts, deadline_s=budget, chaos=driver,
    ))

    streams = result.pop("streams")
    report["metrics"] = result.pop("metrics", None)
    result_for_judge = dict(result, streams=streams)
    try:
        verdict = check_invariants(run_spec, schedule, reference,
                                   result_for_judge)
    except UnrecoverableClusterError as exc:
        # Every red run ships its own reproducer bundle.
        record_chaos_bundle(
            spec, schedule,
            record_dir or f"chaos-failure-seed{schedule.seed}",
            verdict={"ok": False, "unrecoverable": str(exc)}, log=log,
        )
        raise
    report["live"] = {
        key: value for key, value in result.items()
        if key in ("counts", "complete", "error", "killed", "stutter",
                   "elapsed_s", "child_exit_codes", "epoch_resets",
                   "incarnations", "channel_counters", "chaos",
                   "audit_reports")
    }
    report["verdict"] = verdict
    report["ok"] = verdict["ok"] and report.get("sim", {}).get(
        "deterministic", True
    )
    _maybe_record(spec, schedule, record_dir, report, log)
    return report


def _maybe_record(spec: ClusterSpec, schedule: ChaosSchedule,
                  record_dir: Optional[str], report: Dict,
                  log: Callable[[str], None]) -> None:
    """Record when asked to — and always on an invariant failure."""
    out_dir = record_dir
    if out_dir is None and not report.get("ok", True):
        out_dir = f"chaos-failure-seed{schedule.seed}"
    if out_dir is None:
        return
    path = record_chaos_bundle(spec, schedule, out_dir,
                               verdict=report.get("verdict"), log=log)
    if path is not None:
        report["bundle"] = str(path)
