"""Post-run invariants: what "the cluster survived" actually means.

A chaos run passes only when the live cluster's observable behaviour is
indistinguishable from the failure-free simulation:

1. **Byte identity** — every consumer stream equals the simulated
   reference, element for element: same ``(seq, vt, payload)`` triples,
   same count (:func:`~repro.tools.verify_determinism
   .verify_trace_equivalence` with ``require_complete``).
2. **Exactly-once delivery** — each consumer's effective sequence
   numbers are exactly ``0..n-1``: no duplicate past the ack frontier,
   no gap.  (Suppressed duplicates are fine — they show up as
   ``stutter``, which is reported, not forbidden.)
3. **Incarnation convergence** — for every engine node, the
   coordinator's channel ends the run pointed at exactly one
   incarnation, hosted by the process the schedule predicts (the
   replica after an engine kill, the engine otherwise).  A ``None``
   expectation (e.g. a SIGSTOP/SIGCONT duel) only requires that *some*
   single incarnation won.
4. **Non-victim liveness** — on kill-only schedules, every sink whose
   upstream components avoid the victim's replication group must keep
   delivering during the failover window (kill tick → the victim
   group's first recovered output): group failover is group-local, not
   a cluster-wide stall.
5. **Audit stayed clean under faults** — every audit report collected
   from a cleanly shut-down child is internally consistent (heal mode:
   every divergence healed; raise mode: no divergence at all), and
   every *delivered* state corruption whose host survived the schedule
   is accounted for by at least one heal on that engine.  Faults the
   audit cannot see (delivery failed, process later killed) are
   excluded — the invariant judges the auditor, not the fault plane.

When the schedule is unsurvivable — :meth:`ChaosSchedule.lost_state
<repro.chaos.schedule.ChaosSchedule.lost_state>` names destroyed state —
an incomplete run is the *correct* outcome, reported as a structured
:class:`~repro.errors.UnrecoverableClusterError` rather than a pass, a
hang, or a stack trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import UnrecoverableClusterError
from repro.chaos.schedule import ChaosSchedule
from repro.net.topology import ClusterSpec, sink_upstream_engines
from repro.tools.verify_determinism import verify_trace_equivalence


def incarnation_host(incarnation: Optional[str]) -> Optional[str]:
    """The process name that minted an incarnation string.

    Incarnations are ``<process>:<uuid8>#<counter>``; both suffixes are
    stripped.  ``None`` (channel never connected) stays ``None``.
    """
    if not incarnation:
        return None
    peer = incarnation.split("#", 1)[0]
    return peer.rsplit(":", 1)[0]


def exactly_once_violations(streams: Dict[str, List[Tuple]]) -> List[str]:
    """Human-readable violations of contiguous 0..n-1 delivery."""
    violations: List[str] = []
    for sink, stream in sorted(streams.items()):
        seqs = [entry[0] for entry in stream]
        if seqs == list(range(len(seqs))):
            continue
        dups = sorted({s for s in seqs if seqs.count(s) > 1})
        if dups:
            violations.append(
                f"{sink}: duplicate seq(s) past ack frontier: {dups[:5]}"
            )
        expected = set(range(len(seqs)))
        gaps = sorted(expected - set(seqs))
        if gaps:
            violations.append(f"{sink}: gap(s) in delivery: {gaps[:5]}")
        if not dups and not gaps:
            violations.append(f"{sink}: out-of-order delivery: {seqs[:8]}")
    return violations


def convergence_violations(
    spec: ClusterSpec,
    schedule: ChaosSchedule,
    incarnations: Dict[str, Optional[str]],
    result: Optional[Dict] = None,
) -> List[str]:
    """Engines whose final incarnation is not where the schedule says.

    One lawful exception: when the stream finished *complete* on a host
    in the group's succession line that the schedule then killed, the
    kill must have landed after the last byte — no traffic remained to
    force the coordinator onto the next follower in line, so ending
    pointed at the (now dead) host is correct behaviour, not a failed
    promotion.
    """
    violations: List[str] = []
    expected_hosts = schedule.expected_hosts(spec)
    complete = bool((result or {}).get("complete"))
    for engine_id, expected in sorted(expected_hosts.items()):
        incarnation = incarnations.get(engine_id)
        host = incarnation_host(incarnation)
        if host is None:
            # The coordinator only dials engines its ingresses feed;
            # engines it never talked to are unobserved, not wrong —
            # byte identity already covers their output path.
            continue
        if expected is not None and host != expected:
            line = ([f"engine-{engine_id}"]
                    + list(spec.follower_processes(engine_id)))
            host_killed = any(e.kind == "kill" and e.target == host
                              for e in schedule.events)
            if complete and host in line and host_killed:
                continue
            violations.append(
                f"{engine_id}: converged on {host} "
                f"(incarnation {incarnation}), expected {expected}"
            )
    return violations


def liveness_violations(
    spec: ClusterSpec,
    schedule: ChaosSchedule,
    result: Dict,
    reference: Dict[str, List[Tuple]],
) -> List[str]:
    """Non-victim groups must keep delivering through each failover.

    For every engine kill the schedule lowers, the failover window runs
    from the kill tick to the first output of a sink depending on the
    victim group (its first recovered byte).  Each sink *independent* of
    the victim must deliver at least once inside the window, unless its
    stream was already complete before the kill.  Only enforced on
    kill-only schedules: partition/stop/latency windows legitimately
    stall innocent groups, which would turn this into a flake.
    """
    if not schedule.events or any(e.kind != "kill"
                                  for e in schedule.events):
        return []
    arrivals: Dict[str, List[int]] = result.get("arrival_ticks") or {}
    if not arrivals:
        return []
    ref_counts = {sink: len(stream) for sink, stream in reference.items()}
    upstream = sink_upstream_engines(spec)
    violations: List[str] = []
    for event in schedule.sim_events(spec):
        if event["kind"] != "kill":
            continue
        victim, kill_tick = event["node"], event["at_ticks"]
        victim_sinks = [s for s, deps in upstream.items() if victim in deps]
        others = [s for s, deps in upstream.items() if victim not in deps]
        if not others:
            continue
        end = min((t for sink in victim_sinks
                   for t in arrivals.get(sink, []) if t >= kill_tick),
                  default=None)
        if end is None:  # the victim group never recovered
            end = max((t for ts in arrivals.values() for t in ts),
                      default=kill_tick)
        for sink in sorted(others):
            ticks = arrivals.get(sink, [])
            if (len(ticks) >= ref_counts.get(sink, 0)
                    and all(t < kill_tick for t in ticks)):
                continue  # already complete before the kill
            if not any(kill_tick <= t <= end for t in ticks):
                violations.append(
                    f"{sink}: no delivery during {victim}'s failover "
                    f"window [{kill_tick}, {end}] ticks"
                )
    return violations


def audit_violations(
    spec: ClusterSpec,
    schedule: ChaosSchedule,
    result: Dict,
) -> List[str]:
    """Divergence-audit violations of one live run.

    ``result`` carries ``audit_reports`` (process name -> the AUDIT
    summary the child printed at clean shutdown) and, under
    ``chaos.corrupted``, the corrupt events the driver actually
    delivered.  Reports only exist for children that shut down cleanly,
    so a killed process simply contributes nothing — its corruption
    died with its state.
    """
    violations: List[str] = []
    reports = result.get("audit_reports") or {}
    for proc, report in sorted(reports.items()):
        mode = report.get("mode")
        divergences = int(report.get("divergences", 0))
        heals = int(report.get("heals", 0))
        if mode == "raise" and divergences:
            violations.append(
                f"{proc}: audit found {divergences} divergence(s) "
                f"in raise mode"
            )
        elif mode == "heal" and heals != divergences:
            violations.append(
                f"{proc}: audit healed only {heals}/{divergences} "
                f"divergence(s)"
            )

    delivered = (result.get("chaos") or {}).get("corrupted") or []
    if not delivered:
        return violations
    if not reports:
        violations.append(
            "state corruption delivered but no audit report collected "
            "(children crashed, or --audit is off)"
        )
        return violations
    by_engine = {report["engine"]: report
                 for report in reports.values() if "engine" in report}
    killed = {e.target for e in schedule.events if e.kind == "kill"}
    for entry in delivered:
        target = str(entry.get("target", ""))
        if target in killed:
            continue  # the corrupted state died with the process
        engine_id = target.split("-", 1)[-1]
        report = by_engine.get(engine_id)
        if report is None:
            violations.append(
                f"{engine_id}: state corrupted but no audit report "
                f"covers this engine"
            )
        elif (report.get("mode") == "heal"
              and int(report.get("heals", 0)) < 1):
            violations.append(
                f"{engine_id}: state corruption delivered but the "
                f"audit healed nothing"
            )
    return violations


def check_invariants(
    spec: ClusterSpec,
    schedule: ChaosSchedule,
    reference: Dict[str, List[Tuple]],
    result: Dict,
) -> Dict:
    """Judge one live run against the simulated reference.

    ``result`` is the dict returned by
    :func:`repro.net.cluster.run_networked` (with ``streams`` and
    ``incarnations`` still present).  Returns a verdict dict with
    ``ok``, per-invariant booleans, and a ``violations`` list; raises
    :class:`UnrecoverableClusterError` when the schedule destroyed
    state and the run (correctly) could not finish.
    """
    streams = result.get("streams", {})
    delivered = sum(len(s) for s in streams.values())
    expected = sum(len(s) for s in reference.values())

    lost = schedule.lost_state(spec)
    if lost is not None and delivered < expected:
        raise UnrecoverableClusterError(
            lost, schedule_seed=schedule.seed,
            delivered=delivered, expected=expected,
        )

    verdict = verify_trace_equivalence(
        reference, streams,
        trial=f"chaos-seed-{schedule.seed}", require_complete=True,
    )
    violations: List[str] = []
    if not verdict.deterministic:
        violations.append(verdict.summary())

    once = exactly_once_violations(streams)
    violations.extend(once)

    converge = convergence_violations(
        spec, schedule, result.get("incarnations", {}), result
    )
    violations.extend(converge)

    liveness = liveness_violations(spec, schedule, result, reference)
    violations.extend(liveness)

    audit = audit_violations(spec, schedule, result)
    violations.extend(audit)

    if result.get("error"):
        violations.append(f"run error: {result['error']}")

    return {
        "ok": not violations,
        "byte_identical": verdict.deterministic,
        "exactly_once": not once,
        "converged": not converge,
        "liveness": not liveness,
        "audit_clean": not audit,
        "delivered": delivered,
        "expected": expected,
        "lost_state": lost,
        "violations": violations,
    }
