"""Constant-time fan-in: the distributed (Figure 5) application.

"We ran an actual multi-engine implementation ... using a variation of
the application of Figure 1, but with constant-time services and ad-hoc
estimators.  The Sender components were on one engine, the Merger on a
second."  Requests play the role of the paper's "web requests".

Senders do fixed-cost work per request (e.g. parsing/session lookup) and
forward a record to the merger; the merger does fixed-cost work (e.g.
joining against its running state) and emits the response.  "Ad-hoc
estimators" are modelled by letting the declared estimate differ from
the true cost by a configurable error factor.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Type

from repro.core.component import Component, on_message
from repro.core.cost import CostModel
from repro.core.estimators import ConstantEstimator
from repro.runtime.app import Application
from repro.sim.kernel import us


def make_fanin_sender_class(service_time: int = us(200),
                            estimate_error: float = 1.0,
                            name: str = "FanInSender") -> Type[Component]:
    """Constant-cost sender; estimator = true cost x ``estimate_error``."""
    cost = CostModel(
        estimator=ConstantEstimator(int(round(service_time * estimate_error))),
        true_per_feature={},
        true_intercept=service_time,
        min_features={},
    )

    class _Sender(Component):
        """Fixed-cost request pre-processor."""

        def setup(self):
            self.handled = self.state.value("handled", 0)
            self.out = self.output_port("out")

        @on_message("request", cost=cost)
        def handle_request(self, payload):
            self.handled.set(self.handled.get() + 1)
            self.out.send({
                "request": payload["request"],
                "birth": payload["birth"],
                "hops": payload.get("hops", 0) + 1,
            })

    _Sender.__name__ = name
    _Sender.__qualname__ = name
    return _Sender


def make_fanin_merger_class(service_time: int = us(300),
                            estimate_error: float = 1.0,
                            name: str = "FanInMerger") -> Type[Component]:
    """Constant-cost merger; estimator = true cost x ``estimate_error``."""
    cost = CostModel(
        estimator=ConstantEstimator(int(round(service_time * estimate_error))),
        true_per_feature={},
        true_intercept=service_time,
        min_features={},
    )

    class _Merger(Component):
        """Fixed-cost response producer with running state."""

        def setup(self):
            self.merged = self.state.value("merged", 0)
            self.out = self.output_port("out")

        @on_message("input", cost=cost)
        def merge(self, payload):
            self.merged.set(self.merged.get() + 1)
            self.out.send({
                "response": self.merged.get(),
                "request": payload["request"],
                "birth": payload["birth"],
            })

    _Merger.__name__ = name
    _Merger.__qualname__ = name
    return _Merger


#: Default classes (exact estimators).
FanInSender = make_fanin_sender_class()
FanInMerger = make_fanin_merger_class()


def request_factory():
    """Payload factory producing numbered web requests."""

    def factory(rng: random.Random, index: int, now: int) -> Dict:
        return {"request": index, "birth": now}

    return factory


def build_fanin_app(
    n_senders: int = 2,
    sender_class: Optional[Type[Component]] = None,
    merger_class: Optional[Type[Component]] = None,
) -> Application:
    """N senders fanning into one merger; externals ``ext<i>``/``sink``."""
    sender_class = sender_class or FanInSender
    merger_class = merger_class or FanInMerger
    app = Application("fanin")
    for i in range(1, n_senders + 1):
        app.add_component(f"sender{i}", sender_class)
    app.add_component("merger", merger_class)
    for i in range(1, n_senders + 1):
        app.external_input(f"ext{i}", f"sender{i}", "request")
        app.wire(f"sender{i}", "out", "merger", "input")
    app.external_output("merger", "out", "sink")
    return app
