"""Two-way service calls: a client/directory application.

Exercises the paper's second interaction style — "bidirectional service
calls with response" — end to end: the Frontend receives external
requests, makes a blocking call to the Directory service (written with
the generator idiom, this reproduction's analogue of the transformed
blocking call), and forwards the resolved result.

    requests --> Frontend --(call)--> Directory
                     |
                     v
                    sink

The Directory holds the authoritative state (a registry built from the
requests themselves), so recovery of either side exercises call/reply
replay and dedup.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.component import Component, on_call, on_message
from repro.core.cost import SegmentedCost, fixed_cost
from repro.runtime.app import Application
from repro.sim.kernel import us


class Frontend(Component):
    """Receives requests, resolves them via a service call, responds."""

    def setup(self):
        self.served = self.state.value("served", 0)
        self.directory = self.service_port("directory")
        self.out = self.output_port("out")

    @on_message("request", cost=SegmentedCost(
        [fixed_cost(us(15)), fixed_cost(us(10))]))
    def handle(self, payload):
        # Segment 0: validate and issue the lookup.
        key = payload["key"]
        resolution = yield self.directory.call({"key": key})
        # Segment 1: combine and respond.
        self.served.set(self.served.get() + 1)
        self.out.send({
            "key": key,
            "resolved": resolution["value"],
            "hits": resolution["hits"],
            "served": self.served.get(),
            "birth": payload["birth"],
        })


class Directory(Component):
    """Stateful lookup service: registers keys on first sight."""

    def setup(self):
        self.table = self.state.map("table")

    @on_call("lookup", cost=fixed_cost(us(25)))
    def lookup(self, payload):
        key = payload["key"]
        entry = self.table.get(key)
        if entry is None:
            entry = {"value": f"val:{key}", "hits": 0}
        entry = dict(entry)
        entry["hits"] += 1
        self.table[key] = entry
        return {"value": entry["value"], "hits": entry["hits"]}


def request_factory(n_keys: int = 16):
    """Payload factory producing lookup requests over ``n_keys`` keys."""

    def factory(rng: random.Random, index: int, now: int) -> Dict:
        return {"key": f"k{rng.randrange(n_keys)}", "birth": now}

    return factory


def build_callgraph_app() -> Application:
    """Frontend calling Directory; externals ``requests``/``sink``."""
    app = Application("callgraph")
    app.add_component("frontend", Frontend)
    app.add_component("directory", Directory)
    app.external_input("requests", "frontend", "request")
    app.wire_call("frontend", "directory", "directory", "lookup")
    app.external_output("frontend", "out", "sink")
    return app
