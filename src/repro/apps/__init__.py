"""Component applications used by the evaluation and the examples.

* :mod:`~repro.apps.wordcount` — Code Body 1: word-counting senders
  fanning into a merger (the paper's Figure 1 application).
* :mod:`~repro.apps.fanin` — N constant-time senders into a merger (the
  distributed Figure 5 application).
* :mod:`~repro.apps.pipeline` — a stateful multi-stage stream pipeline.
* :mod:`~repro.apps.callgraph` — two-way service calls (client/server).
* :mod:`~repro.apps.streamjoin` — windowed keyed stream join, where the
  merge order is semantics, not just performance.
"""

from repro.apps.wordcount import (
    Merger,
    WordCountSender,
    build_wordcount_app,
    make_merger_class,
    make_sender_class,
    sentence_factory,
)
from repro.apps.fanin import FanInMerger, FanInSender, build_fanin_app
from repro.apps.pipeline import build_pipeline_app
from repro.apps.callgraph import build_callgraph_app
from repro.apps.streamjoin import build_streamjoin_app, make_join_class

__all__ = [
    "FanInMerger",
    "FanInSender",
    "Merger",
    "WordCountSender",
    "build_callgraph_app",
    "build_fanin_app",
    "build_pipeline_app",
    "build_streamjoin_app",
    "build_wordcount_app",
    "make_join_class",
    "make_merger_class",
    "make_sender_class",
    "sentence_factory",
]
