"""The paper's running example: word-count senders into a merger.

Figure 1 / Code Body 1: ``Sender[i]`` receives sentences from an external
client, maintains a per-word occurrence count, and sends the total prior
count of the sentence's words to ``Merger``; ``Merger`` aggregates and
delivers external output.

The per-iteration cost (the famous 61.827 µs of Eq. 2) and the estimator
in force are parameters, because the evaluation sweeps them: Figure 3
uses 60 µs true cost with a matching ("smart") estimator, the dumb-
estimator study replaces the estimator with a 600 µs constant, and
Figure 4 sweeps the estimator coefficient against a fixed measured-trace
truth.

Message payloads are dicts carrying a ``birth`` timestamp end to end so
consumers can measure end-to-end latency without any framework-level
tagging (components remain ordinary application code).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Type

from repro.core.component import Component, on_message
from repro.core.cost import CostModel, LinearCost, fixed_cost
from repro.core.estimators import ConstantEstimator, Estimator
from repro.runtime.app import Application
from repro.sim.distributions import UniformInt
from repro.sim.kernel import us

#: Default true cost per loop iteration (paper Figure 3: 60 µs).
DEFAULT_PER_ITERATION = us(60)
#: Default vocabulary for sentence generation.
_VOCABULARY = tuple(
    f"word{i:02d}" for i in range(64)
)


def sentence_features(payload: Dict) -> Dict[str, int]:
    """Feature vector of Code Body 1: the loop runs once per word."""
    return {"loop": len(payload["words"])}


def make_sender_class(
    per_iteration_true: int = DEFAULT_PER_ITERATION,
    estimator: Optional[Estimator] = None,
    name: str = "WordCountSender",
) -> Type[Component]:
    """Build a sender class with the given physical cost and estimator.

    ``estimator=None`` yields the "smart" estimator matching the true
    per-iteration cost; pass
    ``ConstantEstimator(...)`` for the paper's dumb estimator or a
    :class:`~repro.core.estimators.LinearEstimator` with a different
    coefficient for the Figure 4 sensitivity sweep.
    """
    if estimator is None:
        cost = LinearCost({"loop": per_iteration_true},
                          features=sentence_features)
    else:
        cost = CostModel(
            estimator=estimator,
            features=sentence_features,
            true_per_feature={"loop": per_iteration_true},
            min_features={"loop": 1},
        )

    class _Sender(Component):
        """Code Body 1, parameterised (see :func:`make_sender_class`)."""

        def setup(self):
            self.counts = self.state.map("counts")
            self.port1 = self.output_port("port1")

        @on_message("input", cost=cost)
        def process_sentence(self, payload):
            words = payload["words"]
            count = 0
            for word in words:
                word_count = self.counts.get(word)
                if word_count is None:
                    word_count = 0
                self.counts[word] = word_count + 1
                count += word_count
            self.port1.send({"count": count, "birth": payload["birth"],
                             "origin": payload.get("origin")})

    _Sender.__name__ = name
    _Sender.__qualname__ = name
    return _Sender


def make_merger_class(service_time: int = us(400),
                      name: str = "Merger") -> Type[Component]:
    """Build a merger class with fixed per-event service time.

    "The Merger component had a fixed processing time of 400 µs per
    event received" (paper III.A).
    """

    class _Merger(Component):
        """Aggregates sender counts and emits external output."""

        def setup(self):
            self.total = self.state.value("total", 0)
            self.events = self.state.value("events", 0)
            self.out = self.output_port("out")

        @on_message("input", cost=fixed_cost(service_time))
        def merge(self, payload):
            self.total.set(self.total.get() + payload["count"])
            self.events.set(self.events.get() + 1)
            self.out.send({
                "total": self.total.get(),
                "events": self.events.get(),
                "count": payload["count"],
                "birth": payload["birth"],
                "origin": payload.get("origin"),
            })

    _Merger.__name__ = name
    _Merger.__qualname__ = name
    return _Merger


#: Default classes (smart estimator, 60 µs/iteration; 400 µs merger).
WordCountSender = make_sender_class()
Merger = make_merger_class()


def sentence_factory(low: int = 1, high: int = 19,
                     vocabulary=_VOCABULARY, origin: Optional[str] = None):
    """Payload factory producing sentences of U(low, high) words.

    Matches the paper's workload: "random numbers of iterations between
    1 and 19".  The returned callable has the
    ``(rng, index, now) -> payload`` signature producers expect.
    """
    lengths = UniformInt(low, high)

    def factory(rng: random.Random, index: int, now: int) -> Dict:
        n = lengths.sample(rng)
        words = [vocabulary[rng.randrange(len(vocabulary))] for _ in range(n)]
        return {"words": words, "birth": now, "origin": origin, "n": index}

    return factory


def birth_of(payload) -> Optional[int]:
    """Extract the birth timestamp from an app payload (for consumers)."""
    if isinstance(payload, dict):
        return payload.get("birth")
    return None


def build_wordcount_app(
    n_senders: int = 2,
    sender_class: Optional[Type[Component]] = None,
    merger_class: Optional[Type[Component]] = None,
) -> Application:
    """The Figure 1 graph: n senders fanning into one merger.

    External inputs are named ``ext<i>``; the external output is
    ``sink``.
    """
    sender_class = sender_class or WordCountSender
    merger_class = merger_class or Merger
    app = Application("wordcount")
    for i in range(1, n_senders + 1):
        app.add_component(f"sender{i}", sender_class)
    app.add_component("merger", merger_class)
    for i in range(1, n_senders + 1):
        app.external_input(f"ext{i}", f"sender{i}", "input")
        app.wire(f"sender{i}", "port1", "merger", "input")
    app.external_output("merger", "out", "sink")
    return app
