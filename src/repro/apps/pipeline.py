"""A stateful multi-stage stream pipeline.

The paper motivates TART with "event processing, stream processing,
sensor networks, and business logic" middleware where "components keep
state in order to correlate events from different sources or to average
or aggregate events, or to look for trends".  This app is that shape:

    readings --> Parser --> Enricher --> Aggregator --> sink

* **Parser** validates raw sensor readings (cost linear in record size).
* **Enricher** joins each reading against a device table it builds up
  statefully (first sight of a device registers it).
* **Aggregator** keeps per-device running sums and emits a rolling
  report every ``window`` readings.

All three stages hold nontrivial state, so the pipeline is a good
end-to-end recovery workload: killing the middle engine exercises
checkpoint restore, upstream replay, and downstream duplicate discard at
the same time.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Type

from repro.core.component import Component, on_message
from repro.core.cost import LinearCost, fixed_cost
from repro.runtime.app import Application
from repro.sim.kernel import us


class Parser(Component):
    """Validates raw readings; cost is linear in the field count."""

    def setup(self):
        self.accepted = self.state.value("accepted", 0)
        self.rejected = self.state.value("rejected", 0)
        self.out = self.output_port("out")

    @on_message("input", cost=LinearCost(
        {"fields": us(5)},
        features=lambda p: {"fields": len(p.get("fields", ()))}))
    def parse(self, payload):
        fields = payload.get("fields", ())
        if not fields or any(v is None for v in fields):
            self.rejected.set(self.rejected.get() + 1)
            return
        self.accepted.set(self.accepted.get() + 1)
        self.out.send({
            "device": payload["device"],
            "value": sum(fields),
            "birth": payload["birth"],
        })


class Enricher(Component):
    """Joins readings against a stateful device registry."""

    def setup(self):
        self.devices = self.state.map("devices")
        self.out = self.output_port("out")

    @on_message("input", cost=fixed_cost(us(20)))
    def enrich(self, payload):
        device = payload["device"]
        info = self.devices.get(device)
        if info is None:
            info = {"first_seen": self.now(), "readings": 0}
        info = dict(info)
        info["readings"] += 1
        self.devices[device] = info
        enriched = dict(payload)
        enriched["reading_no"] = info["readings"]
        self.out.send(enriched)


def make_aggregator_class(window: int = 10,
                          name: str = "Aggregator") -> Type[Component]:
    """Aggregator emitting a rolling report every ``window`` readings."""

    class _Aggregator(Component):
        """Per-device running sums with windowed reports."""

        def setup(self):
            self.sums = self.state.map("sums")
            self.seen = self.state.value("seen", 0)
            self.last_birth = self.state.value("last_birth", 0)
            self.out = self.output_port("out")

        @on_message("input", cost=fixed_cost(us(30)))
        def aggregate(self, payload):
            device = payload["device"]
            self.sums[device] = self.sums.get(device, 0) + payload["value"]
            self.seen.set(self.seen.get() + 1)
            self.last_birth.set(payload["birth"])
            if self.seen.get() % window == 0:
                self.out.send({
                    "report_no": self.seen.get() // window,
                    "devices": len(self.sums),
                    "grand_total": sum(self.sums.values()),
                    "birth": payload["birth"],
                })

    _Aggregator.__name__ = name
    _Aggregator.__qualname__ = name
    return _Aggregator


Aggregator = make_aggregator_class()


def reading_factory(n_devices: int = 8, n_fields: int = 4):
    """Payload factory producing raw sensor readings."""

    def factory(rng: random.Random, index: int, now: int) -> Dict:
        return {
            "device": f"dev{rng.randrange(n_devices)}",
            "fields": tuple(rng.randrange(100) for _ in range(n_fields)),
            "birth": now,
        }

    return factory


def lane_suffix(lane: int) -> str:
    """Name suffix for lane ``lane`` (lane 0 keeps the legacy names)."""
    return "" if lane == 0 else str(lane)


def lane_key(name: str) -> str:
    """Consistent-hash group key: every stage of a lane hashes together.

    Strips the known stage/sink prefixes so ``parser2``, ``enricher2``,
    ``aggregator2``, ``readings2``, and ``sink2`` all map to ``lane:2``
    (and the legacy unsuffixed names to ``lane:0``).  Unknown names hash
    as themselves.
    """
    for prefix in ("parser", "enricher", "aggregator", "readings", "sink"):
        if name.startswith(prefix):
            rest = name[len(prefix):]
            if rest == "":
                return "lane:0"
            if rest.isdigit():
                return f"lane:{int(rest)}"
    return name


def build_pipeline_app(window: int = 10,
                       aggregator_class: Optional[Type[Component]] = None,
                       lanes: int = 1) -> Application:
    """``lanes`` parallel Parser -> Enricher -> Aggregator chains.

    Lane 0 keeps the original external ids (``readings``/``sink``) and
    component names; lane *i* uses ``readings<i>``/``sink<i>`` and
    ``parser<i>``/... .  Lanes share no wires, so placing each lane on
    one replication group makes shard failures lane-local: killing a
    group stalls only the lanes it hosts while the rest keep streaming.
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1 (got {lanes})")
    app = Application("pipeline")
    agg_cls = aggregator_class or make_aggregator_class(window)
    for lane in range(lanes):
        sfx = lane_suffix(lane)
        app.add_component(f"parser{sfx}", Parser)
        app.add_component(f"enricher{sfx}", Enricher)
        app.add_component(f"aggregator{sfx}", agg_cls)
        app.external_input(f"readings{sfx}", f"parser{sfx}", "input")
        app.wire(f"parser{sfx}", "out", f"enricher{sfx}", "input")
        app.wire(f"enricher{sfx}", "out", f"aggregator{sfx}", "input")
        app.external_output(f"aggregator{sfx}", "out", f"sink{sfx}")
    return app
