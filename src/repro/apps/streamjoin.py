"""Windowed stream join: where deterministic order is *semantics*.

Two event streams (orders and payments) are joined by key inside a
virtual-time window.  The join's result depends on the order in which
the two streams interleave: a payment arriving "before" its order (or
after the window expired) is flagged instead of matched.  Under
non-deterministic scheduling the flags differ run to run with jitter —
under TART they are a pure function of the logged inputs, which is what
makes the operator recoverable by replay.

This is the paper's introduction made concrete: "components keep state
in order to correlate events from different sources", and exactly such
correlation state is what checkpoint-replay must reconstruct bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.component import Component, on_message
from repro.core.cost import fixed_cost
from repro.runtime.app import Application
from repro.sim.kernel import ms, us


def make_join_class(window: int = ms(20), name: str = "WindowedJoin"):
    """A keyed two-stream join with a virtual-time matching window.

    * ``order`` events open a pending entry (key -> details, deadline =
      now + window).
    * ``payment`` events match an open entry (emitting a join) or are
      flagged ``unmatched`` if none is open.
    * Entries whose deadline passed when any later event is processed
      are flagged ``expired`` — expiry is measured in *virtual* time, so
      it replays identically.
    """

    class _Join(Component):
        def setup(self):
            self.pending = self.state.map("pending")
            self.stats = self.state.map("stats")
            self.out = self.output_port("out")

        def _expire(self, now_vt):
            for key in sorted(self.pending.keys()):
                entry = self.pending[key]
                if entry["deadline"] < now_vt:
                    del self.pending[key]
                    self._bump("expired")
                    self.out.send({"kind": "expired", "key": key,
                                   "birth": entry["birth"]})

        def _bump(self, stat):
            self.stats[stat] = self.stats.get(stat, 0) + 1

        @on_message("order", cost=fixed_cost(us(40)))
        def on_order(self, payload):
            now_vt = self.now()
            self._expire(now_vt)
            self.pending[payload["key"]] = {
                "amount": payload["amount"],
                "deadline": now_vt + window,
                "birth": payload["birth"],
            }
            self._bump("orders")

        @on_message("payment", cost=fixed_cost(us(40)))
        def on_payment(self, payload):
            now_vt = self.now()
            self._expire(now_vt)
            key = payload["key"]
            entry = self.pending.get(key)
            if entry is None:
                self._bump("unmatched")
                self.out.send({"kind": "unmatched", "key": key,
                               "birth": payload["birth"]})
                return
            del self.pending[key]
            self._bump("joined")
            self.out.send({
                "kind": "joined", "key": key,
                "amount": entry["amount"], "paid": payload["amount"],
                "birth": payload["birth"],
            })

    _Join.__name__ = name
    _Join.__qualname__ = name
    return _Join


def order_factory(n_keys: int = 40):
    """Orders with random keys/amounts."""

    def factory(rng: random.Random, index: int, now: int) -> Dict:
        return {"key": f"k{rng.randrange(n_keys)}",
                "amount": rng.randint(1, 500), "birth": now}

    return factory


def payment_factory(n_keys: int = 40):
    """Payments over the same key space (some will never match)."""

    def factory(rng: random.Random, index: int, now: int) -> Dict:
        return {"key": f"k{rng.randrange(n_keys)}",
                "amount": rng.randint(1, 500), "birth": now}

    return factory


def build_streamjoin_app(window: int = ms(20)) -> Application:
    """orders + payments -> WindowedJoin -> sink."""
    app = Application("streamjoin")
    app.add_component("join", make_join_class(window))
    app.external_input("orders", "join", "order")
    app.external_input("payments", "join", "payment")
    app.external_output("join", "out", "sink")
    return app
