"""Adaptive checkpoint cadence under a recovery-time objective.

The paper fixes the checkpoint period as a configuration constant and
leaves recovery time implicit: after a failover, the promoted replica
replays the external log from the last *stable* checkpoint, so the
replay span — and hence recovery time — is bounded only by however much
log accumulated since that checkpoint.  A static interval therefore
gives no recovery-time guarantee when load (log growth) or replay
throughput changes.

:class:`CadenceController` closes that loop.  The operator states a
:class:`RecoveryTarget` — a bound on the worst-case replay span in
virtual-time ticks, in wall-clock milliseconds, or both — and the
controller schedules the *next* checkpoint so the worst case stays
under target:

``worst-case replay span  =  interval + ack lag + detection time``

* ``interval`` is what the controller chooses (the knob);
* ``ack lag`` is how long a captured checkpoint takes to become stable
  (ship + replica ack round trip), measured from real acks — a captured
  but unacknowledged checkpoint does not shorten replay;
* ``detection time`` is the heartbeat timeout
  (``heartbeat_interval * miss_limit``), fixed by configuration.

Wall-clock budgets are converted to ticks through an EWMA of the
observed replay rate (ticks of log replayed per wall millisecond), fed
by real failovers and by divergence-audit rebuilds; until the first
observation a configurable prior is used.  Log growth (messages per
tick) and capture cost are tracked the same way and exported — they do
not change the tick arithmetic but they make the predicted replay
*work* visible (``cadence.predicted_replay_msgs``).

The controller applies hysteresis (small corrections are ignored so the
interval does not flap) and clamps the result to a min/max band.  All
control-loop state is exported as ``cadence.*`` gauges through
:class:`~repro.runtime.metrics.MetricSet`.  Crucially the controller
reads only *wall-clock* measurements and writes only the checkpoint
timer — never message timestamps — so adaptation cannot perturb
deterministic replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RecoveryError
from repro.vt.time import TICKS_PER_MS


@dataclass(frozen=True)
class RecoveryTarget:
    """Operator-facing recovery-time objective.

    At least one of ``max_replay_ticks`` (virtual-time budget) and
    ``max_recovery_wall_ms`` (wall-clock budget) must be set; when both
    are, the tighter one governs.
    """

    #: Worst-case replay span in virtual-time ticks (None = no vt bound).
    max_replay_ticks: Optional[int] = None
    #: Worst-case recovery wall time in milliseconds (None = no bound).
    max_recovery_wall_ms: Optional[float] = None
    #: Interval clamp; defaults (None) derive a band from the base
    #: interval: [base / 8, base * 8].
    min_interval: Optional[int] = None
    max_interval: Optional[int] = None
    #: Relative change below which the current interval is kept.
    hysteresis: float = 0.2

    def __post_init__(self):
        if self.max_replay_ticks is None and self.max_recovery_wall_ms is None:
            raise RecoveryError(
                "RecoveryTarget needs max_replay_ticks and/or "
                "max_recovery_wall_ms"
            )
        if self.max_replay_ticks is not None and self.max_replay_ticks <= 0:
            raise RecoveryError("max_replay_ticks must be positive")
        if (self.max_recovery_wall_ms is not None
                and self.max_recovery_wall_ms <= 0):
            raise RecoveryError("max_recovery_wall_ms must be positive")
        if not (0.0 <= self.hysteresis < 1.0):
            raise RecoveryError("hysteresis must be in [0, 1)")
        for name in ("min_interval", "max_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise RecoveryError(f"{name} must be positive")


class _Ewma:
    """Exponentially weighted mean with an optional prior."""

    def __init__(self, alpha: float, prior: Optional[float] = None):
        self.alpha = alpha
        self.value = prior
        self.samples = 0

    def observe(self, x: float) -> float:
        if self.value is None or self.samples == 0:
            self.value = float(x)
        else:
            self.value += self.alpha * (float(x) - self.value)
        self.samples += 1
        return self.value


class CadenceController:
    """Chooses the next checkpoint interval to meet a recovery target."""

    def __init__(
        self,
        target: RecoveryTarget,
        base_interval: int,
        detect_ticks: int = 0,
        metrics=None,
        replay_rate_prior_ticks_per_ms: float = float(TICKS_PER_MS),
        alpha: float = 0.3,
    ):
        if base_interval <= 0:
            raise RecoveryError("base_interval must be positive")
        if detect_ticks < 0:
            raise RecoveryError("detect_ticks must be >= 0")
        self.target = target
        self.base_interval = int(base_interval)
        self.detect_ticks = int(detect_ticks)
        self.metrics = metrics
        self.min_interval = target.min_interval or max(1, base_interval // 8)
        self.max_interval = target.max_interval or base_interval * 8
        if self.min_interval > self.max_interval:
            raise RecoveryError("min_interval exceeds max_interval")
        self._interval = self._clamp(base_interval)
        self.adjustments = 0
        # Measured signals (EWMAs).
        self._growth_msgs_per_tick = _Ewma(alpha)
        self._capture_us = _Ewma(alpha)
        self._ack_lag_ticks = _Ewma(alpha, prior=0.0)
        self._replay_ticks_per_ms = _Ewma(
            alpha, prior=float(replay_rate_prior_ticks_per_ms))
        self._export()

    # -- observations ----------------------------------------------------
    def observe_checkpoint(self, span_ticks: int, messages: int,
                           capture_us: float, blob_bytes: int) -> None:
        """Feed one capture: log growth over the span and capture cost."""
        if span_ticks > 0:
            self._growth_msgs_per_tick.observe(messages / span_ticks)
        self._capture_us.observe(capture_us)
        if self.metrics is not None:
            self.metrics.gauge("cadence.capture_us", self._capture_us.value)
            self.metrics.gauge("cadence.checkpoint_bytes", float(blob_bytes))

    def observe_ack(self, lag_ticks: int) -> None:
        """Feed one checkpoint-stable ack: capture-to-stable lag."""
        self._ack_lag_ticks.observe(max(0, lag_ticks))

    def observe_replay(self, span_ticks: int, wall_ms: float) -> None:
        """Feed one replay-path measurement (failover or audit rebuild)."""
        if span_ticks <= 0 or wall_ms <= 0:
            return
        self._replay_ticks_per_ms.observe(span_ticks / wall_ms)
        if self.metrics is not None:
            self.metrics.count("cadence.replay_observations")

    def observe_failover(self, downtime_ticks: int) -> None:
        """Record a real failover's downtime (visibility only)."""
        if self.metrics is not None:
            self.metrics.count("cadence.failovers_observed")
            self.metrics.gauge("cadence.last_failover_downtime_ticks",
                               float(downtime_ticks))

    # -- control ---------------------------------------------------------
    @property
    def interval(self) -> int:
        """The currently scheduled checkpoint interval in ticks."""
        return self._interval

    def next_interval(self) -> int:
        """Recompute the interval from the current estimates."""
        budget = self._budget_ticks()
        # Fixed overheads eat into the budget; the interval gets the rest.
        overhead = self.detect_ticks + (self._ack_lag_ticks.value or 0.0)
        desired = int(budget - overhead)
        desired = self._clamp(desired)
        if self._interval > 0:
            rel = abs(desired - self._interval) / self._interval
            if rel >= self.target.hysteresis:
                self._interval = desired
                self.adjustments += 1
                if self.metrics is not None:
                    self.metrics.count("cadence.adjustments")
        else:  # pragma: no cover - interval is always clamped positive
            self._interval = desired
        self._export()
        return self._interval

    def _budget_ticks(self) -> float:
        """The governing replay budget expressed in ticks."""
        budgets = []
        if self.target.max_replay_ticks is not None:
            budgets.append(float(self.target.max_replay_ticks))
        if self.target.max_recovery_wall_ms is not None:
            rate = self._replay_ticks_per_ms.value
            budgets.append(self.target.max_recovery_wall_ms * rate)
        return min(budgets)

    def _clamp(self, interval: int) -> int:
        return max(self.min_interval, min(self.max_interval, interval))

    def predicted_replay_ticks(self) -> float:
        """Worst-case replay span implied by the current interval."""
        return (self._interval + self.detect_ticks
                + (self._ack_lag_ticks.value or 0.0))

    def _export(self) -> None:
        if self.metrics is None:
            return
        g = self.metrics.gauge
        g("cadence.interval_ticks", float(self._interval))
        g("cadence.budget_ticks", self._budget_ticks())
        g("cadence.detect_ticks", float(self.detect_ticks))
        g("cadence.ack_lag_ticks", self._ack_lag_ticks.value or 0.0)
        g("cadence.predicted_replay_ticks", self.predicted_replay_ticks())
        g("cadence.replay_rate_ticks_per_ms", self._replay_ticks_per_ms.value)
        growth = self._growth_msgs_per_tick.value
        if growth is not None:
            g("cadence.growth_msgs_per_tick", growth)
            g("cadence.predicted_replay_msgs",
              growth * self.predicted_replay_ticks())
