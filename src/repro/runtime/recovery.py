"""Failover orchestration (paper II.F.3-4).

"If an engine fails, its passive backup becomes active.  The checkpoint
is restored, and connections are made to sending engines.  The checkpoint
is likely to be in the past, but then the sending engine will be asked to
replay messages."

:class:`RecoveryManager` sequences that: when the failure injector (or a
detector) reports an engine dead, the manager waits the detection delay,
promotes the replica via :meth:`Deployment.rebuild_engine`, and records
recovery-time metrics.  The heavy lifting — materializing the checkpoint
chain, re-instantiating components, replaying determinism faults,
requesting per-wire replay — lives in the deployment/engine/runtime
layers; this class owns the *protocol sequencing* and the bookkeeping
experiments read (failover count, recovery latency).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FailoverInProgressError, RecoveryError
from repro.sim.kernel import ms


class RecoveryManager:
    """Promotes passive replicas of failed engines."""

    def __init__(self, deployment):
        self.deployment = deployment
        #: Completed failovers: engine_id -> list of (failed_at, active_at).
        self.history: Dict[str, List[tuple]] = {}
        self._in_progress: Dict[str, int] = {}

    def engine_failed(self, engine_id: str,
                      detection_delay: int = ms(1)) -> None:
        """React to a fail-stop: schedule replica promotion.

        ``detection_delay`` models the time for the failure to be
        noticed (heartbeat timeout); during it, arriving traffic for the
        dead engine is dropped and external inputs accumulate in their
        stable logs.

        A second report for an engine already failing over (the detector
        and the injector can race to declare the same death) raises a
        structured :class:`~repro.errors.FailoverInProgressError`
        carrying the engine id and the in-progress timestamp, so callers
        can recognise the benign duplicate and drop it.
        """
        if engine_id not in self.deployment.engines:
            raise RecoveryError(f"unknown engine {engine_id!r}")
        if engine_id in self._in_progress:
            raise FailoverInProgressError(engine_id,
                                          self._in_progress[engine_id])
        # Fencing: whatever declared the engine failed (injector or
        # heartbeat timeout), make sure the old incarnation is actually
        # silenced before a successor is built — a false-positive
        # detection must not leave two live engines with one identity.
        old = self.deployment.engines[engine_id]
        if old.alive:
            old.halt()
            self.deployment.network.fail_node(engine_id)
        failed_at = self.deployment.sim.now
        self._in_progress[engine_id] = failed_at
        self.deployment.metrics.count("engine_failures")
        self.deployment.sim.after(
            detection_delay,
            lambda: self._activate(engine_id),
            f"failover:{engine_id}",
        )

    def _activate(self, engine_id: str) -> None:
        failed_at = self._in_progress.pop(engine_id)
        self.deployment.rebuild_engine(engine_id)
        active_at = self.deployment.sim.now
        self.history.setdefault(engine_id, []).append((failed_at, active_at))
        self.deployment.metrics.count("failovers_completed")
        self.deployment.metrics.add("failover_downtime_ticks",
                                    active_at - failed_at)
        # Close the cadence loop: the promoted engine's controller learns
        # what a real failover cost, so its interval choice reflects
        # observed (not assumed) recovery behaviour.
        successor = self.deployment.engines[engine_id]
        if successor.cadence is not None:
            successor.cadence.observe_failover(active_at - failed_at)

    def in_progress(self, engine_id: str) -> bool:
        """Whether a failover for this engine is currently underway."""
        return engine_id in self._in_progress

    def failover_count(self, engine_id: Optional[str] = None) -> int:
        """Completed failovers, optionally for one engine."""
        if engine_id is not None:
            return len(self.history.get(engine_id, []))
        return sum(len(v) for v in self.history.values())
