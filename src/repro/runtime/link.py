"""Physical links and the reliability protocol above them.

The paper assumes "All communication in our model is guaranteed to be
reliable, FIFO, and fair", while the *failure model* includes "link
failures (causing loss, re-ordering, or duplication of messages sent over
physical links)".  Those two statements are reconciled the usual way: an
unreliable physical link under a sequence-number/ack/retransmit protocol.
This module builds both layers from scratch:

* :class:`RawLink` — delivers frames after a sampled delay, dropping,
  duplicating, and reordering them per configured probabilities.
* :class:`ReliableChannel` — a unidirectional reliable-FIFO channel over
  two raw links (data + acks): cumulative acks, periodic retransmission,
  receive-side reorder buffer, exactly-once in-order delivery within an
  epoch.  Engine crashes reset the channel to a new epoch (the channel's
  state is volatile); recovery above the channel is TART's replay.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.errors import TransportError
from repro.sim.distributions import Constant, Distribution
from repro.sim.kernel import Simulator, us


class LinkFault:
    """Mutable fault-injection knobs for one raw link."""

    def __init__(self, loss_prob: float = 0.0, dup_prob: float = 0.0,
                 reorder_extra: Optional[Distribution] = None):
        self.loss_prob = float(loss_prob)
        self.dup_prob = float(dup_prob)
        self.reorder_extra = reorder_extra
        #: While True, every frame is dropped (a link outage).
        self.down = False


class RawLink:
    """An unreliable, delaying physical link.

    ``serialize_ticks`` models finite bandwidth: each frame occupies the
    link for that long before its propagation delay starts, so bursts
    queue behind each other and experienced delay grows with load —
    the physical effect the paper's load-correlated delay estimators
    (II.G.1) are meant to predict.  Zero (the default) means infinite
    bandwidth.
    """

    def __init__(self, sim: Simulator, rng: random.Random, name: str,
                 delay: Distribution, fault: Optional[LinkFault] = None,
                 serialize_ticks: int = 0):
        self.sim = sim
        self.rng = rng
        self.name = name
        self.delay = delay
        self.fault = fault or LinkFault()
        self.serialize_ticks = int(serialize_ticks)
        self._free_at = 0
        #: Diagnostics.
        self.frames_sent = 0
        self.frames_dropped = 0
        self.frames_duplicated = 0

    def transmit(self, frame: Any, deliver: Callable[[Any], None]) -> int:
        """Send one frame; ``deliver`` fires 0, 1, or 2 times later.

        Returns the local serialization-queue wait in ticks — the part
        of the latency the *sender's own NIC* can observe, which the
        reliability layer uses to avoid retransmitting frames that are
        still sitting in its own queue.  Loss happens "on the wire", so
        dropped frames still pay (and report) their queue wait.
        """
        self.frames_sent += 1
        queue_wait = 0
        if self.serialize_ticks:
            start = max(self.sim.now, self._free_at)
            self._free_at = start + self.serialize_ticks
            queue_wait = self._free_at - self.sim.now
        if self.fault.down or self.rng.random() < self.fault.loss_prob:
            self.frames_dropped += 1
            return queue_wait
        copies = 1
        if self.rng.random() < self.fault.dup_prob:
            copies = 2
            self.frames_duplicated += 1
        for _ in range(copies):
            delay = queue_wait + self.delay.sample(self.rng)
            if self.fault.reorder_extra is not None:
                delay += self.fault.reorder_extra.sample(self.rng)
            self.sim.after(delay, lambda f=frame: deliver(f), f"link:{self.name}")
        return queue_wait


class ReliableChannel:
    """Reliable FIFO unidirectional channel over raw links.

    ``deliver`` receives application items exactly once, in send order,
    within the current epoch.  :meth:`reset` starts a new epoch (used
    when either endpoint engine fails): unacked data is discarded and
    stale frames from the old epoch are ignored on arrival.
    """

    def __init__(self, sim: Simulator, rng: random.Random, name: str,
                 deliver: Callable[[Any], None],
                 delay: Optional[Distribution] = None,
                 fault: Optional[LinkFault] = None,
                 rto: Optional[int] = None,
                 serialize_ticks: int = 0):
        delay = delay if delay is not None else Constant(0)
        self.sim = sim
        self.name = name
        self._deliver = deliver
        self.data_link = RawLink(sim, rng, f"{name}:data", delay, fault,
                                 serialize_ticks=serialize_ticks)
        self.ack_link = RawLink(sim, rng, f"{name}:ack", delay, fault)
        base = max(1, int(delay.mean()))
        self.rto = int(rto) if rto is not None else max(us(50), 4 * base)

        self._epoch = 0
        # Sender state.
        self._send_seq = 0
        self._unacked: Dict[int, Any] = {}
        # RTT estimation (Jacobson smoothing, Karn's rule: retransmitted
        # frames give no samples).  Queueing on a serialized link inflates
        # the measured RTT and with it the timeout, so congestion damps
        # retransmission instead of feeding it.
        self._srtt: Optional[float] = None
        self._tx_meta: Dict[int, tuple] = {}  # seq -> (last_tx, retransmitted)
        # Fast retransmit: repeated acks for the same prefix mean the
        # next frame was lost while later ones arrived.
        self._last_ack_value = -1
        self._dup_acks = 0
        #: Retransmission backoff cap, as a multiple of the base timeout.
        self.max_backoff = 32
        # Receiver state.
        self._recv_expected = 0
        self._recv_buffer: Dict[int, Any] = {}
        #: Diagnostics.
        self.retransmissions = 0
        self.delivered = 0

    # -- sender side -----------------------------------------------------
    def send(self, item: Any) -> None:
        """Queue one item for reliable in-order delivery."""
        seq = self._send_seq
        self._send_seq += 1
        self._unacked[seq] = item
        self._transmit_frame(seq, attempt=1, first=True)

    def _effective_rto(self) -> int:
        if self._srtt is None:
            return self.rto
        return max(self.rto, int(2.0 * self._srtt))

    def _transmit_frame(self, seq: int, attempt: int, first: bool) -> None:
        """(Re)send one frame and arm its per-frame retransmit timer.

        The timer accounts for the frame's own serialization-queue wait
        (known locally) plus the adaptive round-trip timeout, backed off
        exponentially per attempt — so a congested or dead link sees a
        geometrically thinning trickle, never a flood.
        """
        if not first:
            self.retransmissions += 1
        item = self._unacked[seq]
        frame = ("data", self._epoch, seq, item)
        queue_wait = self.data_link.transmit(frame, self._on_frame)
        _prev = self._tx_meta.get(seq)
        token = (_prev[2] + 1) if _prev else 0
        self._tx_meta[seq] = (self.sim.now, not first, token)
        backoff = min(self._effective_rto() * (2 ** (attempt - 1)),
                      self.max_backoff * self.rto)
        epoch = self._epoch

        def _check() -> None:
            if epoch != self._epoch or seq not in self._unacked:
                return
            meta = self._tx_meta.get(seq)
            if meta is None or meta[2] != token:
                return  # a newer transmission owns the timer now
            self._transmit_frame(seq, attempt + 1, first=False)

        self.sim.after(queue_wait + backoff, _check,
                       f"retx:{self.name}:{seq}")

    # -- receiver side ---------------------------------------------------
    def _on_frame(self, frame) -> None:
        kind, epoch, seq, item = frame
        if epoch != self._epoch:
            return  # stale frame from before a reset
        if kind == "ack":
            self._on_ack(seq)
            return
        if kind != "data":  # pragma: no cover - defensive
            raise TransportError(f"unknown frame kind {kind!r}")
        # Cumulative ack of the highest in-order seq received so far.
        if seq < self._recv_expected:
            self._send_ack()
            return
        self._recv_buffer[seq] = item
        while self._recv_expected in self._recv_buffer:
            ready = self._recv_buffer.pop(self._recv_expected)
            self._recv_expected += 1
            self.delivered += 1
            self._deliver(ready)
        self._send_ack()

    def _send_ack(self) -> None:
        frame = ("ack", self._epoch, self._recv_expected, None)
        self.ack_link.transmit(frame, self._on_frame)

    def _on_ack(self, next_expected: int) -> None:
        acked = [s for s in self._unacked if s < next_expected]
        for seq in acked:
            del self._unacked[seq]
            last_tx, retransmitted, _token = self._tx_meta.pop(
                seq, (None, True, 0))
            if not retransmitted and last_tx is not None:
                # Karn's rule: only unambiguous samples train the RTT.
                sample = float(self.sim.now - last_tx)
                if self._srtt is None:
                    self._srtt = sample
                else:
                    self._srtt = 0.875 * self._srtt + 0.125 * sample
        # Fast retransmit: three acks for the same prefix while the next
        # frame is outstanding mean it was lost (later frames arrived).
        if next_expected == self._last_ack_value:
            self._dup_acks += 1
            if self._dup_acks >= 3 and next_expected in self._unacked:
                self._dup_acks = 0
                self._transmit_frame(next_expected, attempt=1, first=False)
        else:
            self._last_ack_value = next_expected
            self._dup_acks = 0

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        """Start a new epoch, discarding all channel state.

        Called when either endpoint fails: in-flight and unacked frames
        are lost (they belong to the dead epoch), exactly the loss that
        TART's replay protocol recovers from.
        """
        self._epoch += 1
        self._send_seq = 0
        self._unacked.clear()
        self._tx_meta.clear()
        self._recv_expected = 0
        self._recv_buffer.clear()
        self._srtt = None
        self._last_ack_value = -1
        self._dup_acks = 0

    @property
    def in_flight(self) -> int:
        """Number of unacknowledged items (diagnostic)."""
        return len(self._unacked)
