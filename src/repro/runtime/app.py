"""Application graphs and deployment.

:class:`Application` declares what exists — components, wires, external
inputs/outputs — with no affinity to machines ("components of an
application originally have no affinity to any particular execution
engine").  :class:`Deployment` performs the paper's deployment step
(II.C): placement, transformation (runtime wrapping + estimators via the
component cost models), wiring, and backup association; it owns the
simulator, network, engines, ingresses, consumers, replicas, fault logs,
and the recovery manager.

A minimal Figure-1-style deployment::

    app = Application("fig1")
    app.add_component("sender1", Sender)
    app.add_component("sender2", Sender)
    app.add_component("merger", Merger)
    app.external_input("ext1", "sender1", "input")
    app.external_input("ext2", "sender2", "input")
    app.wire("sender1", "port1", "merger", "input")
    app.wire("sender2", "port1", "merger", "input")
    app.external_output("merger", "out", "sink")

    dep = Deployment(app, single_engine_placement(app.component_names()))
    dep.add_poisson_producer("ext1", payloads, mean_interarrival=ms(1))
    dep.start()
    dep.run(until=seconds(10))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.core.component import Component
from repro.core.determinism_fault import ListFaultLog
from repro.core.estimators import CommDelayEstimator
from repro.core.ports import WireSpec
from repro.errors import WiringError
from repro.runtime.engine import EngineConfig, ExecutionEngine
from repro.runtime.external import ExternalConsumer, ExternalIngress, PoissonProducer
from repro.runtime.metrics import MetricSet
from repro.runtime.placement import Placement, follower_node_id
from repro.runtime.recovery import RecoveryManager
from repro.runtime.replica import PassiveReplica
from repro.runtime.transport import LinkParams, Network
from repro.sim.distributions import Distribution
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class _WireDecl:
    kind: str  # "data" | "call" | "ext_in" | "ext_out"
    src: Optional[str]
    src_port: Optional[str]
    dst: Optional[str]
    dst_input: Optional[str]
    delay_estimate: Optional[int] = None
    reply_delay_estimate: Optional[int] = None
    external_id: Optional[str] = None
    #: Full estimator object; overrides delay_estimate when set (used
    #: for load-correlated delay estimation).
    delay_estimator: Optional[CommDelayEstimator] = None


class Application:
    """A declared (but not yet deployed) component network."""

    def __init__(self, name: str):
        self.name = name
        self._components: Dict[str, Type[Component]] = {}
        self._wires: List[_WireDecl] = []
        self._external_inputs: Dict[str, _WireDecl] = {}
        self._external_outputs: Dict[str, _WireDecl] = {}

    # -- declaration API ---------------------------------------------------
    def add_component(self, name: str, cls: Type[Component]) -> None:
        """Declare a component instance of class ``cls``."""
        if name in self._components:
            raise WiringError(f"duplicate component {name!r}")
        if not (isinstance(cls, type) and issubclass(cls, Component)):
            raise WiringError(f"{name!r}: not a Component subclass: {cls!r}")
        self._components[name] = cls

    def wire(self, src: str, src_port: str, dst: str, dst_input: str,
             delay_estimate: Optional[int] = None,
             delay_estimator: Optional[CommDelayEstimator] = None) -> None:
        """Declare a one-way data wire.

        ``delay_estimate`` sets a constant expected-delay estimator in
        ticks; ``delay_estimator`` installs a custom estimator object
        (e.g. :class:`~repro.core.estimators.QueueCorrelatedDelayEstimator`).
        """
        self._check(src), self._check(dst)
        self._wires.append(_WireDecl("data", src, src_port, dst, dst_input,
                                     delay_estimate,
                                     delay_estimator=delay_estimator))

    def wire_call(self, src: str, src_port: str, dst: str, dst_input: str,
                  delay_estimate: Optional[int] = None,
                  reply_delay_estimate: Optional[int] = None) -> None:
        """Declare a two-way service-call wire (a reply wire is implied)."""
        self._check(src), self._check(dst)
        self._wires.append(_WireDecl("call", src, src_port, dst, dst_input,
                                     delay_estimate, reply_delay_estimate))

    def external_input(self, input_id: str, dst: str, dst_input: str) -> None:
        """Declare an external producer feeding ``dst.dst_input``."""
        self._check(dst)
        if input_id in self._external_inputs:
            raise WiringError(f"duplicate external input {input_id!r}")
        decl = _WireDecl("ext_in", None, None, dst, dst_input,
                         external_id=input_id)
        self._external_inputs[input_id] = decl
        self._wires.append(decl)

    def external_output(self, src: str, src_port: str, consumer_id: str) -> None:
        """Declare an external consumer fed by ``src.src_port``."""
        self._check(src)
        if consumer_id in self._external_outputs:
            raise WiringError(f"duplicate external output {consumer_id!r}")
        decl = _WireDecl("ext_out", src, src_port, None, None,
                         external_id=consumer_id)
        self._external_outputs[consumer_id] = decl
        self._wires.append(decl)

    def component_names(self) -> List[str]:
        """Declared component names, in declaration order."""
        return list(self._components)

    def external_output_sources(self) -> Dict[str, str]:
        """External output id -> source component, in declaration order."""
        return {cid: decl.src for cid, decl in self._external_outputs.items()}

    def external_input_targets(self) -> Dict[str, str]:
        """External input id -> destination component, declaration order."""
        return {iid: decl.dst for iid, decl in self._external_inputs.items()}

    def component_class(self, name: str) -> Type[Component]:
        """Class of one declared component."""
        return self._components[name]

    def _check(self, name: str) -> None:
        if name not in self._components:
            raise WiringError(f"unknown component {name!r}")


class WireRouter:
    """Global wire table: spec plus (src_node, dst_node) per wire id."""

    def __init__(self):
        self._specs: Dict[int, WireSpec] = {}
        self._endpoints: Dict[int, Tuple[str, str]] = {}

    def add(self, spec: WireSpec, src_node: str, dst_node: str) -> None:
        """Register one wire."""
        if spec.wire_id in self._specs:
            raise WiringError(f"duplicate wire id {spec.wire_id}")
        self._specs[spec.wire_id] = spec
        self._endpoints[spec.wire_id] = (src_node, dst_node)

    def spec(self, wire_id: int) -> WireSpec:
        """The spec of one wire."""
        return self._specs[wire_id]

    def endpoint(self, wire_id: int, toward_src: bool) -> str:
        """Node id at one end of a wire."""
        src, dst = self._endpoints[wire_id]
        return src if toward_src else dst

    def wire_ids(self) -> List[int]:
        """All registered wire ids, sorted."""
        return sorted(self._specs)


class Deployment:
    """A deployed application: engines, network, replicas, recovery."""

    def __init__(
        self,
        app: Application,
        placement: Placement,
        engine_config: Optional[EngineConfig] = None,
        engine_configs: Optional[Dict[str, EngineConfig]] = None,
        sim: Optional[Simulator] = None,
        master_seed: int = 0,
        default_link: Optional[LinkParams] = None,
        links: Optional[Dict[Tuple[str, str], LinkParams]] = None,
        local_delay: int = 0,
        control_delay: int = 0,
        birth_of: Optional[Callable[[Any], Optional[int]]] = None,
        cost_overrides: Optional[Dict[Tuple[str, str], Any]] = None,
        log_latency: int = 0,
        followers: int = 1,
    ):
        placement.validate_components(app.component_names())
        if followers < 1:
            raise WiringError(f"followers must be >= 1, got {followers}")
        self.app = app
        self.placement = placement
        #: Passive followers per replication group, in promotion order.
        self.followers_per_group = int(followers)
        self.sim = sim or Simulator()
        self.rng = RngRegistry(master_seed)
        self.metrics = MetricSet()
        self.birth_of = birth_of
        self.log_latency = log_latency
        self._default_config = engine_config or EngineConfig()
        self._engine_configs = dict(engine_configs or {})
        self._cost_overrides = dict(cost_overrides or {})

        self.network = Network(self.sim, self.rng, default_link,
                               local_delay=local_delay,
                               control_delay=control_delay)
        if links:
            for (src, dst), params in links.items():
                self.network.set_link(src, dst, params)

        self.router = WireRouter()
        self.engines: Dict[str, ExecutionEngine] = {}
        #: engine id -> rank-0 follower (the legacy single-replica view).
        self.replicas: Dict[str, PassiveReplica] = {}
        #: engine id -> all followers of its group, in rank order.
        self.followers: Dict[str, List[PassiveReplica]] = {}
        self.fault_logs: Dict[str, ListFaultLog] = {}
        self.ingresses: Dict[str, ExternalIngress] = {}
        self.consumers: Dict[str, ExternalConsumer] = {}
        self.producers: List[PoissonProducer] = []
        self.detectors: Dict[str, Any] = {}
        self.recovery = RecoveryManager(self)

        self._specs_built = False
        self._started = False
        self._build()

    # -- construction -------------------------------------------------------
    def _config_for(self, engine_id: str) -> EngineConfig:
        base = self._engine_configs.get(engine_id, self._default_config)
        ids = tuple(follower_node_id(engine_id, rank)
                    for rank in range(self.followers_per_group))
        return dataclasses.replace(base, replica_id=ids[0], replica_ids=ids)

    def _build(self) -> None:
        # Replicas and fault logs exist outside the engines (stable side).
        for engine_id in self.placement.engines():
            group: List[PassiveReplica] = []
            for rank in range(self.followers_per_group):
                replica = PassiveReplica(
                    follower_node_id(engine_id, rank), self.sim,
                    self.network, engine_id, rank=rank, metrics=self.metrics,
                )
                group.append(replica)
                self.network.register(replica)
            self.followers[engine_id] = group
            self.replicas[engine_id] = group[0]
            self.fault_logs[engine_id] = ListFaultLog()

        # Resolve wire ids and endpoints once, in declaration order.
        self._wire_plan = self._plan_wires()
        self._specs_built = True

        for engine_id in self.placement.engines():
            engine = self._build_engine(engine_id, cp_seq_start=0)
            self.engines[engine_id] = engine
            self.network.register(engine)
            config = engine.config
            if config.heartbeat_interval is not None:
                from repro.runtime.detector import HeartbeatDetector

                detector = HeartbeatDetector(
                    self.sim, self.recovery, engine_id,
                    config.heartbeat_interval,
                    config.heartbeat_miss_limit,
                )
                self.detectors[engine_id] = detector
                self.replicas[engine_id].detector = detector

        # External nodes.
        for input_id, decl in self.app._external_inputs.items():
            spec = self._wire_plan[id(decl)][0]
            dst_engine = self.placement.engine_of(decl.dst)
            ingress = ExternalIngress(f"ext:{input_id}", self.sim,
                                      self.network, spec, dst_engine,
                                      log_latency=self.log_latency)
            self.ingresses[input_id] = ingress
            self.network.register(ingress)
            # The ingress is the system boundary where external messages
            # are timestamped and logged; it is co-located with its
            # engine, so its links are delay- and fault-free regardless
            # of the deployment's default link.  (Producer-side network
            # delay, if desired, belongs in the producer process.)
            self.network.set_link(ingress.node_id, dst_engine, LinkParams())
            self.network.set_link(dst_engine, ingress.node_id, LinkParams())
        for consumer_id in self.app._external_outputs:
            consumer = ExternalConsumer(consumer_id, self.sim, self.metrics,
                                        birth_of=self.birth_of)
            self.consumers[consumer_id] = consumer
            self.network.register(consumer)

    def _plan_wires(self) -> Dict[int, list]:
        """Assign wire ids and build WireSpecs (+ router entries)."""
        plan: Dict[int, list] = {}
        next_id = 0
        for decl in self.app._wires:
            specs = []
            if decl.kind == "data":
                spec = self._make_spec(next_id, "data", decl)
                next_id += 1
                specs = [spec]
                self.router.add(spec,
                                self.placement.engine_of(decl.src),
                                self.placement.engine_of(decl.dst))
            elif decl.kind == "call":
                call_spec = self._make_spec(next_id, "call", decl)
                next_id += 1
                reply_delay = decl.reply_delay_estimate
                if reply_delay is None:
                    reply_delay = self._default_wire_delay(decl.dst, decl.src)
                reply_spec = WireSpec(
                    wire_id=next_id, kind="reply",
                    src_component=decl.dst, src_port=None,
                    dst_component=decl.src, dst_input=None,
                    delay_estimator=CommDelayEstimator(reply_delay),
                )
                next_id += 1
                specs = [call_spec, reply_spec]
                self.router.add(call_spec,
                                self.placement.engine_of(decl.src),
                                self.placement.engine_of(decl.dst))
                self.router.add(reply_spec,
                                self.placement.engine_of(decl.dst),
                                self.placement.engine_of(decl.src))
            elif decl.kind == "ext_in":
                spec = WireSpec(
                    wire_id=next_id, kind="ext_in",
                    src_component=None, src_port=None,
                    dst_component=decl.dst, dst_input=decl.dst_input,
                    delay_estimator=CommDelayEstimator(0),
                )
                next_id += 1
                specs = [spec]
                self.router.add(spec, f"ext:{decl.external_id}",
                                self.placement.engine_of(decl.dst))
            elif decl.kind == "ext_out":
                delay = decl.delay_estimate or 0
                spec = WireSpec(
                    wire_id=next_id, kind="ext_out",
                    src_component=decl.src, src_port=decl.src_port,
                    dst_component=None, dst_input=None,
                    delay_estimator=CommDelayEstimator(delay),
                )
                next_id += 1
                specs = [spec]
                self.router.add(spec, self.placement.engine_of(decl.src),
                                decl.external_id)
            else:  # pragma: no cover - declaration API prevents this
                raise WiringError(f"unknown wire kind {decl.kind!r}")
            plan[id(decl)] = specs
        return plan

    def _make_spec(self, wire_id: int, kind: str, decl: _WireDecl) -> WireSpec:
        if decl.delay_estimator is not None:
            estimator = decl.delay_estimator
        else:
            delay = decl.delay_estimate
            if delay is None:
                delay = self._default_wire_delay(decl.src, decl.dst)
            estimator = CommDelayEstimator(delay)
        return WireSpec(
            wire_id=wire_id, kind=kind,
            src_component=decl.src, src_port=decl.src_port,
            dst_component=decl.dst, dst_input=decl.dst_input,
            delay_estimator=estimator,
        )

    def _default_wire_delay(self, src: Optional[str], dst: Optional[str]) -> int:
        """Default delay estimator: the mean link delay if remote, else 0.

        "A crude estimate can be just a constant based upon expected
        communication delay" (paper II.G.1).
        """
        if src is None or dst is None:
            return 0
        src_engine = self.placement.engine_of(src)
        dst_engine = self.placement.engine_of(dst)
        if src_engine == dst_engine:
            return 0
        params = self.network._links.get((src_engine, dst_engine),
                                         self.network.default_link)
        return int(params.delay.mean())

    def _build_engine(self, engine_id: str, cp_seq_start: int) -> ExecutionEngine:
        """Construct (or reconstruct, after failure) one engine."""
        config = self._config_for(engine_id)
        engine = ExecutionEngine(
            engine_id, self.sim, self.network, self.router, config,
            self.rng, self.metrics, fault_log=self.fault_logs[engine_id],
            cp_seq_start=cp_seq_start,
        )
        local = set(self.placement.components_on(engine_id))
        for name in self.app.component_names():
            if name not in local:
                continue
            component = self.app.component_class(name)(name)
            runtime = engine.add_component(component)
            for (comp, input_name), cost in self._cost_overrides.items():
                if comp == name:
                    runtime.override_cost(input_name, cost)

        for decl in self.app._wires:
            specs = self._wire_plan[id(decl)]
            if decl.kind == "data":
                (spec,) = specs
                if decl.src in local:
                    engine.wire_out(decl.src, spec, decl.src_port)
                if decl.dst in local:
                    engine.wire_in(decl.dst, spec)
            elif decl.kind == "call":
                call_spec, reply_spec = specs
                if decl.src in local:
                    engine.wire_out(decl.src, call_spec, decl.src_port)
                    engine.wire_reply_in(decl.src, reply_spec, decl.src_port)
                if decl.dst in local:
                    engine.wire_in(decl.dst, call_spec)
                    engine.wire_reply_out(decl.dst, reply_spec)
            elif decl.kind == "ext_in":
                (spec,) = specs
                if decl.dst in local:
                    engine.wire_in(decl.dst, spec, external=True)
            elif decl.kind == "ext_out":
                (spec,) = specs
                if decl.src in local:
                    engine.wire_out(decl.src, spec, decl.src_port)
        return engine

    # -- accessors ------------------------------------------------------------
    def engine(self, engine_id: str) -> ExecutionEngine:
        """The (current) engine object for an id."""
        return self.engines[engine_id]

    def consumer(self, consumer_id: str) -> ExternalConsumer:
        """An external consumer by id."""
        return self.consumers[consumer_id]

    def ingress(self, input_id: str) -> ExternalIngress:
        """An external ingress by id."""
        return self.ingresses[input_id]

    def runtime(self, component_name: str):
        """The current runtime of a component (follows failovers)."""
        engine = self.engines[self.placement.engine_of(component_name)]
        return engine.runtimes[component_name]

    # -- workload ------------------------------------------------------------
    def add_poisson_producer(self, input_id: str,
                             payload_factory: Callable[[Any, int], Any],
                             mean_interarrival: int,
                             interarrival: Optional[Distribution] = None,
                             max_messages: Optional[int] = None,
                             stop_at: Optional[int] = None) -> PoissonProducer:
        """Attach a Poisson workload generator to one external input."""
        producer = PoissonProducer(
            self.sim, self.rng.stream(f"producer:{input_id}"),
            self.ingresses[input_id], payload_factory, mean_interarrival,
            interarrival=interarrival, max_messages=max_messages,
            stop_at=stop_at,
        )
        self.producers.append(producer)
        if self._started:
            producer.start()
        return producer

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Start engines (checkpoint timers) and producers."""
        if self._started:
            return
        self._started = True
        for engine in self.engines.values():
            engine.start()
        for detector in self.detectors.values():
            detector.watch()
        for producer in self.producers:
            producer.start()

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> None:
        """Start (if needed) and run the simulation."""
        self.start()
        self.sim.run(until=until, max_events=max_events)

    # -- introspection ---------------------------------------------------------
    def state_digest(self) -> Dict[str, str]:
        """Canonical SHA-256 digest of every component's state cells.

        Two runs that processed the same logged inputs must produce
        identical digests — the operator-facing form of the determinism
        guarantee, usable to audit a replica against its primary or a
        post-recovery engine against a failure-free twin.  Components
        that are mid-call are skipped (their state is mid-mutation).
        """
        import hashlib

        from repro.runtime import checkpoint as cpser

        digests: Dict[str, str] = {}
        for engine in self.engines.values():
            for name, runtime in engine.runtimes.items():
                if runtime.mid_call:
                    continue
                blob = cpser.dumps(runtime.component.state.full_snapshot())
                digests[name] = hashlib.sha256(blob).hexdigest()
        return digests

    # -- failover ------------------------------------------------------------
    def rebuild_engine(self, engine_id: str) -> ExecutionEngine:
        """Promote the replica of a failed engine (called by recovery)."""
        replica = self.replicas[engine_id]
        engine = self._build_engine(
            engine_id, cp_seq_start=max(0, replica.last_cp_seq)
        )
        if replica.has_checkpoint:
            engine.restore_components(replica.materialize())
        else:
            # No checkpoint ever reached the replica: restart from the
            # initial state; replay from the logs regenerates everything.
            for runtime in engine.runtimes.values():
                if engine.fault_manager is not None:
                    engine.fault_manager.replay_into(runtime)
        self.engines[engine_id] = engine
        self.network.register(engine)
        engine.start()
        engine.begin_recovery()
        return engine
