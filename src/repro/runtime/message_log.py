"""Stable logging of external input messages.

"When a message arrives at the system from an external source, it is (a)
given a timestamp, and then is (b) logged — either to external stable
storage, or to the backup machine.  Because the message is logged, it is
safe to use the actual real time as the virtual time of this message.
Only external messages are logged." (paper II.E)

:class:`ExternalMessageLog` is the stable storage for one external input
wire: it survives the failure of the engine it feeds, and it is the
replay source for that wire after failover.  ``latency_ticks`` models
the synchronous logging cost (0 by default: the paper's configuration
logs to the co-located backup asynchronously relative to the sender but
before processing; experiments can charge a cost here).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import RecoveryError


class ExternalMessageLog:
    """Append-only stable log of (seq, vt, payload) for one wire."""

    def __init__(self, wire_id: int, latency_ticks: int = 0):
        self.wire_id = wire_id
        self.latency_ticks = int(latency_ticks)
        self._entries: List[Tuple[int, int, Any]] = []
        self._truncated_through = -1
        self._last_vt = -1

    def append(self, vt: int, payload: Any) -> int:
        """Persist one message; returns its assigned sequence number."""
        if vt < self._last_vt:
            raise RecoveryError(
                f"log {self.wire_id}: virtual time regressed "
                f"({vt} < {self._last_vt})"
            )
        self._last_vt = vt
        seq = len(self._entries)
        self._entries.append((seq, vt, payload))
        return seq

    def __len__(self) -> int:
        return len(self._entries)

    def entries_from(self, from_seq: int) -> List[Tuple[int, int, Any]]:
        """All logged entries with seq >= ``from_seq`` (replay source)."""
        if from_seq < 0:
            raise RecoveryError(f"negative replay seq {from_seq}")
        if from_seq <= self._truncated_through:
            raise RecoveryError(
                f"log {self.wire_id}: seq {from_seq} was garbage-collected "
                f"(stable through {self._truncated_through})"
            )
        return [e for e in self._entries[from_seq:] if e is not None]

    def last_vt(self) -> int:
        """Virtual time of the newest entry (-1 if empty)."""
        return self._last_vt

    def truncate_through(self, seq_inclusive: int) -> int:
        """Garbage-collect a stable prefix (downstream checkpoint covers it).

        Entries are replaced with tombstones rather than shifted so that
        sequence numbers remain stable.  Returns the number of entries
        collected.
        """
        collected = 0
        for i in range(min(seq_inclusive + 1, len(self._entries))):
            if self._entries[i] is not None:
                self._entries[i] = None  # type: ignore[assignment]
                collected += 1
        self._truncated_through = max(self._truncated_through,
                                      min(seq_inclusive, len(self._entries) - 1))
        return collected
