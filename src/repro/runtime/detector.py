"""Heartbeat-based failure detection.

The paper takes failure detection as given ("If an engine fails, its
passive backup becomes active").  This module supplies the missing
piece: each active engine sends periodic heartbeats to its passive
replica; the replica-side :class:`HeartbeatDetector` declares the engine
dead after ``miss_limit`` consecutive silent periods and triggers the
recovery manager.  With the detector enabled, a fail-stop injected by
:class:`~repro.runtime.failure.FailureInjector` (or any other cause of
engine silence) is noticed *organically* — nothing tells the recovery
path out of band.

Detection time is therefore ``~ miss_limit * heartbeat_interval`` plus
one transit, and it trades against false positives under delay spikes —
the classic dilemma, exposed here as two knobs and measured by the
detection ablation in :mod:`repro.experiments.ablations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RecoveryError

@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon from an active engine."""

    engine_id: str
    seq: int


class HeartbeatEmitter:
    """Engine-side: sends a heartbeat to the replica every interval."""

    def __init__(self, engine, interval: int):
        if interval <= 0:
            raise RecoveryError("heartbeat interval must be positive")
        self.engine = engine
        self.interval = int(interval)
        self._seq = 0

    def start(self) -> None:
        """Begin emitting."""
        self.engine.sim.after(self.interval, self._tick,
                              f"hb:{self.engine.engine_id}")

    def _tick(self) -> None:
        if not self.engine.alive:
            return  # fail-stop: the beacon dies with the engine
        targets = self.engine.config.replica_ids
        if targets:
            beat = Heartbeat(self.engine.engine_id, self._seq)
            for replica_id in targets:
                self.engine.network.send(
                    self.engine.node_id, replica_id, beat
                )
            self._seq += 1
        self.engine.sim.after(self.interval, self._tick,
                              f"hb:{self.engine.engine_id}")


class HeartbeatDetector:
    """Replica-side: declares the engine dead after missed heartbeats.

    Attach with :meth:`watch`; the detector re-arms its timeout on every
    heartbeat (delivered to it by the replica's ``receive`` hook) and
    fires :meth:`RecoveryManager.engine_failed` with zero additional
    detection delay — the heartbeat timeout *is* the detection delay.
    After a failover the new engine's emitter resumes and watching
    continues automatically.
    """

    def __init__(self, sim, recovery, engine_id: str,
                 interval: int, miss_limit: int = 3, rank: int = 0):
        if miss_limit < 1:
            raise RecoveryError("miss_limit must be >= 1")
        if rank < 0:
            raise RecoveryError("rank must be >= 0")
        self.sim = sim
        self.recovery = recovery
        self.engine_id = engine_id
        self.interval = int(interval)
        self.miss_limit = int(miss_limit)
        #: Promotion rank of the follower running this detector.  Higher
        #: ranks wait longer (see :attr:`timeout`) so rank 0 promotes
        #: first; its successor's resumed heartbeats re-arm the others
        #: before their deadlines, and a rank only acts when every rank
        #: below it died too.
        self.rank = int(rank)
        self._deadline_event = None
        self._last_seq: Optional[int] = None
        #: Number of times this detector has declared the engine dead.
        self.detections = 0
        self._watching = False

    @property
    def timeout(self) -> int:
        """Silent period after which the engine is declared dead.

        Rank-scaled: rank *r* waits ``(2r + 1)`` base timeouts, leaving
        each lower rank a full extra detection window to promote and
        resume heartbeats before the next rank concludes it died too.
        """
        return self.interval * self.miss_limit * (2 * self.rank + 1)

    def watch(self) -> None:
        """Start (or restart) watching."""
        self._watching = True
        self._arm()

    def on_heartbeat(self, beat: Heartbeat) -> None:
        """Feed one received heartbeat; re-arms the deadline."""
        if beat.engine_id != self.engine_id:
            return
        self._last_seq = beat.seq
        if self._watching:
            self._arm()

    def _arm(self) -> None:
        if self._deadline_event is not None:
            self._deadline_event.cancel()
        self._deadline_event = self.sim.after(
            self.timeout, self._expired, f"hb-timeout:{self.engine_id}"
        )

    def _expired(self) -> None:
        self._deadline_event = None
        if not self._watching:
            return
        if self.recovery.in_progress(self.engine_id):
            # Promotion already underway; just keep watching.
            self._arm()
            return
        self.detections += 1
        # The timeout already covers the detection delay; promote now.
        self.recovery.engine_failed(self.engine_id, detection_delay=0)
        # Keep watching: the promoted engine resumes heartbeats; if IT
        # dies too, we detect again.
        self._arm()

    def stop(self) -> None:
        """Stop watching (deployment teardown)."""
        self._watching = False
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
