"""Distributed execution substrate.

Hosts the deterministic core on a simulated distributed system: execution
engines (:mod:`~repro.runtime.engine`), a reliable-FIFO transport built
over lossy links (:mod:`~repro.runtime.link`,
:mod:`~repro.runtime.transport`), stable logging of external inputs
(:mod:`~repro.runtime.message_log`), passive replicas and failover
(:mod:`~repro.runtime.replica`, :mod:`~repro.runtime.recovery`), external
producers/consumers (:mod:`~repro.runtime.external`), fault injection
(:mod:`~repro.runtime.failure`), and the application/deployment builder
(:mod:`~repro.runtime.app`, :mod:`~repro.runtime.placement`).
"""

from repro.runtime.app import Application, Deployment, EngineConfig
from repro.runtime.engine import ExecutionEngine
from repro.runtime.external import ExternalConsumer, ExternalIngress, PoissonProducer
from repro.runtime.failure import FailureInjector
from repro.runtime.metrics import MetricSet
from repro.runtime.placement import Placement, round_robin_placement

__all__ = [
    "Application",
    "Deployment",
    "EngineConfig",
    "ExecutionEngine",
    "ExternalConsumer",
    "ExternalIngress",
    "FailureInjector",
    "MetricSet",
    "Placement",
    "PoissonProducer",
    "round_robin_placement",
]
