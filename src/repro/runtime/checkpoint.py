"""Checkpoint serialization.

Soft checkpoints travel from an active engine to its passive replica as
bytes (paper II.F.2: the scheduler "serializes them and sends them to the
partner").  The encoder below is deliberately *canonical* — dict keys are
sorted, tuples and bytes are tagged — so that two identical states always
produce identical bytes.  Tests use this property to assert replay
equality at the byte level.

Supported value types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``list``, ``tuple``, and ``dict`` with str/int/tuple keys.
This covers everything component state cells and runtime snapshots
contain; anything else is a hard error (a component trying to checkpoint
an open socket should fail loudly, not pickle it).

Plain str-keyed dicts — the overwhelmingly common shape in state cells
and wire-frame bodies — are passed straight through to ``json.dumps``:
``sort_keys=True`` already gives them a canonical key order, so the
tagged ``{"__t__": "d", ...}`` wrapper (whose per-key sort is the
serializer's hot spot) is reserved for dicts with non-string keys.  A
str-keyed dict that happens to contain the tag key itself still takes
the wrapped path, keeping decoding unambiguous.
"""

from __future__ import annotations

import json
from base64 import b64decode, b64encode
from typing import Any

from repro.errors import StateError

_TAG = "__t__"


def _encode(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {_TAG: "b", "v": b64encode(obj).decode("ascii")}
    if isinstance(obj, tuple):
        return {_TAG: "t", "v": [_encode(x) for x in obj]}
    if isinstance(obj, list):
        return [_encode(x) for x in obj]
    if isinstance(obj, dict):
        if _TAG not in obj and all(type(k) is str for k in obj):
            return {k: _encode(v) for k, v in obj.items()}
        items = []
        for key, value in obj.items():
            items.append([_encode_key(key), _encode(value)])
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {_TAG: "d", "v": items}
    raise StateError(f"unserializable checkpoint value of type {type(obj).__name__}")


def _encode_key(key: Any) -> Any:
    if isinstance(key, (str, int, bool)) or key is None:
        return _encode(key)
    if isinstance(key, (tuple, bytes)):
        return _encode(key)
    raise StateError(f"unserializable dict key of type {type(key).__name__}")


def _decode(obj: Any) -> Any:
    if isinstance(obj, list):
        return [_decode(x) for x in obj]
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag is None:
            return {k: _decode(v) for k, v in obj.items()}
        if tag == "b":
            return b64decode(obj["v"])
        if tag == "t":
            return tuple(_decode(x) for x in obj["v"])
        if tag == "d":
            return {_decode(k): _decode(v) for k, v in obj["v"]}
        raise StateError(f"corrupt checkpoint: unknown tag {tag!r}")
    return obj


def dumps(obj: Any) -> bytes:
    """Serialize ``obj`` to canonical bytes."""
    return json.dumps(_encode(obj), sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def loads(blob: bytes) -> Any:
    """Inverse of :func:`dumps`."""
    return _decode(json.loads(blob.decode("utf-8")))


def checkpoint_size(blob: bytes) -> int:
    """Size in bytes (convenience for overhead accounting)."""
    return len(blob)
