"""Execution tracing and hold diagnosis.

Operating a virtual-time system raises questions ordinary middleware
doesn't: *why is this message being held?*  and *what did this component
actually process, in what order?*  This module answers both without
perturbing the runtime:

* :class:`ExecutionTracer` — a bounded ring buffer of processing events
  (dispatch, completion, pessimism enter/exit), attachable to any
  deployment; tests and operators read or dump it.  Events carry a
  monotonically increasing per-tracer ``index``, so post-hoc ordering of
  events with equal ``real_time`` is unambiguous, and the buffer
  round-trips to disk through the canonical serializer
  (``dump(path)`` / ``load(path)``).
* :func:`explain_hold` — a point-in-time diagnosis of one component:
  which message is the scheduling candidate, which wires block it, how
  far each horizon is from the needed virtual time, and what would
  unblock it.  When a replay-clock tracer is attached the candidate
  carries its RepCl, so live hold diagnosis and time-travel ``why``
  queries speak the same vocabulary; ``render_hold_report(report,
  as_json=True)`` emits the machine-readable form.

Tracing hooks ride the metrics interface (pure observation), so traced
and untraced runs execute identically — asserted by test.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from repro.vt.time import format_vt

#: On-disk trace format version (``ExecutionTracer.dump(path)``).
TRACE_FORMAT = 1


@dataclass(frozen=True)
class TraceEvent:
    """One observed runtime event."""

    real_time: int
    component: str
    kind: str  # "dispatch" | "complete" | "hold" | "release"
    wire_id: Optional[int] = None
    seq: Optional[int] = None
    vt: Optional[int] = None
    detail: str = ""
    #: Per-tracer monotonic sequence number, assigned by ``record``:
    #: the unambiguous post-hoc order for events sharing a real_time.
    index: int = -1


class ExecutionTracer:
    """Bounded ring buffer of :class:`TraceEvent`.

    Attach with :meth:`attach`; it wraps each runtime's dispatch and
    completion paths with recording decorators.
    """

    def __init__(self, capacity: int = 10_000):
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._attached: List[Any] = []
        self._next_index = 0

    def attach(self, deployment) -> None:
        """Trace every component runtime in a deployment."""
        for engine in deployment.engines.values():
            for runtime in engine.runtimes.values():
                self.attach_runtime(runtime, deployment.sim)

    def attach_runtime(self, runtime, sim) -> None:
        """Trace one runtime by wrapping its dispatch/complete methods."""
        tracer = self
        original_dispatch = runtime._dispatch
        original_complete = runtime._complete
        original_enter = runtime._enter_pessimism_delay
        name = runtime.component.name

        def traced_dispatch(msg, wire):
            tracer.record(TraceEvent(sim.now, name, "dispatch",
                                     msg.wire_id, msg.seq, msg.vt))
            return original_dispatch(msg, wire)

        def traced_complete(busy, end_vt, return_value):
            tracer.record(TraceEvent(
                sim.now, name, "complete", busy.message.wire_id,
                busy.message.seq, end_vt,
                detail=f"actual={busy.actual_ticks}"))
            return original_complete(busy, end_vt, return_value)

        def traced_enter(msg):
            tracer.record(TraceEvent(sim.now, name, "hold",
                                     msg.wire_id, msg.seq, msg.vt))
            return original_enter(msg)

        runtime._dispatch = traced_dispatch
        runtime._complete = traced_complete
        runtime._enter_pessimism_delay = traced_enter
        self._attached.append(runtime)

    def record(self, event: TraceEvent) -> None:
        """Append one event (oldest events fall off at capacity).

        Stamps the tracer's monotonic index; an event recorded with an
        explicit non-negative index (a reloaded one) keeps it.
        """
        if event.index < 0:
            event = dataclasses.replace(event, index=self._next_index)
        self._next_index = max(self._next_index, event.index + 1)
        self._events.append(event)

    def events(self, component: Optional[str] = None,
               kind: Optional[str] = None) -> List[TraceEvent]:
        """Events in order, optionally filtered."""
        return [
            e for e in self._events
            if (component is None or e.component == component)
            and (kind is None or e.kind == kind)
        ]

    def dump(self, path: Optional[str] = None, limit: int = 50) -> str:
        """Human-readable tail of the trace — or, with ``path``, a
        canonical-serializer file that :meth:`load` round-trips."""
        if path is not None:
            from repro.runtime import checkpoint as cpser

            doc = {
                "format": TRACE_FORMAT,
                "capacity": self.capacity,
                "next_index": self._next_index,
                "events": [dataclasses.astuple(e) for e in self._events],
            }
            with open(path, "wb") as fh:
                fh.write(cpser.dumps(doc))
            return path
        lines = []
        for e in list(self._events)[-limit:]:
            vt = format_vt(e.vt) if e.vt is not None else "-"
            lines.append(
                f"t={e.real_time / 1000:.1f}us {e.component:>12} "
                f"{e.kind:<8} wire={e.wire_id} seq={e.seq} vt={vt} "
                f"{e.detail}"
            )
        return "\n".join(lines)

    @classmethod
    def load(cls, path: str) -> "ExecutionTracer":
        """Rebuild a tracer from a :meth:`dump` file."""
        from repro.errors import TartError
        from repro.runtime import checkpoint as cpser

        with open(path, "rb") as fh:
            doc = cpser.loads(fh.read())
        if doc.get("format") != TRACE_FORMAT:
            raise TartError(f"unsupported trace format "
                            f"{doc.get('format')!r} in {path}")
        tracer = cls(capacity=doc["capacity"])
        for fields in doc["events"]:
            tracer.record(TraceEvent(*fields))
        tracer._next_index = max(tracer._next_index, doc["next_index"])
        return tracer

    def __len__(self) -> int:
        return len(self._events)


def explain_hold(runtime) -> Dict[str, Any]:
    """Diagnose why a component is (or is not) holding a message.

    Returns a structured report; ``render_hold_report`` turns it into
    text.  Safe to call at any event boundary; purely observational.
    """
    report: Dict[str, Any] = {
        "component": runtime.component.name,
        "busy": runtime.busy_info is not None,
        "holding": False,
        "candidate": None,
        "blocking_wires": [],
    }
    if runtime.busy_info is not None:
        busy = runtime.busy_info
        report["busy_message"] = {
            "wire": busy.message.wire_id, "seq": busy.message.seq,
            "dequeue_vt": busy.dequeue_vt,
            "awaiting_reply": busy.awaiting_reply,
        }
        return report
    best = runtime._best_candidate()
    if best is None:
        report["reason"] = "no pending messages"
        return report
    msg, _wire = best
    report["candidate"] = {"wire": msg.wire_id, "seq": msg.seq, "vt": msg.vt}
    observer = getattr(runtime, "observer", None)
    if observer is not None and hasattr(observer, "clock_for_message"):
        # A replay-clock tracer is attached: annotate the candidate with
        # its sender's RepCl (or the receiver's clock for external
        # roots) so hold diagnosis and timetravel `why` line up.
        clock = (observer.clock_for_message(msg.wire_id, msg.seq)
                 or observer.clock_of(runtime.component.name))
        report["candidate"]["repcl"] = clock.encode()
    blocking = runtime.silence.blocking_wires(msg.vt, excluding=msg.wire_id)
    if not blocking:
        report["reason"] = "dispatchable (will run at the next event)"
        return report
    report["holding"] = True
    for wire_id in blocking:
        horizon = runtime.silence.horizon(wire_id)
        wire = runtime.in_wires.get(wire_id)
        report["blocking_wires"].append({
            "wire": wire_id,
            "horizon": horizon,
            "needed": msg.vt,
            "shortfall": msg.vt - horizon,
            "external": bool(wire and wire.external),
            "probe_outstanding": runtime._probe_outstanding.get(wire_id,
                                                                False),
        })
    report["reason"] = (
        f"pessimism delay: waiting for silence through "
        f"{format_vt(msg.vt)} on wires "
        f"{[b['wire'] for b in report['blocking_wires']]}"
    )
    return report


def render_hold_report(report: Dict[str, Any],
                       as_json: bool = False) -> str:
    """Format an :func:`explain_hold` report for humans (or machines)."""
    if as_json:
        return json.dumps(report, indent=2, sort_keys=True)
    lines = [f"component {report['component']}:"]
    if report["busy"]:
        busy = report.get("busy_message", {})
        state = ("suspended on a service call"
                 if busy.get("awaiting_reply") else "executing")
        lines.append(
            f"  {state} message wire={busy.get('wire')} "
            f"seq={busy.get('seq')} dequeued at "
            f"{format_vt(busy.get('dequeue_vt', 0))}")
        return "\n".join(lines)
    if not report["holding"]:
        lines.append(f"  {report.get('reason', 'idle')}")
        return "\n".join(lines)
    candidate = report["candidate"]
    lines.append(
        f"  HOLDING wire={candidate['wire']} seq={candidate['seq']} at "
        f"{format_vt(candidate['vt'])}")
    if "repcl" in candidate:
        lines.append(f"    candidate repcl: "
                     f"{json.dumps(candidate['repcl'], sort_keys=True)}")
    for b in report["blocking_wires"]:
        kind = "external" if b["external"] else "internal"
        probe = " (probe in flight)" if b["probe_outstanding"] else ""
        lines.append(
            f"    blocked by {kind} wire {b['wire']}: horizon "
            f"{format_vt(b['horizon'])}, short by "
            f"{format_vt(b['shortfall'])}{probe}")
    return "\n".join(lines)
