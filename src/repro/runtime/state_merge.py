"""Merging incremental checkpoints into full snapshots.

A component runtime snapshot contains the state cells plus runtime
metadata (virtual time, tick-stream positions, pending queues).  Delta
checkpoints carry *delta* cell snapshots but full metadata (metadata is
small); merging therefore:

* merges each cell's delta into the base cell snapshot —
  :class:`~repro.core.state.ValueCell` deltas are ``(changed, value)``
  tuples, :class:`~repro.core.state.MapCell` deltas are flat dicts with
  the deletion sentinel;
* replaces every metadata field with the newer checkpoint's copy.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from repro.core.state import _DELETED
from repro.errors import RecoveryError

#: Snapshot fields taken wholesale from the newer checkpoint.
_METADATA_FIELDS = (
    "component_vt",
    "max_arrived_vt",
    "next_call_id",
    "receivers",
    "reply_receivers",
    "senders",
    "silence",
    "pending",
)


def merge_cell(base: Any, delta: Any) -> Any:
    """Merge one cell's delta snapshot into its base full snapshot."""
    if isinstance(delta, tuple):
        # ValueCell: (changed, value)
        if len(delta) != 2:
            raise RecoveryError(f"malformed value-cell delta: {delta!r}")
        changed, value = delta
        return value if changed else base
    if isinstance(delta, dict):
        # MapCell: dirty entries + deletion tombstones.
        if not isinstance(base, dict):
            raise RecoveryError(
                f"map-cell delta applied to non-map base {type(base).__name__}"
            )
        merged = dict(base)
        for key, value in delta.items():
            if isinstance(value, str) and value == _DELETED:
                merged.pop(key, None)
            else:
                merged[key] = value
        return merged
    raise RecoveryError(f"unknown cell delta shape: {type(delta).__name__}")


def merge_component_snapshots(base: Dict, delta: Dict) -> Dict:
    """Merge a delta component snapshot onto a full one."""
    if not delta.get("cells_incremental", False):
        # The "delta" is actually a newer full snapshot; it wins outright.
        return dict(delta)
    merged = dict(base)
    merged_cells = dict(base["cells"])
    for name, cell_delta in delta["cells"].items():
        if name not in merged_cells:
            raise RecoveryError(f"delta for unknown cell {name!r}")
        merged_cells[name] = merge_cell(merged_cells[name], cell_delta)
    merged["cells"] = merged_cells
    merged["cells_incremental"] = False
    for field in _METADATA_FIELDS:
        merged[field] = delta[field]
    return merged


def fold_chain(base: Dict[str, Dict],
               deltas: Iterable[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Fold delta component maps onto a base component map in order.

    ``base`` maps component name to full snapshot; each element of
    ``deltas`` maps component name to a delta (or newer full) snapshot.
    This is the single chain-materialization rule shared by the passive
    replica (at promotion) and the divergence auditor (continuously).
    """
    merged = dict(base)
    for delta in deltas:
        for name, snap in delta.items():
            if name not in merged:
                raise RecoveryError(f"delta for unknown component {name!r}")
            merged[name] = merge_component_snapshots(merged[name], snap)
    return merged
