"""Passive replicas.

"Each engine is associated with a backup ... a passive replica residing
on a separate execution engine, which holds checkpoints, ready to
immediately become active should the active engine fail."  A passive
replica "only holds the state; it need not do any processing" (paper
II.F.2) — so this class is deliberately dumb: it stores checkpoint blobs,
acknowledges them, and can *materialize* the merged state (base full
checkpoint plus incremental deltas) when the recovery manager promotes
it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.message import CheckpointAck, CheckpointData
from repro.errors import RecoveryError
from repro.runtime import checkpoint as cpser
from repro.runtime.state_merge import fold_chain


class PassiveReplica:
    """Checkpoint store + failover source for one engine."""

    def __init__(self, node_id: str, sim, network, engine_id: str):
        self.node_id = node_id
        self.alive = True
        self.sim = sim
        self.network = network
        self.engine_id = engine_id
        #: (cp_seq, incremental, decoded blob) in arrival order.
        self._chain: List[tuple] = []
        self.bytes_received = 0
        #: Optional heartbeat detector fed by this replica's receive().
        self.detector = None

    def receive(self, item: Any) -> None:
        """Store a soft checkpoint / heartbeat and acknowledge data."""
        from repro.runtime.detector import Heartbeat

        if isinstance(item, Heartbeat):
            if self.detector is not None:
                self.detector.on_heartbeat(item)
            return
        if not isinstance(item, CheckpointData):
            return
        if item.engine_id != self.engine_id:
            raise RecoveryError(
                f"replica {self.node_id}: checkpoint for {item.engine_id}"
            )
        decoded = cpser.loads(item.blob)
        if not item.incremental:
            # A full checkpoint obsoletes the existing chain.
            self._chain = [(item.cp_seq, False, decoded)]
        else:
            if not self._chain:
                raise RecoveryError(
                    f"replica {self.node_id}: delta checkpoint {item.cp_seq} "
                    f"without a base"
                )
            self._chain.append((item.cp_seq, True, decoded))
        self.bytes_received += len(item.blob)
        self.network.send(
            self.node_id, self.engine_id,
            CheckpointAck(self.engine_id, item.cp_seq),
        )

    # -- failover ----------------------------------------------------------
    @property
    def has_checkpoint(self) -> bool:
        """Whether at least one full checkpoint has arrived."""
        return bool(self._chain)

    @property
    def last_cp_seq(self) -> int:
        """Sequence number of the newest stored checkpoint (-1 if none)."""
        return self._chain[-1][0] if self._chain else -1

    def materialize(self) -> Dict[str, dict]:
        """Merge the chain into per-component full snapshots.

        The result maps component name to a snapshot dict directly
        restorable by
        :meth:`repro.core.scheduler.ComponentRuntime.restore`.
        """
        if not self._chain:
            raise RecoveryError(
                f"replica {self.node_id}: no checkpoint to materialize"
            )
        _, incremental, base = self._chain[0]
        if incremental:  # pragma: no cover - guarded at receive()
            raise RecoveryError("chain does not start with a full checkpoint")
        try:
            return fold_chain(
                base["components"],
                (delta["components"] for _, _, delta in self._chain[1:]),
            )
        except RecoveryError as exc:
            raise RecoveryError(f"replica {self.node_id}: {exc}") from exc
