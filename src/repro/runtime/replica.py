"""Passive replicas.

"Each engine is associated with a backup ... a passive replica residing
on a separate execution engine, which holds checkpoints, ready to
immediately become active should the active engine fail."  A passive
replica "only holds the state; it need not do any processing" (paper
II.F.2) — so this class is deliberately dumb: it stores checkpoint blobs,
acknowledges them, and can *materialize* the merged state (base full
checkpoint plus incremental deltas) when the recovery manager promotes
it.

With replication groups (N engines × K followers), one engine ships its
chain to several replicas; each acknowledges with its own node id so the
engine can wait for the whole group before trimming upstream buffers.
The stored chain is garbage-collected: once it grows past
``gc_fold_threshold`` entries, the prefix is folded into one synthetic
full checkpoint — bounding both entry count and retained bytes on long
runs — and the ``replica.chain_len`` / ``replica.chain_bytes`` gauges
expose the current footprint.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.message import CheckpointAck, CheckpointData
from repro.errors import RecoveryError
from repro.runtime import checkpoint as cpser
from repro.runtime.state_merge import fold_chain

#: Chain entries above which the prefix is folded into a synthetic full.
GC_FOLD_THRESHOLD = 8


class PassiveReplica:
    """Checkpoint store + failover source for one engine."""

    def __init__(self, node_id: str, sim, network, engine_id: str,
                 rank: int = 0, metrics=None,
                 gc_fold_threshold: int = GC_FOLD_THRESHOLD):
        self.node_id = node_id
        self.alive = True
        self.sim = sim
        self.network = network
        self.engine_id = engine_id
        #: Promotion rank within the engine's replication group.
        self.rank = rank
        #: Optional MetricSet the chain gauges are written to.
        self.metrics = metrics
        self.gc_fold_threshold = max(2, int(gc_fold_threshold))
        #: (cp_seq, incremental, decoded blob) in arrival order.
        self._chain: List[tuple] = []
        #: Serialized size of each chain entry, kept in step with _chain.
        self._chain_sizes: List[int] = []
        self.bytes_received = 0
        #: Chain-GC folds performed (diagnostics).
        self.gc_folds = 0
        #: Optional heartbeat detector fed by this replica's receive().
        self.detector = None

    def receive(self, item: Any) -> None:
        """Store a soft checkpoint / heartbeat and acknowledge data."""
        from repro.runtime.detector import Heartbeat

        if isinstance(item, Heartbeat):
            if self.detector is not None:
                self.detector.on_heartbeat(item)
            return
        if not isinstance(item, CheckpointData):
            return
        if item.engine_id != self.engine_id:
            raise RecoveryError(
                f"replica {self.node_id}: checkpoint for {item.engine_id}"
            )
        decoded = cpser.loads(item.blob)
        if not item.incremental:
            # A full checkpoint obsoletes the existing chain.
            self._chain = [(item.cp_seq, False, decoded)]
            self._chain_sizes = [len(item.blob)]
        else:
            if not self._chain:
                raise RecoveryError(
                    f"replica {self.node_id}: delta checkpoint {item.cp_seq} "
                    f"without a base"
                )
            self._chain.append((item.cp_seq, True, decoded))
            self._chain_sizes.append(len(item.blob))
        self.bytes_received += len(item.blob)
        if len(self._chain) > self.gc_fold_threshold:
            self._gc_fold()
        self._publish_gauges()
        self.network.send(
            self.node_id, self.engine_id,
            CheckpointAck(self.engine_id, item.cp_seq,
                          replica_id=self.node_id),
        )

    # -- chain garbage collection ------------------------------------------
    def _gc_fold(self) -> None:
        """Fold the whole chain prefix into one synthetic full checkpoint.

        The fold keeps the newest entry's ``cp_seq`` (the chain's replay
        starting point is unchanged) and replaces everything below it
        with the merged state, so a long run's delta tail cannot grow
        without bound even when the engine defers full captures.
        """
        last_seq = self._chain[-1][0]
        folded = self.materialize()
        blob = cpser.dumps({"components": folded})
        self._chain = [(last_seq, False, cpser.loads(blob))]
        self._chain_sizes = [len(blob)]
        self.gc_folds += 1
        if self.metrics is not None:
            self.metrics.count("replica.gc_folds")

    def _publish_gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("replica.chain_len", self.chain_len)
            self.metrics.gauge("replica.chain_bytes", self.chain_bytes)

    @property
    def chain_len(self) -> int:
        """Entries currently retained in the checkpoint chain."""
        return len(self._chain)

    @property
    def chain_bytes(self) -> int:
        """Serialized bytes currently retained in the chain."""
        return sum(self._chain_sizes)

    # -- failover ----------------------------------------------------------
    @property
    def has_checkpoint(self) -> bool:
        """Whether at least one full checkpoint has arrived."""
        return bool(self._chain)

    @property
    def last_cp_seq(self) -> int:
        """Sequence number of the newest stored checkpoint (-1 if none)."""
        return self._chain[-1][0] if self._chain else -1

    def materialize(self) -> Dict[str, dict]:
        """Merge the chain into per-component full snapshots.

        The result maps component name to a snapshot dict directly
        restorable by
        :meth:`repro.core.scheduler.ComponentRuntime.restore`.
        """
        if not self._chain:
            raise RecoveryError(
                f"replica {self.node_id}: no checkpoint to materialize"
            )
        _, incremental, base = self._chain[0]
        if incremental:  # pragma: no cover - guarded at receive()
            raise RecoveryError("chain does not start with a full checkpoint")
        try:
            return fold_chain(
                base["components"],
                (delta["components"] for _, _, delta in self._chain[1:]),
            )
        except RecoveryError as exc:
            raise RecoveryError(f"replica {self.node_id}: {exc}") from exc
