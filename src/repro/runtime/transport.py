"""Inter-node transport.

The :class:`Network` connects *nodes*: execution engines, external
ingresses, external consumers, and passive replicas.  Every node exposes
``node_id`` (str), ``alive`` (bool), and ``receive(item)``.

Delivery semantics:

* between two distinct nodes — through a lazily created
  :class:`~repro.runtime.link.ReliableChannel` with the link parameters
  configured for that pair (delay distribution, loss/duplication faults);
* within one node (component to component on the same engine) — direct,
  after ``local_delay`` ticks (default 0);
* to a dead node — dropped: messages in transit to a failed engine are
  lost, exactly the paper's fail-stop model; TART's replay recovers
  them.

Control messages (probes, silence advances) may be given their own
fixed one-way delay via ``control_delay`` so experiments can charge the
paper's 20 µs curiosity-probe cost even between co-located components.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.message import CuriosityProbe, SilenceAdvance
from repro.errors import TransportError
from repro.runtime.link import LinkFault, ReliableChannel
from repro.sim.distributions import Constant, Distribution
from repro.sim.kernel import Simulator


class LinkParams:
    """Per-node-pair link configuration."""

    def __init__(self, delay: Optional[Distribution] = None,
                 loss_prob: float = 0.0, dup_prob: float = 0.0,
                 reorder_extra: Optional[Distribution] = None,
                 rto: Optional[int] = None,
                 serialize_ticks: int = 0):
        self.delay = delay if delay is not None else Constant(0)
        self.fault = LinkFault(loss_prob, dup_prob, reorder_extra)
        self.rto = rto
        self.serialize_ticks = int(serialize_ticks)


class Network:
    """Routes items between registered nodes."""

    def __init__(self, sim: Simulator, rng_registry,
                 default_link: Optional[LinkParams] = None,
                 local_delay: int = 0,
                 control_delay: int = 0):
        self.sim = sim
        self.rng_registry = rng_registry
        self.default_link = default_link or LinkParams()
        self.local_delay = int(local_delay)
        self.control_delay = int(control_delay)
        self._nodes: Dict[str, Any] = {}
        self._links: Dict[Tuple[str, str], LinkParams] = {}
        self._channels: Dict[Tuple[str, str], ReliableChannel] = {}

    # -- topology ----------------------------------------------------------
    def register(self, node) -> None:
        """Add or replace a node (failover replaces the dead engine)."""
        self._nodes[node.node_id] = node

    def node(self, node_id: str):
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TransportError(f"unknown node {node_id!r}") from None

    def set_link(self, src_id: str, dst_id: str, params: LinkParams) -> None:
        """Configure the link used for src -> dst traffic."""
        self._links[(src_id, dst_id)] = params
        # A live channel keeps its construction-time parameters; drop it
        # so the next send rebuilds with the new ones.
        self._channels.pop((src_id, dst_id), None)

    def link_fault(self, src_id: str, dst_id: str) -> LinkFault:
        """The fault knobs of the (possibly lazily created) channel."""
        channel = self._channel(src_id, dst_id)
        return channel.data_link.fault

    # -- delivery ----------------------------------------------------------
    def send(self, src_id: str, dst_id: str, item: Any) -> None:
        """Send ``item`` from node to node."""
        if src_id == dst_id:
            delay = self._item_delay(item, local=True)
            self.sim.after(delay, lambda: self._deliver(dst_id, item),
                           f"local:{dst_id}")
            return
        extra = self._item_delay(item, local=False)
        if extra:
            self.sim.after(extra, lambda: self._channel_send(src_id, dst_id, item),
                           f"ctl:{src_id}->{dst_id}")
        else:
            self._channel_send(src_id, dst_id, item)

    def _item_delay(self, item: Any, local: bool) -> int:
        if isinstance(item, (CuriosityProbe, SilenceAdvance)):
            return self.control_delay
        return self.local_delay if local else 0

    def _channel_send(self, src_id: str, dst_id: str, item: Any) -> None:
        self._channel(src_id, dst_id).send(item)

    def _channel(self, src_id: str, dst_id: str) -> ReliableChannel:
        key = (src_id, dst_id)
        channel = self._channels.get(key)
        if channel is None:
            params = self._links.get(key, self.default_link)
            rng = self.rng_registry.stream(f"link:{src_id}->{dst_id}")
            channel = ReliableChannel(
                self.sim, rng, f"{src_id}->{dst_id}",
                deliver=lambda it, d=dst_id: self._deliver(d, it),
                delay=params.delay, fault=params.fault, rto=params.rto,
                serialize_ticks=params.serialize_ticks,
            )
            self._channels[key] = channel
        return channel

    def _deliver(self, dst_id: str, item: Any) -> None:
        node = self._nodes.get(dst_id)
        if node is None or not node.alive:
            return  # fail-stop: traffic to a dead node is lost
        node.receive(item)

    # -- failure handling ---------------------------------------------------
    def fail_node(self, node_id: str) -> None:
        """Reset every channel touching a failed node (new epoch).

        In-flight and unacked frames of the old epoch are discarded —
        the volatile channel state died with the engine.
        """
        for (src, dst), channel in self._channels.items():
            if src == node_id or dst == node_id:
                channel.reset()

    def channels(self) -> Dict[Tuple[str, str], ReliableChannel]:
        """Live channels (diagnostic)."""
        return dict(self._channels)
