"""Execution engines.

"An execution engine is either a physical machine or a container such as
a JVM within a machine" (paper II.C).  An :class:`ExecutionEngine` hosts
a set of component runtimes (each with a dedicated logical processor, as
in the paper's multiprocessor study), routes wire traffic through the
network, takes periodic soft checkpoints and ships them to its passive
replica, answers replay requests from its retained buffers, and reacts
to checkpoint acknowledgements by telling upstream senders which ticks
are stable.

The engine also hosts the dynamic re-tuning loop (paper II.G.4): it
samples (estimated, actual) cost pairs from every handler completion,
and when the drift monitor trips, performs a determinism-fault
re-calibration through the stable fault log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.calibration import DriftMonitor, LinearRegressionCalibrator
from repro.core.component import Component
from repro.core.determinism_fault import DeterminismFaultManager
from repro.core.message import (
    CallReply,
    CheckpointAck,
    CheckpointData,
    CuriosityProbe,
    DataMessage,
    ReplayRequest,
    SilenceAdvance,
    StableNotice,
)
from repro.core.estimators import QueueCorrelatedDelayEstimator
from repro.core.nondet_scheduler import NonDeterministicComponentRuntime
from repro.core.ports import ServicePort, WireSpec
from repro.core.scheduler import ComponentRuntime, RuntimeServices
from repro.core.silence_policy import (
    CuriositySilencePolicy,
    NullSilencePolicy,
    SilencePolicy,
)
from repro.errors import RecoveryError, SchedulingError, TransportError, WiringError
from repro.runtime import checkpoint as cpser
from repro.runtime.audit import AUDIT_MODES, DivergenceAuditor
from repro.runtime.cadence import CadenceController, RecoveryTarget
from repro.runtime.metrics import MetricSet
from repro.sim.jitter import JitterModel, NoJitter
from repro.sim.kernel import Processor, ProcessorPool, Simulator


@dataclass
class EngineConfig:
    """Tunable behaviour of one engine (paper II.G's control knobs)."""

    #: "deterministic" (TART) or "nondeterministic" (the baseline).
    mode: str = "deterministic"
    #: Factory producing a fresh silence policy per component runtime.
    policy_factory: Callable[[], SilencePolicy] = CuriositySilencePolicy
    #: Prescient probe answers (paper III.A "Prescient" mode).
    prescient: bool = False
    #: Execution-time jitter model shared by this engine's components.
    jitter: JitterModel = field(default_factory=NoJitter)
    #: Soft-checkpoint period in ticks; None disables checkpointing.
    checkpoint_interval: Optional[int] = None
    #: Every Nth checkpoint is full; the others are incremental.
    full_checkpoint_every: int = 8
    #: Node id of this engine's rank-0 passive replica (required to
    #: checkpoint).  Authoritative: ``None`` disables replication even
    #: if :attr:`replica_ids` is set; a bare id becomes a one-follower
    #: group.  Normalized against :attr:`replica_ids` by
    #: ``__post_init__``.
    replica_id: Optional[str] = None
    #: Node ids of *all* followers in this engine's replication group,
    #: in promotion (rank) order.  Checkpoints and heartbeats fan out to
    #: every entry; a checkpoint is stable (and upstream buffers may be
    #: trimmed) only once every follower acknowledged it, so any single
    #: surviving follower can still replay from its chain.
    replica_ids: tuple = ()
    #: Enable drift-triggered determinism-fault re-calibration.
    calibrate: bool = False
    #: Drift-monitor window (samples) and relative threshold.
    drift_window: int = 200
    drift_threshold: float = 0.05
    #: Minimum samples between two re-calibrations of one handler.
    recalibrate_cooldown_samples: int = 500
    #: Heartbeat period to the replica; None disables organic failure
    #: detection (experiments then drive recovery via the injector).
    heartbeat_interval: Optional[int] = None
    #: Consecutive missed heartbeats before the replica-side detector
    #: declares the engine dead.
    heartbeat_miss_limit: int = 3
    #: CPUs shared by this engine's component threads; None gives every
    #: component a dedicated processor (the paper's multiprocessor
    #: configuration).
    shared_cpus: Optional[int] = None
    #: Thread scheduling under contention (paper II.G.2): "static" uses
    #: :attr:`thread_priorities`; "vt-lag" dynamically prioritises the
    #: thread whose virtual time lags real time the most.
    priority_mode: str = "static"
    #: Static priorities by component name (higher runs first).
    thread_priorities: Dict[str, float] = field(default_factory=dict)
    #: Recovery-time objective driving adaptive checkpoint cadence; when
    #: set, :attr:`checkpoint_interval` becomes the controller's initial
    #: interval rather than a fixed period (see ``repro.runtime.cadence``).
    recovery_target: Optional[RecoveryTarget] = None
    #: Continuous divergence audit mode: "off", "raise" (fail loudly on
    #: divergence), or "heal" (install the chain rebuild and bump the
    #: incarnation epoch).  See ``repro.runtime.audit``.
    audit: str = "off"
    #: Audit before every Nth checkpoint capture.
    audit_every: int = 1
    #: Consecutive mid-call checkpoint retries before the engine records
    #: a stall and backs off to the full interval.
    checkpoint_max_retries: int = 16

    def __post_init__(self):
        # Normalize the two replica-target forms: a bare replica_id is a
        # one-follower group; replica_ids lists the whole group with the
        # primary at its head.  replica_id is authoritative on conflict —
        # a dataclasses.replace override that disagrees with an inherited
        # list (including replica_id=None to disable replication) is the
        # caller opting out of the group.
        ids = tuple(self.replica_ids or ())
        if self.replica_id is None:
            ids = ()
        elif not ids or ids[0] != self.replica_id:
            ids = (self.replica_id,)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate replica_ids: {ids}")
        self.replica_ids = ids
        if (self.checkpoint_interval is not None
                and self.checkpoint_interval <= 0):
            raise ValueError(
                f"checkpoint_interval must be a positive tick count, got "
                f"{self.checkpoint_interval} (use None to disable "
                f"checkpointing)"
            )
        if self.full_checkpoint_every <= 0:
            raise ValueError(
                f"full_checkpoint_every must be positive, got "
                f"{self.full_checkpoint_every}"
            )
        if (self.heartbeat_interval is not None
                and self.heartbeat_interval <= 0):
            raise ValueError(
                f"heartbeat_interval must be a positive tick count, got "
                f"{self.heartbeat_interval} (use None to disable heartbeats)"
            )
        if self.heartbeat_miss_limit < 1:
            raise ValueError(
                f"heartbeat_miss_limit must be >= 1, got "
                f"{self.heartbeat_miss_limit}"
            )
        if self.checkpoint_max_retries < 1:
            raise ValueError(
                f"checkpoint_max_retries must be >= 1, got "
                f"{self.checkpoint_max_retries}"
            )
        if self.audit not in AUDIT_MODES:
            raise ValueError(
                f"audit must be one of {AUDIT_MODES}, got {self.audit!r}"
            )
        if self.audit_every < 1:
            raise ValueError(f"audit_every must be >= 1, got {self.audit_every}")
        if self.recovery_target is not None and self.checkpoint_interval is None:
            raise ValueError(
                "recovery_target requires checkpoint_interval (the "
                "controller's initial interval)"
            )
        if self.audit != "off" and self.checkpoint_interval is None:
            raise ValueError(
                "audit requires checkpoint_interval (audits run at "
                "checkpoint boundaries)"
            )


class _HandlerTuning:
    """Per-handler calibration state (active only with config.calibrate)."""

    def __init__(self, feature_names, window: int, threshold: float):
        names = list(feature_names) or ["__count__"]
        self.calibrator = LinearRegressionCalibrator(names, fit_intercept=False)
        self.monitor = DriftMonitor(window, threshold)
        self.samples_since_recalibration = 0


class ExecutionEngine:
    """One active execution engine hosting several component runtimes."""

    def __init__(
        self,
        engine_id: str,
        sim: Simulator,
        network,
        router,
        config: EngineConfig,
        rng_registry,
        metrics: MetricSet,
        fault_log=None,
        cp_seq_start: int = 0,
    ):
        self.node_id = engine_id
        self.engine_id = engine_id
        self.alive = True
        self.sim = sim
        self.network = network
        self.router = router
        self.config = config
        self.rng_registry = rng_registry
        self.metrics = metrics
        self.fault_log = fault_log
        self.fault_manager = (
            DeterminismFaultManager(fault_log) if fault_log is not None else None
        )

        self.runtimes: Dict[str, ComponentRuntime] = {}
        self._wire_dst_local: Dict[int, str] = {}
        self._wire_src_local: Dict[int, str] = {}
        self._reply_dst_local: Dict[int, str] = {}

        self._cp_seq = cp_seq_start
        self._cp_positions: Dict[int, Dict[int, int]] = {}
        self._cp_captured_at: Dict[int, int] = {}
        #: cp_seq -> follower node ids that have acknowledged it.
        self._cp_acked: Dict[int, set] = {}
        self._cp_ever_full = False
        self._cp_retries = 0
        self._last_cp_at: Optional[int] = None
        self._msgs_at_last_cp = 0
        self._tunings: Dict[tuple, _HandlerTuning] = {}

        #: Bumped by the divergence auditor on every self-heal; the net
        #: layer maps bumps onto real transport incarnations via on_heal.
        self.incarnation_epoch = 0
        self.on_heal: Optional[Callable[[], None]] = None
        self.cadence: Optional[CadenceController] = None
        if config.recovery_target is not None:
            detect = ((config.heartbeat_interval or 0)
                      * config.heartbeat_miss_limit)
            self.cadence = CadenceController(
                config.recovery_target,
                config.checkpoint_interval,
                detect_ticks=detect,
                metrics=metrics,
            )
        self.auditor: Optional[DivergenceAuditor] = None
        if config.audit != "off":
            self.auditor = DivergenceAuditor(
                self, config.audit, config.audit_every, cadence=self.cadence
            )

        self._pool: Optional[ProcessorPool] = None
        if config.shared_cpus is not None:
            self._pool = ProcessorPool(
                sim, f"{engine_id}/cpus", config.shared_cpus,
                priority_fn=self._thread_priority,
            )

    def _thread_priority(self, component_name: str) -> float:
        """Thread priority under CPU contention (paper II.G.2)."""
        if self.config.priority_mode == "vt-lag":
            runtime = self.runtimes.get(component_name)
            if runtime is None:
                return 0.0
            # A component whose virtual time trails real time is "slow";
            # running it first shrinks everyone's pessimism delays.
            return float(self.sim.now - runtime.component_vt)
        return self.config.thread_priorities.get(component_name, 0.0)

    # ------------------------------------------------------------------
    # Deployment-time construction
    # ------------------------------------------------------------------
    def add_component(self, component: Component) -> ComponentRuntime:
        """Install a component: run setup, create its runtime + processor."""
        if component.name in self.runtimes:
            raise WiringError(f"{self.engine_id}: duplicate component "
                              f"{component.name!r}")
        component.setup()
        component.state.seal()
        if self._pool is not None:
            processor = self._pool.port(component.name)
        else:
            processor = Processor(self.sim,
                                  f"{self.engine_id}/{component.name}")
        services = RuntimeServices(
            sim=self.sim,
            rng=self.rng_registry.stream(f"exec:{component.name}"),
            jitter=self.config.jitter,
            transmit=self._transmit,
            send_control=self._send_control,
            metrics=self.metrics,
            prescient=self.config.prescient,
            on_sample=self._on_sample,
        )
        if self.config.mode == "deterministic":
            policy = self.config.policy_factory()
            runtime = ComponentRuntime(component, processor, services, policy)
        elif self.config.mode == "nondeterministic":
            runtime = NonDeterministicComponentRuntime(
                component, processor, services, NullSilencePolicy()
            )
        else:
            raise WiringError(f"unknown engine mode {self.config.mode!r}")
        self.runtimes[component.name] = runtime
        return runtime

    def wire_in(self, component_name: str, spec: WireSpec,
                external: bool = False) -> None:
        """Attach an input wire to a hosted component."""
        self.runtimes[component_name].add_in_wire(spec, external=external)
        self._wire_dst_local[spec.wire_id] = component_name

    def wire_out(self, component_name: str, spec: WireSpec,
                 port_name: Optional[str] = None) -> None:
        """Attach an output wire (data/call/ext_out) to a hosted component."""
        runtime = self.runtimes[component_name]
        runtime.add_out_wire(spec)
        retain = self.config.checkpoint_interval is not None and spec.kind != "ext_out"
        sender = runtime.out_senders[spec.wire_id]
        sender.retain = retain
        if isinstance(spec.delay_estimator, QueueCorrelatedDelayEstimator):
            sender.recent_window = spec.delay_estimator.window_ticks
        self._wire_src_local[spec.wire_id] = component_name
        if port_name is not None:
            port = runtime.component.ports().get(port_name)
            if port is None:
                raise WiringError(
                    f"{component_name}: unknown output port {port_name!r}"
                )
            if spec.kind == "reply":
                raise WiringError("reply wires are attached automatically")
            port.attach(spec)

    def wire_reply_out(self, component_name: str, spec: WireSpec) -> None:
        """Attach the sender side of a reply wire (the callee's end)."""
        runtime = self.runtimes[component_name]
        runtime.add_out_wire(spec)
        retain = self.config.checkpoint_interval is not None
        runtime.out_senders[spec.wire_id].retain = retain
        self._wire_src_local[spec.wire_id] = component_name

    def wire_reply_in(self, component_name: str, spec: WireSpec,
                      port_name: str) -> None:
        """Attach the receiver side of a reply wire (the caller's end)."""
        runtime = self.runtimes[component_name]
        runtime.add_reply_wire(spec)
        self._reply_dst_local[spec.wire_id] = component_name
        port = runtime.component.ports().get(port_name)
        if not isinstance(port, ServicePort):
            raise WiringError(
                f"{component_name}.{port_name} is not a service port"
            )
        port.attach_reply(spec)

    def start(self) -> None:
        """Begin periodic checkpointing and heartbeats (if configured)."""
        if self.config.checkpoint_interval is not None:
            if self.config.replica_id is None:
                raise RecoveryError(
                    f"{self.engine_id}: checkpointing requires a replica_id"
                )
            self.sim.after(
                self.config.checkpoint_interval,
                self._checkpoint_tick,
                f"cp:{self.engine_id}",
            )
        if self.config.heartbeat_interval is not None:
            from repro.runtime.detector import HeartbeatEmitter

            HeartbeatEmitter(self, self.config.heartbeat_interval).start()

    def halt(self) -> None:
        """Fail-stop: stop timers and go silent (state is lost)."""
        self.alive = False
        for runtime in self.runtimes.values():
            runtime.policy.stop()

    # ------------------------------------------------------------------
    # Transport callbacks
    # ------------------------------------------------------------------
    def _transmit(self, spec: WireSpec, msg) -> None:
        if not self.alive:
            return
        dst = self.router.endpoint(spec.wire_id, toward_src=False)
        self.network.send(self.node_id, dst, msg)

    def _send_control(self, spec: WireSpec, control, toward_src: bool) -> None:
        if not self.alive:
            return
        dst = self.router.endpoint(spec.wire_id, toward_src=toward_src)
        self.network.send(self.node_id, dst, control)

    def receive(self, item: Any) -> None:
        """Dispatch one item arriving from the network."""
        if not self.alive:
            return
        if isinstance(item, CallReply):
            name = self._reply_dst_local.get(item.wire_id)
            if name is None:
                raise TransportError(
                    f"{self.engine_id}: reply on unknown wire {item.wire_id}"
                )
            self.runtimes[name].on_reply_msg(item)
        elif isinstance(item, DataMessage):
            name = self._require_dst(item.wire_id)
            self.runtimes[name].on_data(item)
        elif isinstance(item, SilenceAdvance):
            name = self._wire_dst_local.get(item.wire_id)
            if name is not None:
                self.runtimes[name].on_silence(item)
            # Silence on reply wires is meaningless; drop quietly.
        elif isinstance(item, CuriosityProbe):
            name = self._require_src(item.wire_id)
            self.runtimes[name].on_probe(item.wire_id, item.want_vt)
        elif isinstance(item, ReplayRequest):
            name = self._require_src(item.wire_id)
            self.runtimes[name].replay_out_wire(item.wire_id, item.from_seq)
        elif isinstance(item, StableNotice):
            name = self._require_src(item.wire_id)
            self.runtimes[name].trim_out_wire(item.wire_id, item.through_seq)
        elif isinstance(item, CheckpointAck):
            self._on_checkpoint_ack(item)
        else:
            raise TransportError(f"{self.engine_id}: unexpected item {item!r}")

    def _require_dst(self, wire_id: int) -> str:
        name = self._wire_dst_local.get(wire_id)
        if name is None:
            raise TransportError(
                f"{self.engine_id}: data on unknown wire {wire_id}"
            )
        return name

    def _require_src(self, wire_id: int) -> str:
        name = self._wire_src_local.get(wire_id)
        if name is None:
            raise TransportError(
                f"{self.engine_id}: control for unknown out-wire {wire_id}"
            )
        return name

    # ------------------------------------------------------------------
    # Checkpointing (paper II.F.2)
    # ------------------------------------------------------------------
    def _next_interval(self) -> int:
        """The checkpoint period: adaptive under a recovery target."""
        if self.cadence is not None:
            return self.cadence.next_interval()
        return self.config.checkpoint_interval

    def _checkpoint_tick(self) -> None:
        if not self.alive:
            return
        interval = self._next_interval()
        if any(rt.mid_call for rt in self.runtimes.values()):
            # Generator frames cannot snapshot; retry shortly — but only
            # a bounded number of times, so a component stuck mid-call
            # surfaces as a counted stall instead of a silent hot loop.
            self._cp_retries += 1
            self.metrics.count("checkpoint.retries")
            if self._cp_retries >= self.config.checkpoint_max_retries:
                self.metrics.count("checkpoint.stalls")
                self._cp_retries = 0
                self.sim.after(interval, self._checkpoint_tick,
                               f"cp:{self.engine_id}")
            else:
                self.sim.after(max(1, interval // 10), self._checkpoint_tick,
                               f"cp-retry:{self.engine_id}")
            return
        self._cp_retries = 0
        force_full = False
        avoid_full = False
        if self.auditor is not None and self.auditor.due():
            outcome = self.auditor.audit_once()
            # A heal restarts the chain from healed state; a deferred
            # heal must not let a full capture launder the corruption
            # into the chain.
            force_full = outcome == "healed"
            avoid_full = outcome == "deferred"
        self.capture_checkpoint(force_full=force_full, avoid_full=avoid_full)
        self.sim.after(self._next_interval(), self._checkpoint_tick,
                       f"cp:{self.engine_id}")

    def capture_checkpoint(self, force_full: bool = False,
                           avoid_full: bool = False) -> int:
        """Capture and ship one soft checkpoint; returns its cp_seq."""
        if any(rt.mid_call for rt in self.runtimes.values()):
            raise SchedulingError(
                f"{self.engine_id}: cannot checkpoint mid-call"
            )
        self._cp_seq += 1
        incremental = self._cp_ever_full and (
            self._cp_seq % self.config.full_checkpoint_every != 0
        )
        if force_full:
            incremental = False
        elif avoid_full and self._cp_ever_full and not incremental:
            incremental = True
            self.metrics.count("audit.full_deferred")
        started = time.perf_counter()
        components = {
            name: rt.snapshot(incremental) for name, rt in self.runtimes.items()
        }
        for rt in self.runtimes.values():
            rt.component.state.mark_clean()
        self._cp_ever_full = True
        blob = cpser.dumps({"components": components})
        capture_us = (time.perf_counter() - started) * 1e6
        positions: Dict[int, int] = {}
        for rt in self.runtimes.values():
            for wid, wire in rt.in_wires.items():
                positions[wid] = wire.receiver.next_seq
            for wid, recv in rt.reply_receivers.items():
                positions[wid] = recv.next_seq
        self._cp_positions[self._cp_seq] = positions
        self._cp_captured_at[self._cp_seq] = self.sim.now
        for replica_id in self.config.replica_ids:
            self.network.send(
                self.node_id,
                replica_id,
                CheckpointData(self.engine_id, self._cp_seq, incremental,
                               blob),
            )
        self.metrics.count("checkpoints_captured")
        self.metrics.add("checkpoint_bytes", len(blob))
        if self.auditor is not None:
            self.auditor.note_checkpoint(self._cp_seq, incremental, blob)
        if self.cadence is not None:
            msgs = self.metrics.counter("messages_processed")
            span = (self.sim.now - self._last_cp_at
                    if self._last_cp_at is not None else 0)
            self.cadence.observe_checkpoint(
                span, msgs - self._msgs_at_last_cp, capture_us, len(blob)
            )
            self._msgs_at_last_cp = msgs
        self._last_cp_at = self.sim.now
        return self._cp_seq

    def _on_checkpoint_ack(self, ack: CheckpointAck) -> None:
        if ack.replica_id:
            # Group form: a checkpoint is stable only once *every*
            # follower holds it — trimming upstream buffers earlier
            # would strand a surviving-but-lagging follower's replay.
            acked = self._cp_acked.setdefault(ack.cp_seq, set())
            acked.add(ack.replica_id)
            if not set(self.config.replica_ids) <= acked:
                return
            self._cp_acked.pop(ack.cp_seq, None)
        captured_at = self._cp_captured_at.pop(ack.cp_seq, None)
        if captured_at is not None and self.cadence is not None:
            self.cadence.observe_ack(self.sim.now - captured_at)
        positions = self._cp_positions.pop(ack.cp_seq, None)
        if positions is None:
            return
        # Drop older pending positions too: a cumulative ack covers them.
        for seq in [s for s in self._cp_positions if s < ack.cp_seq]:
            del self._cp_positions[seq]
            self._cp_captured_at.pop(seq, None)
            self._cp_acked.pop(seq, None)
        for wire_id, next_seq in positions.items():
            if next_seq == 0:
                continue
            spec = self.router.spec(wire_id)
            self._send_control(spec, StableNotice(wire_id, next_seq - 1), True)
        self.metrics.count("checkpoints_stable")

    # ------------------------------------------------------------------
    # Failover support
    # ------------------------------------------------------------------
    def restore_components(self, snapshots: Dict[str, dict]) -> None:
        """Load materialized replica state into the (freshly wired) runtimes."""
        for name, runtime in self.runtimes.items():
            snap = snapshots.get(name)
            if snap is None:
                raise RecoveryError(
                    f"{self.engine_id}: checkpoint missing component {name!r}"
                )
            runtime.restore(snap)
            if self.fault_manager is not None:
                self.fault_manager.replay_into(runtime)

    def begin_recovery(self) -> None:
        """Request replay on every input wire and resume dispatching."""
        for runtime in self.runtimes.values():
            runtime.request_all_replays()
            self.sim.call_soon(runtime.maybe_dispatch,
                               f"resume:{runtime.component.name}")

    def bump_incarnation_epoch(self) -> None:
        """Advance the incarnation epoch after a self-heal.

        The epoch records that the engine's state was rewritten in
        place; the ``on_heal`` hook lets the hosting layer propagate the
        bump (the networked runtime re-registers the engine so peers see
        a fresh transport incarnation).
        """
        self.incarnation_epoch += 1
        self.metrics.count("incarnation_epoch_bumps")
        if self.on_heal is not None:
            self.on_heal()

    # ------------------------------------------------------------------
    # Calibration / determinism faults (paper II.G.4)
    # ------------------------------------------------------------------
    def _on_sample(self, runtime, handler_spec, features, estimated, actual) -> None:
        if not self.config.calibrate:
            return
        key = (runtime.component.name, handler_spec.input_name)
        tuning = self._tunings.get(key)
        if tuning is None:
            names = sorted(features) if features else []
            tuning = _HandlerTuning(
                names, self.config.drift_window, self.config.drift_threshold
            )
            self._tunings[key] = tuning
        if not features:
            features = {"__count__": 1}
        tuning.calibrator.add_sample(features, actual)
        tuning.monitor.observe(estimated, actual)
        tuning.samples_since_recalibration += 1
        if (
            tuning.monitor.drifting()
            and tuning.samples_since_recalibration
            >= self.config.recalibrate_cooldown_samples
            and self.fault_manager is not None
        ):
            result = tuning.calibrator.fit()
            new_estimator = result.to_estimator()
            self.fault_manager.recalibrate(
                runtime, handler_spec.input_name, new_estimator
            )
            tuning.samples_since_recalibration = 0

    def __repr__(self) -> str:
        state = "alive" if self.alive else "failed"
        return (f"<ExecutionEngine {self.engine_id} {state} "
                f"components={sorted(self.runtimes)}>")
