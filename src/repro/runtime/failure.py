"""Fault injection.

Drives the paper's failure model against a deployment: fail-stop engine
crashes ("causing one or more machines to stop, losing all state and all
messages in transit") and link failures ("causing loss, re-ordering, or
duplication of messages sent over physical links").
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RecoveryError
from repro.sim.kernel import ms


class FailureInjector:
    """Schedules engine crashes and link faults on a deployment."""

    def __init__(self, deployment):
        self.deployment = deployment

    # -- engine fail-stop ---------------------------------------------------
    def kill_engine(self, engine_id: str, at: Optional[int] = None,
                    detection_delay: int = ms(1)) -> None:
        """Fail-stop one engine at simulated time ``at`` (default: now).

        The engine halts (all volatile state gone), channels touching it
        reset (in-flight traffic lost), and after ``detection_delay`` the
        recovery manager promotes its replica.
        """
        sim = self.deployment.sim
        when = sim.now if at is None else at

        def _crash() -> None:
            engine = self.deployment.engines.get(engine_id)
            if engine is None or not engine.alive:
                raise RecoveryError(f"{engine_id}: not alive at crash time")
            engine.halt()
            self.deployment.network.fail_node(engine_id)
            if engine_id in self.deployment.detectors:
                # Organic detection: the heartbeat detector will notice
                # the silence and trigger recovery by itself.
                return
            self.deployment.recovery.engine_failed(
                engine_id, detection_delay=detection_delay
            )

        if when <= sim.now:
            sim.call_soon(_crash, f"kill:{engine_id}")
        else:
            sim.at(when, _crash, f"kill:{engine_id}")

    # -- link faults ----------------------------------------------------------
    def link_outage(self, src_id: str, dst_id: str, start: int,
                    duration: int) -> None:
        """Drop every frame on src->dst during [start, start+duration).

        The reliability protocol retransmits after the outage, so the
        application sees delay, not loss — unless an engine also dies,
        in which case TART's replay takes over.
        """
        sim = self.deployment.sim
        fault = self.deployment.network.link_fault(src_id, dst_id)

        def _down() -> None:
            fault.down = True

        def _up() -> None:
            fault.down = False

        sim.at(start, _down, f"link-down:{src_id}->{dst_id}")
        sim.at(start + duration, _up, f"link-up:{src_id}->{dst_id}")

    def set_link_impairment(self, src_id: str, dst_id: str,
                            loss_prob: float = 0.0,
                            dup_prob: float = 0.0) -> None:
        """Set steady-state loss/duplication probabilities on a link."""
        fault = self.deployment.network.link_fault(src_id, dst_id)
        fault.loss_prob = float(loss_prob)
        fault.dup_prob = float(dup_prob)
