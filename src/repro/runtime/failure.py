"""Fault injection.

Drives the paper's failure model against a deployment: fail-stop engine
crashes ("causing one or more machines to stop, losing all state and all
messages in transit") and link failures ("causing loss, re-ordering, or
duplication of messages sent over physical links").

Faults can be scheduled one call at a time, or as a whole *resolved
schedule* — the simulator-side half of the shared chaos schedule format
(:mod:`repro.chaos.schedule`): the same JSON fault script that the chaos
runner executes against a live multi-process cluster is lowered to
node-level events and applied here, so the fast deterministic simulation
doubles as the ground truth for every chaos scenario.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ChaosError, RecoveryError
from repro.sim.kernel import ms


class FailureInjector:
    """Schedules engine crashes and link faults on a deployment."""

    def __init__(self, deployment):
        self.deployment = deployment

    # -- engine fail-stop ---------------------------------------------------
    def kill_engine(self, engine_id: str, at: Optional[int] = None,
                    detection_delay: int = ms(1)) -> None:
        """Fail-stop one engine at simulated time ``at`` (default: now).

        The engine halts (all volatile state gone), channels touching it
        reset (in-flight traffic lost), and after ``detection_delay`` the
        recovery manager promotes its replica.
        """
        sim = self.deployment.sim
        when = sim.now if at is None else at

        def _crash() -> None:
            engine = self.deployment.engines.get(engine_id)
            if engine is None or not engine.alive:
                raise RecoveryError(f"{engine_id}: not alive at crash time")
            engine.halt()
            self.deployment.network.fail_node(engine_id)
            if engine_id in self.deployment.detectors:
                # Organic detection: the heartbeat detector will notice
                # the silence and trigger recovery by itself.
                return
            self.deployment.recovery.engine_failed(
                engine_id, detection_delay=detection_delay
            )

        if when <= sim.now:
            sim.call_soon(_crash, f"kill:{engine_id}")
        else:
            sim.at(when, _crash, f"kill:{engine_id}")

    # -- link faults ----------------------------------------------------------
    def link_outage(self, src_id: str, dst_id: str, start: int,
                    duration: int) -> None:
        """Drop every frame on src->dst during [start, start+duration).

        The reliability protocol retransmits after the outage, so the
        application sees delay, not loss — unless an engine also dies,
        in which case TART's replay takes over.
        """
        sim = self.deployment.sim
        fault = self.deployment.network.link_fault(src_id, dst_id)

        def _down() -> None:
            fault.down = True

        def _up() -> None:
            fault.down = False

        sim.at(start, _down, f"link-down:{src_id}->{dst_id}")
        sim.at(start + duration, _up, f"link-up:{src_id}->{dst_id}")

    def set_link_impairment(self, src_id: str, dst_id: str,
                            loss_prob: float = 0.0,
                            dup_prob: float = 0.0) -> None:
        """Set steady-state loss/duplication probabilities on a link."""
        fault = self.deployment.network.link_fault(src_id, dst_id)
        fault.loss_prob = float(loss_prob)
        fault.dup_prob = float(dup_prob)

    # -- shared schedule format ----------------------------------------------
    def apply_schedule(self, events: List[Dict]) -> None:
        """Apply a *resolved* chaos schedule to the simulated deployment.

        ``events`` is the node-level lowering of the shared JSON fault
        schedule (:meth:`repro.chaos.schedule.ChaosSchedule.sim_events`):
        dicts carrying ``kind``, an absolute ``at_ticks`` simulated time,
        and node-id targets.  Supported kinds:

        * ``kill`` — fail-stop the target engine (``node``);
        * ``partition`` — bidirectional outage between two node groups
          (``a_nodes`` x ``b_nodes``) for ``duration_ticks``;
        * ``impair`` — steady loss/duplication on one directed link;
        * ``corrupt`` — untracked state mutation on one engine
          (``node``, optional ``component``), visible only to the
          divergence audit.

        Timing-only faults of the live plane (latency, throttle, reset,
        half-open, SIGSTOP windows that end in SIGCONT) have no
        simulator lowering: the reliability protocol hides them from
        *content*, which is exactly what the determinism oracle checks,
        so the schedule resolver drops them before calling this.
        """
        for event in events:
            kind = event.get("kind")
            at = int(event.get("at_ticks", 0))
            if kind == "kill":
                self.kill_engine(event["node"], at=at)
            elif kind == "partition":
                duration = int(event["duration_ticks"])
                for a in event["a_nodes"]:
                    for b in event["b_nodes"]:
                        self.link_outage(a, b, at, duration)
                        self.link_outage(b, a, at, duration)
            elif kind == "impair":
                fault = self.deployment.network.link_fault(
                    event["src"], event["dst"]
                )
                loss = float(event.get("loss_prob", 0.0))
                dup = float(event.get("dup_prob", 0.0))
                sim = self.deployment.sim

                def _set(f=fault, lo=loss, du=dup) -> None:
                    f.loss_prob, f.dup_prob = lo, du

                sim.at(at, _set, f"impair:{event['src']}->{event['dst']}")
            elif kind == "corrupt":
                node_id = event["node"]
                component = event.get("component")
                sim = self.deployment.sim

                def _corrupt(n=node_id, c=component) -> None:
                    engine = self.deployment.engines.get(n)
                    if engine is None or not engine.alive:
                        return  # corrupting a dead engine is a no-op fault
                    from repro.runtime.audit import corrupt_component_state

                    corrupt_component_state(engine, c)

                if at <= sim.now:
                    sim.call_soon(_corrupt, f"corrupt:{node_id}")
                else:
                    sim.at(at, _corrupt, f"corrupt:{node_id}")
            else:
                raise ChaosError(f"unknown simulated fault kind {kind!r}")
