"""Experiment metrics.

A :class:`MetricSet` is a passive sink shared by every runtime object in
a deployment: counters (probe counts, out-of-order arrivals, pessimism
events), accumulators (total pessimism delay ticks), and latency samples
(end-to-end, per external message).  Experiments read summaries from it
after a run; nothing here feeds back into scheduling, so metrics cannot
perturb determinism.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.vt.time import TICKS_PER_US


class MetricSet:
    """Counters, accumulators, and latency samples for one run."""

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.accumulators: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._latencies: List[int] = []

    # -- write side ------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest observed value (last write wins).

        Gauges carry point-in-time control-loop state (e.g. the cadence
        controller's current interval) rather than monotonic totals.
        """
        self.gauges[name] = value

    def add(self, name: str, amount: int) -> None:
        """Add to an accumulator."""
        self.accumulators[name] = self.accumulators.get(name, 0) + amount

    def record_latency(self, birth_time: int, now: int) -> None:
        """Record one end-to-end latency sample in ticks."""
        self._latencies.append(now - birth_time)

    # -- read side -------------------------------------------------------
    def counter(self, name: str) -> int:
        """Counter value (0 if never incremented)."""
        return self.counters.get(name, 0)

    def accumulator(self, name: str) -> int:
        """Accumulator value (0 if never added to)."""
        return self.accumulators.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Latest gauge value (``default`` if never set)."""
        return self.gauges.get(name, default)

    @property
    def latencies(self) -> List[int]:
        """All latency samples in ticks, in completion order."""
        return list(self._latencies)

    def latency_count(self) -> int:
        """Number of completed end-to-end messages."""
        return len(self._latencies)

    def mean_latency_us(self) -> float:
        """Mean end-to-end latency in microseconds."""
        if not self._latencies:
            return float("nan")
        return sum(self._latencies) / len(self._latencies) / TICKS_PER_US

    def latency_percentile_us(self, q: float) -> float:
        """The q-percentile (0..100) latency in microseconds.

        Uses linear interpolation between closest ranks (the same
        definition as ``numpy.percentile``'s default), so small sample
        sets are not biased by nearest-rank rounding.
        """
        if not self._latencies:
            return float("nan")
        ordered = sorted(self._latencies)
        rank = min(1.0, max(0.0, q / 100.0)) * (len(ordered) - 1)
        lo = int(rank)
        frac = rank - lo
        value = ordered[lo]
        if frac:
            value += (ordered[lo + 1] - ordered[lo]) * frac
        return value / TICKS_PER_US

    def latency_std_us(self) -> float:
        """Standard deviation of latency in microseconds."""
        n = len(self._latencies)
        if n < 2:
            return 0.0
        mean = sum(self._latencies) / n
        var = sum((x - mean) ** 2 for x in self._latencies) / (n - 1)
        return math.sqrt(var) / TICKS_PER_US

    def channel_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-channel transport counters, grouped by destination node.

        The networked transport exports each outbound channel's fault /
        retransmit / epoch-reset counters as ``chan.<dst>.<name>``
        counters (see ``NetTransport.export_metrics``); this groups them
        back into ``{dst: {name: value}}`` for reports and invariant
        checks.  Empty for purely simulated runs.
        """
        grouped: Dict[str, Dict[str, int]] = {}
        for key, value in self.counters.items():
            if not key.startswith("chan."):
                continue
            dst, _, name = key[len("chan."):].rpartition(".")
            if dst:
                grouped.setdefault(dst, {})[name] = value
        return grouped

    def probes_per_message(self) -> float:
        """Curiosity probes divided by end-to-end messages completed."""
        if not self._latencies:
            return 0.0
        return self.counter("curiosity_probes") / len(self._latencies)

    def out_of_order_fraction(self) -> float:
        """Fraction of processed messages that arrived out of vt order."""
        processed = self.counter("messages_processed")
        if processed == 0:
            return 0.0
        return self.counter("out_of_order_arrivals") / processed

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers (for experiment tables)."""
        return {
            "messages": float(self.latency_count()),
            "mean_latency_us": self.mean_latency_us(),
            "p50_latency_us": self.latency_percentile_us(50),
            "p95_latency_us": self.latency_percentile_us(95),
            "latency_std_us": self.latency_std_us(),
            "curiosity_probes": float(self.counter("curiosity_probes")),
            "probes_per_message": self.probes_per_message(),
            "out_of_order_arrivals": float(self.counter("out_of_order_arrivals")),
            "pessimism_events": float(self.counter("pessimism_events")),
            "pessimism_delay_us": self.accumulator("pessimism_delay_ticks")
            / TICKS_PER_US,
            "duplicates_discarded": float(self.counter("duplicates_discarded")),
            "messages_replayed": float(self.counter("messages_replayed")),
            "determinism_faults": float(self.counter("determinism_faults")),
        }

    def dump_json(self) -> Dict:
        """The full registry as one JSON-safe document.

        Everything a run accumulated — counters, gauges, accumulators,
        the latency-percentile summary, and per-channel fault counters —
        in a strictly finite form (``NaN``/``inf`` become ``None`` so
        the output is valid strict JSON).  This is what ``--metrics-out``
        writes at shutdown and what flight-recorder bundles embed.
        """
        def finite(value):
            value = float(value)
            return value if math.isfinite(value) else None

        latency = {"count": self.latency_count()}
        if self._latencies:
            latency.update({
                "mean_us": finite(self.mean_latency_us()),
                "p50_us": finite(self.latency_percentile_us(50)),
                "p95_us": finite(self.latency_percentile_us(95)),
                "p99_us": finite(self.latency_percentile_us(99)),
                "p999_us": finite(self.latency_percentile_us(99.9)),
                "std_us": finite(self.latency_std_us()),
            })
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: finite(v)
                       for k, v in sorted(self.gauges.items())},
            "accumulators": {k: self.accumulators[k]
                             for k in sorted(self.accumulators)},
            "latency": latency,
            "channels": self.channel_counters(),
            "summary": {k: finite(v) for k, v in self.summary().items()},
        }

    def __repr__(self) -> str:
        return (f"MetricSet(messages={self.latency_count()}, "
                f"mean={self.mean_latency_us():.1f}us)")
