"""Component placement.

"A placement service assigns individual components to execution engines
within the distributed system" (paper II.C).  A :class:`Placement` is a
validated component→engine map; helpers build common layouts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import WiringError


class Placement:
    """A validated assignment of components to engines."""

    def __init__(self, assignment: Dict[str, str]):
        if not assignment:
            raise WiringError("placement is empty")
        self._assignment = dict(assignment)

    def engine_of(self, component: str) -> str:
        """Engine hosting ``component``."""
        try:
            return self._assignment[component]
        except KeyError:
            raise WiringError(f"component {component!r} is not placed") from None

    def engines(self) -> List[str]:
        """All engine ids, sorted."""
        return sorted(set(self._assignment.values()))

    def components_on(self, engine_id: str) -> List[str]:
        """Components hosted by one engine, sorted."""
        return sorted(
            c for c, e in self._assignment.items() if e == engine_id
        )

    def validate_components(self, component_names: Iterable[str]) -> None:
        """Check the placement covers exactly the given components."""
        names = set(component_names)
        placed = set(self._assignment)
        missing = names - placed
        extra = placed - names
        if missing:
            raise WiringError(f"unplaced components: {sorted(missing)}")
        if extra:
            raise WiringError(f"placement of unknown components: {sorted(extra)}")

    def items(self):
        """(component, engine) pairs."""
        return self._assignment.items()

    def __repr__(self) -> str:
        return f"Placement({self._assignment})"


def single_engine_placement(component_names: Iterable[str],
                            engine_id: str = "engine0") -> Placement:
    """Everything on one engine (the paper's simulation studies)."""
    return Placement({name: engine_id for name in component_names})


def round_robin_placement(component_names: Iterable[str],
                          engine_ids: List[str]) -> Placement:
    """Spread components across engines round-robin."""
    if not engine_ids:
        raise WiringError("no engines to place onto")
    names = list(component_names)
    return Placement({
        name: engine_ids[i % len(engine_ids)] for i, name in enumerate(names)
    })
