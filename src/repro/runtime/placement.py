"""Component placement.

"A placement service assigns individual components to execution engines
within the distributed system" (paper II.C).  A :class:`Placement` is a
validated component→engine map; helpers build common layouts.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import WiringError


class Placement:
    """A validated assignment of components to engines."""

    def __init__(self, assignment: Dict[str, str]):
        if not assignment:
            raise WiringError("placement is empty")
        self._assignment = dict(assignment)

    def engine_of(self, component: str) -> str:
        """Engine hosting ``component``."""
        try:
            return self._assignment[component]
        except KeyError:
            raise WiringError(f"component {component!r} is not placed") from None

    def engines(self) -> List[str]:
        """All engine ids, sorted."""
        return sorted(set(self._assignment.values()))

    def components_on(self, engine_id: str) -> List[str]:
        """Components hosted by one engine, sorted."""
        return sorted(
            c for c, e in self._assignment.items() if e == engine_id
        )

    def validate_components(self, component_names: Iterable[str]) -> None:
        """Check the placement covers exactly the given components."""
        names = set(component_names)
        placed = set(self._assignment)
        missing = names - placed
        extra = placed - names
        if missing:
            raise WiringError(f"unplaced components: {sorted(missing)}")
        if extra:
            raise WiringError(f"placement of unknown components: {sorted(extra)}")

    def items(self):
        """(component, engine) pairs."""
        return self._assignment.items()

    def __repr__(self) -> str:
        return f"Placement({self._assignment})"


def follower_node_id(engine_id: str, rank: int = 0) -> str:
    """Node id of one follower replica of a replication group.

    Rank 0 keeps the legacy ``replica:<engine>`` id (single-replica
    deployments are a 1-follower group); higher ranks append ``.<rank>``.
    Engine ids must not contain ``.`` for the ranked form to stay
    unambiguous — the cluster spec validation enforces that.
    """
    if rank < 0:
        raise WiringError(f"follower rank must be >= 0, got {rank}")
    base = f"replica:{engine_id}"
    return base if rank == 0 else f"{base}.{rank}"


def follower_node_ids(engine_id: str, count: int) -> List[str]:
    """Follower node ids of one group, in promotion (rank) order."""
    return [follower_node_id(engine_id, rank) for rank in range(count)]


def single_engine_placement(component_names: Iterable[str],
                            engine_id: str = "engine0") -> Placement:
    """Everything on one engine (the paper's simulation studies)."""
    return Placement({name: engine_id for name in component_names})


def round_robin_placement(component_names: Iterable[str],
                          engine_ids: List[str]) -> Placement:
    """Spread components across engines round-robin."""
    if not engine_ids:
        raise WiringError("no engines to place onto")
    names = list(component_names)
    return Placement({
        name: engine_ids[i % len(engine_ids)] for i, name in enumerate(names)
    })


def _rendezvous_weight(engine_id: str, key: str) -> bytes:
    return hashlib.sha1(f"{engine_id}\x00{key}".encode("utf-8")).digest()


def rendezvous_owner(key: str, engine_ids: Iterable[str]) -> str:
    """The engine owning ``key`` under rendezvous (HRW) hashing.

    Each engine scores ``sha1(engine || key)``; the highest score wins
    (ties broken by engine id, though sha1 ties are not expected).  The
    choice depends only on the *set* of engines, never their order, and
    removing an engine only reassigns the keys it owned — every other
    key keeps its previous owner.  Hashing goes through :mod:`hashlib`
    so the assignment is identical across processes and runs regardless
    of ``PYTHONHASHSEED``.
    """
    engines = list(engine_ids)
    if not engines:
        raise WiringError("no engines to place onto")
    return max(engines, key=lambda e: (_rendezvous_weight(e, key), e))


def consistent_hash_placement(
    component_names: Iterable[str],
    engine_ids: List[str],
    group_key: Optional[Callable[[str], str]] = None,
) -> Placement:
    """Place components on engines by rendezvous (consistent) hashing.

    ``group_key`` maps a component name to its hash key; components
    sharing a key are co-located on one engine (e.g. one pipeline lane's
    stages travel together so a shard failure stalls only that lane).
    The default keys each component by its own name.
    """
    if not engine_ids:
        raise WiringError("no engines to place onto")
    if len(set(engine_ids)) != len(engine_ids):
        raise WiringError(f"duplicate engine ids: {engine_ids}")
    keyed = group_key or (lambda name: name)
    return Placement({
        name: rendezvous_owner(keyed(name), engine_ids)
        for name in component_names
    })
