"""Continuous divergence audit with optional self-healing.

The chaos plane's byte-identity invariant checks determinism *after* a
run; nothing checks it *during* one.  Yet the recovery protocol's whole
correctness argument rests on an equivalence the runtime never
verifies: the state a promoted replica would rebuild (last full
checkpoint chain + deltas + log replay) must equal the state the live
engine actually has.  An untracked mutation — a bit flip, an
out-of-band write that bypasses the dirty-tracking cells — breaks that
equivalence silently: deltas never carry it, so the replica diverges
from the live engine and every future failover resurrects a state the
live run never produced.

:class:`DivergenceAuditor` turns the equivalence into a runtime
invariant.  It mirrors the engine's shipped checkpoint chain (decoding
the very bytes the replica receives) and, at each checkpoint boundary,
rolls the chain forward with a fresh incremental delta — exactly what a
replica-plus-replay would compute, because a delta carries every
*tracked* mutation since the last capture.  The rebuilt state is then
compared component-by-component against the live engine's canonical
:mod:`repro.runtime.checkpoint` bytes:

* equal bytes — the recovery path is proven equivalent to the live
  state *right now*, not just at test time;
* differing bytes — some mutation escaped tracking.  In ``raise`` mode
  the auditor throws a structured
  :class:`~repro.errors.DivergenceError`; in ``heal`` mode it
  quarantines the live cells, installs the rebuilt snapshot (the
  checkpoint chain is the durable truth — the corrupted live copy is
  the replica that must yield), bumps the engine's incarnation epoch,
  and lets the interrupted capture proceed as a *full* checkpoint so
  the chain restarts from healed state.

The audit is a pure read unless it heals, and healing restores
byte-identical pre-corruption state at a message boundary, so audited
runs produce byte-identical output streams to unaudited ones.

Detection limits: a corruption that *does* go through the cell API (and
is therefore dirty-tracked) is indistinguishable from legitimate
computation without re-executing handlers, and is faithfully shipped to
the replica — live and rebuilt stay equal.  The auditor catches
exactly the class of faults that silently breaks recovery: divergence
between the live state and its checkpointed reconstruction.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.core.state import MapCell, ValueCell
from repro.errors import DivergenceError, StateError
from repro.runtime import checkpoint as cpser
from repro.runtime.state_merge import fold_chain, merge_component_snapshots

AUDIT_MODES = ("off", "raise", "heal")

#: The foreign key planted by :func:`corrupt_component_state`.  Chosen to
#: collide with nothing an application would store.
CORRUPTION_KEY = "__chaos_bitflip__"


class DivergenceAuditor:
    """Audits one engine's live state against its checkpoint chain."""

    def __init__(self, engine, mode: str = "heal", every: int = 1,
                 cadence=None):
        if mode not in ("raise", "heal"):
            raise StateError(f"unknown audit mode {mode!r}")
        if every < 1:
            raise StateError("audit_every must be >= 1")
        self.engine = engine
        self.mode = mode
        self.every = int(every)
        self.cadence = cadence
        #: Materialized chain: component name -> full snapshot dict, or
        #: None until the first checkpoint is mirrored.
        self._base: Optional[Dict[str, dict]] = None
        self._base_cp_seq = -1
        self._base_captured_at = -1
        self._captures_since_audit = 0
        # Outcome counters (also exported as metrics / gauges).
        self.checks = 0
        self.divergences = 0
        self.heals = 0
        self.deferred = 0

    # -- chain mirroring -------------------------------------------------
    def note_checkpoint(self, cp_seq: int, incremental: bool,
                        blob: bytes) -> None:
        """Mirror one shipped checkpoint (the same bytes the replica got)."""
        decoded = cpser.loads(blob)["components"]
        if not incremental or self._base is None:
            if incremental:
                # Promotion or late attach: deltas before our first full
                # checkpoint cannot be anchored; wait for the next full.
                return
            self._base = dict(decoded)
        else:
            self._base = fold_chain(self._base, [decoded])
        self._base_cp_seq = cp_seq
        self._base_captured_at = self.engine.sim.now
        self._captures_since_audit += 1

    # -- audit -----------------------------------------------------------
    def due(self) -> bool:
        """Whether an audit should run before the next capture."""
        return (self._base is not None
                and self._captures_since_audit >= self.every)

    def audit_once(self) -> str:
        """Audit now (at a checkpoint boundary); returns the outcome.

        Outcomes: ``"clean"`` (live equals rebuild), ``"healed"``
        (divergence found and repaired — the caller must follow with a
        *full* checkpoint), ``"deferred"`` (divergence found but a
        single-segment handler is in flight, so an in-place restore is
        unsafe; the caller must avoid taking a full checkpoint, which
        would launder the corruption into the chain, and retry at the
        next boundary).  In ``raise`` mode a divergence raises
        :class:`~repro.errors.DivergenceError` instead.
        """
        engine = self.engine
        metrics = engine.metrics
        if self._base is None:
            raise StateError(f"{engine.engine_id}: no chain to audit against")
        self._captures_since_audit = 0
        started = time.perf_counter()
        # Roll the mirrored chain forward with a fresh delta: this is the
        # state a replica-plus-replay would reach at this boundary.
        rebuilt: Dict[str, dict] = {}
        diverged = []
        for name, rt in engine.runtimes.items():
            delta = rt.snapshot(incremental=True)
            rebuilt[name] = merge_component_snapshots(self._base[name], delta)
            live = rt.snapshot(incremental=False)
            if cpser.dumps(rebuilt[name]) != cpser.dumps(live):
                diverged.append(name)
        rebuild_us = (time.perf_counter() - started) * 1e6
        self.checks += 1
        metrics.count("audit.checks")
        metrics.gauge("audit.rebuild_us", rebuild_us)
        if self.cadence is not None:
            span = engine.sim.now - self._base_captured_at
            self.cadence.observe_replay(span, rebuild_us / 1000.0)
        if not diverged:
            return "clean"
        self.divergences += 1
        metrics.count("audit.divergences")
        if self.mode == "raise":
            raise DivergenceError(engine.engine_id, self._base_cp_seq,
                                  diverged)
        if any(rt.busy_info is not None for rt in engine.runtimes.values()):
            # An in-flight handler has a scheduled completion event tied
            # to the current runtime internals; restoring under it would
            # double-execute.  Detection stands; healing waits.
            self.deferred += 1
            metrics.count("audit.deferred")
            return "deferred"
        self._heal(rebuilt, diverged)
        return "healed"

    def _heal(self, rebuilt: Dict[str, dict], diverged) -> None:
        """Quarantine live state and install the rebuilt snapshots."""
        engine = self.engine
        engine.metrics.count("audit.heals", 1)
        engine.metrics.count("audit.healed_components", len(diverged))
        self.heals += 1
        engine.restore_components(rebuilt)
        # Restored pending queues need a dispatch nudge (normally an
        # arrival event provides it); harmless when queues are empty.
        for rt in engine.runtimes.values():
            engine.sim.call_soon(rt.maybe_dispatch,
                                 f"audit-heal:{rt.component.name}")
        engine.bump_incarnation_epoch()
        engine.metrics.gauge("audit.incarnation_epoch",
                             float(engine.incarnation_epoch))

    def report(self) -> Dict[str, Any]:
        """Structured outcome summary (exported by the net runtime)."""
        return {
            "mode": self.mode,
            "checks": self.checks,
            "divergences": self.divergences,
            "heals": self.heals,
            "deferred": self.deferred,
            "incarnation_epoch": self.engine.incarnation_epoch,
        }


def corrupt_component_state(engine, component: Optional[str] = None,
                            value: Any = 0) -> str:
    """Corrupt one component's live state, bypassing dirty tracking.

    Models a bit flip / wild write landing in checkpointable state:
    plants :data:`CORRUPTION_KEY` directly in a :class:`MapCell`'s
    backing dict (falling back to an in-place :class:`ValueCell`
    overwrite when a component has no map), without marking anything
    dirty — so the next delta checkpoint will *not* carry it and only
    the divergence audit can see it.  Returns ``"component.cell"``
    naming the victim.  Used by the chaos plane and by tests.
    """
    if component is not None:
        rt = engine.runtimes.get(component)
        if rt is None:
            raise StateError(
                f"{engine.engine_id}: no component {component!r} to corrupt"
            )
        candidates = [rt]
    else:
        candidates = list(engine.runtimes.values())
    for rt in candidates:
        for cell_name, cell in rt.component.state.cells().items():
            if isinstance(cell, MapCell):
                cell._data[CORRUPTION_KEY] = value
                engine.metrics.count("chaos.corruptions")
                return f"{rt.component.name}.{cell_name}"
    for rt in candidates:
        for cell_name, cell in rt.component.state.cells().items():
            if isinstance(cell, ValueCell):
                old = cell._value
                cell._value = (old ^ 1) if isinstance(old, int) else value
                engine.metrics.count("chaos.corruptions")
                return f"{rt.component.name}.{cell_name}"
    raise StateError(f"{engine.engine_id}: no corruptible cell found")
