"""Flight recorder: self-describing ``.replay`` bundles of recorded runs.

The paper's determinism guarantee means the pure simulation of a
:class:`~repro.net.topology.ClusterSpec` *is* the run: the networked
cluster is byte-identical to it (that equivalence is what the chaos
judge asserts).  So recording a run means recording its simulated twin —
the spec, the seeded workload or external message logs, the chaos
schedule, the checkpoint-chain manifests, and a globally indexed
RepCl-annotated event stream from an attached
:class:`~repro.vt.repcl.ReplayClockTracer`.

A bundle is a directory::

    <name>.replay/
      manifest.json     format/source/seed/ran_until/replay_mode/...
      spec.json         ClusterSpec JSON, verbatim
      schedule.json     chaos schedule (chaos bundles only)
      events.bin        RepCl-annotated event stream (canonical serializer)
      external.bin      per-input external message logs
      state.bin         final per-component state cells + digests
      streams.bin       per-sink effective output streams
      checkpoints.json  per-engine checkpoint-chain manifests
      metrics.json      MetricSet.dump_json() of the recorded run
      verdict.json      judge verdict (failure bundles)

``repro.tools.timetravel`` re-executes any bundle to an arbitrary VT and
answers causal queries over the event stream; see ``docs/timetravel.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import TartError
from repro.runtime import checkpoint as cpser
from repro.sim.kernel import ms
from repro.vt.repcl import ReplayClockTracer

BUNDLE_FORMAT = 1
BUNDLE_SUFFIX = ".replay"

#: Drain margin after the last replayed external message (mirrors the
#: gateway replay-reference oracle).
REPLAY_DRAIN_TICKS = ms(2000)


class BundleError(TartError):
    """A ``.replay`` bundle is missing, malformed, or unsupported."""


# ----------------------------------------------------------------------
# Pure encode/decode helpers (round-trip property-tested)
# ----------------------------------------------------------------------

def encode_events(events: List[Dict]) -> bytes:
    return cpser.dumps({"format": BUNDLE_FORMAT, "events": list(events)})


def decode_events(blob: bytes) -> List[Dict]:
    doc = cpser.loads(blob)
    if doc.get("format") != BUNDLE_FORMAT:
        raise BundleError(f"unsupported event-stream format "
                          f"{doc.get('format')!r}")
    return list(doc["events"])


def encode_external(logs: Dict[str, List[Tuple]],
                    truncated: Optional[Dict[str, int]] = None) -> bytes:
    return cpser.dumps({
        "format": BUNDLE_FORMAT,
        "logs": {input_id: [tuple(entry) for entry in entries]
                 for input_id, entries in logs.items()},
        "truncated": dict(truncated or {}),
    })


def decode_external(blob: bytes) -> Dict[str, List[Tuple]]:
    doc = cpser.loads(blob)
    if doc.get("format") != BUNDLE_FORMAT:
        raise BundleError(f"unsupported external-log format "
                          f"{doc.get('format')!r}")
    return {input_id: [tuple(entry) for entry in entries]
            for input_id, entries in doc["logs"].items()}


def capture_state(deployment) -> Dict:
    """Canonical per-component state document (the audit snapshot form).

    ``cpser.dumps`` of this document is the byte-identity target for
    ``timetravel seek``: two deployments that processed the same logged
    inputs to the same VT must produce identical bytes.
    """
    components: Dict[str, Dict] = {}
    for engine in deployment.engines.values():
        for name, runtime in engine.runtimes.items():
            entry: Dict = {
                "component_vt": runtime.component_vt,
                "mid_call": bool(runtime.mid_call),
            }
            if not runtime.mid_call:
                entry["cells"] = runtime.component.state.full_snapshot()
            components[name] = entry
    return {
        "components": {name: components[name] for name in sorted(components)},
        "digests": deployment.state_digest(),
    }


def external_logs_of(deployment) -> Tuple[Dict[str, List[Tuple]],
                                          Dict[str, int]]:
    """Surviving (seq, vt, payload) entries per ingress, plus GC marks."""
    logs: Dict[str, List[Tuple]] = {}
    truncated: Dict[str, int] = {}
    for input_id, ingress in deployment.ingresses.items():
        entries = [entry for entry in ingress.log._entries
                   if entry is not None]
        logs[input_id] = [tuple(entry) for entry in entries]
        truncated[input_id] = ingress.log._truncated_through
    return logs, truncated


def checkpoint_manifests(deployment) -> Dict:
    """Per-engine checkpoint-chain manifests (shape, not blobs)."""
    manifests: Dict[str, Dict] = {}
    for engine_id, group in deployment.followers.items():
        manifests[engine_id] = {
            f"rank{rank}": {
                "node": replica.node_id,
                "chain_len": replica.chain_len,
                "chain_bytes": replica.chain_bytes,
                "last_cp_seq": replica.last_cp_seq,
                "entries": [[cp_seq, bool(incremental)]
                            for cp_seq, incremental, _ in replica._chain],
            }
            for rank, replica in enumerate(group)
        }
    return manifests


# ----------------------------------------------------------------------
# Re-executable deployments
# ----------------------------------------------------------------------

def prepare_run(spec, schedule=None,
                external: Optional[Dict[str, List[Tuple]]] = None):
    """A deployment ready to (re-)execute a recorded run.

    Workload-bearing specs regenerate their input from the deployment's
    seeded producer streams (byte-identical by construction); specs
    without a workload (gateway runs) replay the recorded external logs
    by offering each payload at its recorded virtual time — per-wire
    ingress stamps are strictly increasing, so the stamp is reproduced
    exactly.  A chaos schedule, when present, is lowered onto the
    simulator through the same :class:`FailureInjector` path live runs
    are judged against.
    """
    from repro.net.topology import attach_workload, build_deployment
    from repro.runtime.failure import FailureInjector

    dep = build_deployment(spec)
    if spec.workload:
        attach_workload(dep, spec)
    elif external:
        for input_id, entries in sorted(external.items()):
            ingress = dep.ingresses.get(input_id)
            if ingress is None:
                raise BundleError(f"bundle replays unknown input "
                                  f"{input_id!r}")
            for _seq, vt, payload in entries:
                dep.sim.at(vt, (lambda ing=ingress, p=payload:
                                ing.offer(p)))
    if schedule is not None:
        FailureInjector(dep).apply_schedule(schedule.sim_events(spec))
    return dep


def default_until(spec, schedule=None,
                  external: Optional[Dict[str, List[Tuple]]] = None) -> int:
    """The recorded run's horizon (mirrors reference/chaos/gateway runs)."""
    if spec.workload:
        span = 2 * spec.workload_span_ticks()
        if schedule is not None:
            return span + int(ms(schedule.end_ms())) + ms(1000)
        return span + ms(500)
    last_vt = max((vt for entries in (external or {}).values()
                   for _seq, vt, _p in entries), default=0)
    return last_vt + REPLAY_DRAIN_TICKS


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------

class FlightRecorder:
    """Attach to a deployment, run it, and persist a ``.replay`` bundle."""

    def __init__(self, spec, seed: Optional[int] = None,
                 scenario: Optional[str] = None, schedule=None,
                 source: str = "sim"):
        self.spec = spec
        self.seed = seed
        self.scenario = scenario
        self.schedule = schedule
        self.source = source
        self.tracer = ReplayClockTracer()
        self._deployment = None
        self._external_override: Optional[Dict[str, List[Tuple]]] = None

    def attach(self, deployment) -> "FlightRecorder":
        self._deployment = deployment
        self.tracer.attach(deployment)
        return self

    def set_external(self, logs: Dict[str, List[Tuple]]) -> None:
        """Record these external logs instead of the ingress logs (used
        for gateway bundles, whose admission shadow log is authoritative
        and immune to checkpoint-driven truncation)."""
        self._external_override = logs

    def finalize(self, out_dir, verdict: Optional[Dict] = None) -> Path:
        if self._deployment is None:
            raise BundleError("FlightRecorder.finalize before attach")
        dep = self._deployment
        path = Path(out_dir)
        if path.suffix != BUNDLE_SUFFIX:
            path = path.with_name(path.name + BUNDLE_SUFFIX)
        path.mkdir(parents=True, exist_ok=True)

        if self._external_override is not None:
            logs, truncated = dict(self._external_override), {}
        else:
            logs, truncated = external_logs_of(dep)
        replay_mode = "workload" if self.spec.workload else "external"

        from repro.net.topology import stream_of

        streams = {sink: stream_of(consumer)
                   for sink, consumer in dep.consumers.items()}
        manifest = {
            "format": BUNDLE_FORMAT,
            "kind": "replay-bundle",
            "source": self.source,
            "seed": self.seed,
            "scenario": self.scenario,
            "ran_until": dep.sim.now,
            "replay_mode": replay_mode,
            "engines": list(self.spec.engines),
            "components": sorted(dep.app.component_names()),
            "sinks": sorted(dep.consumers),
            "event_count": len(self.tracer.events),
            "external_count": sum(len(v) for v in logs.values()),
            "has_schedule": self.schedule is not None,
        }
        (path / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        (path / "spec.json").write_text(self.spec.to_json() + "\n")
        if self.schedule is not None:
            (path / "schedule.json").write_text(
                self.schedule.to_json() + "\n")
        (path / "events.bin").write_bytes(encode_events(self.tracer.events))
        (path / "external.bin").write_bytes(encode_external(logs, truncated))
        (path / "state.bin").write_bytes(cpser.dumps(capture_state(dep)))
        (path / "streams.bin").write_bytes(cpser.dumps(streams))
        (path / "checkpoints.json").write_text(
            json.dumps(checkpoint_manifests(dep), indent=2, sort_keys=True)
            + "\n")
        (path / "metrics.json").write_text(
            json.dumps(dep.metrics.dump_json(), indent=2, sort_keys=True)
            + "\n")
        if verdict is not None:
            (path / "verdict.json").write_text(
                json.dumps(verdict, indent=2, sort_keys=True, default=str)
                + "\n")
        return path


def record_run(spec, out_dir, schedule=None,
               external: Optional[Dict[str, List[Tuple]]] = None,
               seed: Optional[int] = None, scenario: Optional[str] = None,
               source: str = "sim", until: Optional[int] = None,
               verdict: Optional[Dict] = None) -> Path:
    """Execute the spec's simulated twin under a recorder; write a bundle.

    Recording re-runs the simulation rather than instrumenting the live
    process tree: determinism makes the rerun byte-identical (asserted
    by the traced-vs-untraced identity tests), and it keeps the hot path
    observation-free.
    """
    recorder = FlightRecorder(spec, seed=seed, scenario=scenario,
                              schedule=schedule, source=source)
    dep = prepare_run(spec, schedule=schedule, external=external)
    recorder.attach(dep)
    if external and not spec.workload:
        recorder.set_external(external)
    dep.run(until=until if until is not None
            else default_until(spec, schedule, external))
    return recorder.finalize(out_dir, verdict=verdict)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

class ReplayBundle:
    """A loaded ``.replay`` bundle (see module docstring for layout)."""

    def __init__(self, path: Path, manifest: Dict, spec, schedule,
                 events: List[Dict], external: Dict[str, List[Tuple]],
                 state_bytes: bytes, streams: Dict,
                 checkpoints: Dict, metrics: Optional[Dict],
                 verdict: Optional[Dict]):
        self.path = path
        self.manifest = manifest
        self.spec = spec
        self.schedule = schedule
        self.events = events
        self.external = external
        self.state_bytes = state_bytes
        self.streams = streams
        self.checkpoints = checkpoints
        self.metrics = metrics
        self.verdict = verdict

    @property
    def ran_until(self) -> int:
        return int(self.manifest["ran_until"])

    @property
    def state(self) -> Dict:
        return cpser.loads(self.state_bytes)

    @classmethod
    def load(cls, bundle_dir) -> "ReplayBundle":
        from repro.chaos.schedule import ChaosSchedule
        from repro.net.topology import ClusterSpec

        path = Path(bundle_dir)
        if not (path / "manifest.json").exists():
            alt = path.with_name(path.name + BUNDLE_SUFFIX)
            if (alt / "manifest.json").exists():
                path = alt
            else:
                raise BundleError(f"no replay bundle at {path}")
        manifest = json.loads((path / "manifest.json").read_text())
        if manifest.get("format") != BUNDLE_FORMAT:
            raise BundleError(f"unsupported bundle format "
                              f"{manifest.get('format')!r}")
        spec = ClusterSpec.from_json((path / "spec.json").read_text())
        schedule = None
        if (path / "schedule.json").exists():
            schedule = ChaosSchedule.from_json(
                (path / "schedule.json").read_text())
        events = decode_events((path / "events.bin").read_bytes())
        external = decode_external((path / "external.bin").read_bytes())
        state_bytes = (path / "state.bin").read_bytes()
        streams = cpser.loads((path / "streams.bin").read_bytes())
        checkpoints = json.loads((path / "checkpoints.json").read_text())
        metrics = None
        if (path / "metrics.json").exists():
            metrics = json.loads((path / "metrics.json").read_text())
        verdict = None
        if (path / "verdict.json").exists():
            verdict = json.loads((path / "verdict.json").read_text())
        return cls(path, manifest, spec, schedule, events, external,
                   state_bytes, streams, checkpoints, metrics, verdict)
