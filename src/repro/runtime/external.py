"""External producers, ingress timestamping, and external consumers.

The application boundary (paper II.A): "A component-based application
consists of a network of components that include at least one external
producer of input, and at least one external consumer."

* :class:`ExternalIngress` — the stable front door of one external input
  wire.  It stamps each arriving payload with the current real time as
  its virtual time, logs it (the only logging in the system), and hands
  it to the destination engine.  The ingress survives engine failure and
  serves replay requests from its log.
* :class:`PoissonProducer` — the workload generator used throughout the
  evaluation ("External clients fed messages into the Sender[i]
  components via a Poisson process").
* :class:`ExternalConsumer` — records delivered outputs, measures
  end-to-end latency, and separates *effective* output from output
  stutter (re-deliveries after failover, which "external clients can
  easily compensate for").
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.message import CuriosityProbe, DataMessage, ReplayRequest, SilenceAdvance, StableNotice
from repro.core.ports import WireSpec
from repro.errors import TransportError
from repro.runtime.message_log import ExternalMessageLog
from repro.sim.distributions import Distribution, Exponential
from repro.vt.ticks import TickStreamReceiver


class ExternalIngress:
    """Stable ingress node for one external input wire."""

    def __init__(self, node_id: str, sim, network, spec: WireSpec,
                 dst_engine_id: str, log_latency: int = 0):
        self.node_id = node_id
        self.alive = True  # stable: never fails in the single-failure model
        self.sim = sim
        self.network = network
        self.spec = spec
        self.dst_engine_id = dst_engine_id
        self.log = ExternalMessageLog(spec.wire_id, log_latency)

    def offer(self, payload: Any,
              stamp: Optional[Callable[[int, Any], Any]] = None) -> int:
        """Timestamp, log, and deliver one external message.

        The virtual time is the real arrival time — safe because the
        message is logged first.  Two arrivals in the same tick get
        consecutive virtual times (each tick on a wire carries at most
        one data tick); the bump is a deterministic function of the
        arrival sequence, so replay reproduces it from the log.
        Returns the assigned sequence number.

        ``stamp`` optionally rewrites the payload as a function of the
        assigned virtual time *before* it is logged (the gateway embeds
        ``birth = vt`` so latency is measured from the admission stamp).
        Because stamping happens pre-log, replaying the log re-delivers
        the already-stamped payload byte-identically — a re-delivery can
        never be stamped twice.
        """
        vt = max(self.sim.now, self.log.last_vt() + 1)
        if stamp is not None:
            payload = stamp(vt, payload)
        seq = self.log.append(vt, payload)
        self._deliver(DataMessage(self.spec.wire_id, seq, vt, payload))
        return seq

    def _deliver(self, msg: DataMessage) -> None:
        self.network.send(self.node_id, self.dst_engine_id, msg)

    def receive(self, item: Any) -> None:
        """Handle control traffic addressed to this ingress."""
        if isinstance(item, ReplayRequest):
            for seq, vt, payload in self.log.entries_from(item.from_seq):
                self._deliver(DataMessage(self.spec.wire_id, seq, vt, payload))
            # Trailing advance: sound because it travels FIFO behind the
            # replayed data, and it tells the restored engine the replay
            # is complete (re-enabling its local external-horizon bound).
            self.network.send(
                self.node_id, self.dst_engine_id,
                SilenceAdvance(self.spec.wire_id, self.sim.now - 1),
            )
            return
        if isinstance(item, CuriosityProbe):
            # Any future external message is stamped >= now, so the wire
            # is provably silent through now - 1.
            self.network.send(
                self.node_id, self.dst_engine_id,
                SilenceAdvance(self.spec.wire_id, self.sim.now - 1),
            )
            return
        if isinstance(item, StableNotice):
            self.log.truncate_through(item.through_seq)
            return
        raise TransportError(f"ingress {self.node_id}: unexpected {item!r}")


class PoissonProducer:
    """Feeds an ingress from a Poisson (or arbitrary-renewal) process."""

    def __init__(self, sim, rng, ingress: ExternalIngress,
                 payload_factory: Callable[[Any, int, int], Any],
                 mean_interarrival: int,
                 interarrival: Optional[Distribution] = None,
                 max_messages: Optional[int] = None,
                 stop_at: Optional[int] = None):
        self.sim = sim
        self.rng = rng
        self.ingress = ingress
        self.payload_factory = payload_factory
        self.interarrival = interarrival or Exponential(mean_interarrival)
        self.max_messages = max_messages
        self.stop_at = stop_at
        self.produced = 0
        self._stopped = False

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def stop(self) -> None:
        """Produce no further messages."""
        self._stopped = True

    def _schedule_next(self) -> None:
        gap = self.interarrival.sample(self.rng)
        self.sim.after(gap, self._produce, f"producer:{self.ingress.node_id}")

    def _produce(self) -> None:
        if self._stopped:
            return
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return
        if self.max_messages is not None and self.produced >= self.max_messages:
            return
        payload = self.payload_factory(self.rng, self.produced, self.sim.now)
        self.ingress.offer(payload)
        self.produced += 1
        self._schedule_next()


class ExternalConsumer:
    """Terminal node of one external output wire."""

    def __init__(self, node_id: str, sim, metrics,
                 birth_of: Optional[Callable[[Any], Optional[int]]] = None):
        self.node_id = node_id
        self.alive = True
        self.sim = sim
        self.metrics = metrics
        self.birth_of = birth_of
        self._receiver: Optional[TickStreamReceiver] = None
        #: Every delivery, including stutter: (seq, vt, payload, real_time).
        self.raw_outputs: List[Tuple[int, int, Any, int]] = []
        #: First delivery of each sequence number only.
        self.effective_outputs: List[Tuple[int, int, Any, int]] = []
        self.stutter = 0

    def receive(self, item: Any) -> None:
        """Record a delivered output message."""
        if not isinstance(item, DataMessage):
            return  # consumers ignore control traffic (e.g. silence)
        if self._receiver is None:
            self._receiver = TickStreamReceiver(item.wire_id)
        record = (item.seq, item.vt, item.payload, self.sim.now)
        self.raw_outputs.append(record)
        verdict = self._receiver.accept(item.seq, item.vt)
        if verdict == "duplicate":
            # Output stutter: a rolled-back engine re-delivered this.
            self.stutter += 1
            self.metrics.count("output_stutter")
            return
        if verdict == "gap":
            # Engine-failure recovery always re-sends from a checkpoint at
            # or before anything delivered, and link loss is repaired by
            # the reliable channel — a gap here is a protocol bug.
            raise TransportError(
                f"consumer {self.node_id}: output gap at seq {item.seq}"
            )
        self.effective_outputs.append(record)
        if self.birth_of is not None:
            birth = self.birth_of(item.payload)
            if birth is not None:
                self.metrics.record_latency(birth, self.sim.now)

    def payloads(self) -> List[Any]:
        """Effective output payloads in delivery order."""
        return [p for _, _, p, _ in self.effective_outputs]

    def __len__(self) -> int:
        return len(self.effective_outputs)
