"""Public ingress gateway: the cluster's front door.

``repro.gateway`` is the first subsystem where backpressure, overload,
and recovery interact.  A :class:`~repro.gateway.server.GatewayServer`
accepts thousands of concurrent external TCP clients speaking the
length-prefixed gateway frames of :mod:`repro.net.codec` (tags 8–12),
defends itself with per-client token buckets and a global admission
controller (:mod:`repro.gateway.admission`), stamps each admitted
payload with virtual time via the stable
:class:`~repro.runtime.external.ExternalIngress` contract, and forwards
it into the cluster over the existing exactly-once channels — so an
engine failover is invisible to connected clients.

``python -m repro.gateway.cluster`` (or ``python -m repro.net.cluster
--gateway``) runs the end-to-end acceptance harness; ``python -m
repro.tools.loadgen`` is the open-loop load generator that drives it
and writes ``BENCH_gateway.json``.  See ``docs/gateway.md``.
"""

from repro.gateway.admission import AdmissionController, TokenBucket
from repro.gateway.server import GatewayConfig, GatewayServer

__all__ = [
    "AdmissionController",
    "GatewayConfig",
    "GatewayServer",
    "TokenBucket",
]
