"""Open-loop gateway clients (the shared half of the load harness).

An *open-loop* client sends at its scheduled arrival times no matter
how the gateway answers — it never waits for an ACCEPT before the next
SUBMIT, which is what makes offered load independent of system latency
(a closed-loop generator slows down exactly when the system is in
trouble, hiding the overload it was supposed to create).  Replies are
collected by a concurrent reader and matched by ``req``.

Clients are resilient the way the protocol intends: a dead connection
is reconnected (counted), and every still-unanswered ``req`` is
retransmitted verbatim — the gateway's per-client dedup table turns a
retransmit of an already-stamped ``req`` into a replayed ACCEPT, never
a second stamp.  A BUSY reply resolves its ``req`` as dropped (open
loop sheds, it does not queue); the drop is recorded per reason.

:class:`ClientPlan` + :func:`build_clients` generate seeded arrival
schedules — steady Poisson arrivals at a fixed aggregate rate, or a
synchronized burst for overload experiments.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import TransportError
from repro.net import codec

#: Seconds a client waits for WELCOME after HELLO.
_WELCOME_TIMEOUT_S = 10.0

#: Gap between retransmit rounds while draining unanswered reqs.
_RETRANSMIT_GAP_S = 0.5

#: Pause before redialing a dead connection.
_RECONNECT_DELAY_S = 0.1


@dataclass
class ClientStats:
    """Everything one client observed (the exactly-once evidence)."""

    client_id: str
    planned: int = 0
    sent: int = 0
    #: req -> (seq, vt) from the first ACCEPT.
    accepted: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: BUSY drops by reason ("rate" / "shed").
    busy: Dict[str, int] = field(default_factory=dict)
    #: reqs still unanswered when the drain deadline hit.
    unresolved: int = 0
    reconnects: int = 0
    connect_errors: int = 0
    #: ACCEPTs that contradicted an earlier ACCEPT for the same req —
    #: a double-stamp, i.e. an exactly-once violation.
    conflicts: int = 0
    #: First-send to first-ACCEPT wall seconds per accepted req (the
    #: client-observable admission round trip, used by ``loadgen
    #: --connect`` where no consumer-side latency metric is reachable).
    rtt_s: List[float] = field(default_factory=list)


class GatewayClient:
    """One simulated external client with a fixed arrival schedule."""

    def __init__(self, client_id: str, addr: Tuple[str, int],
                 input_id: str, payload_of: Callable[[int], Any],
                 send_at: List[float], drain_s: float = 15.0):
        self.client_id = client_id
        self.addr = addr
        self.input_id = input_id
        self.payload_of = payload_of
        #: Arrival offsets in seconds from the fleet's shared epoch.
        self.send_at = send_at
        self.drain_s = drain_s
        self.stats = ClientStats(client_id, planned=len(send_at))
        self._pending: Dict[int, bytes] = {}
        self._sent_mono: Dict[int, float] = {}
        self._reply = asyncio.Event()
        self._connected_once = False

    # -- reply side ------------------------------------------------------
    async def _reader_loop(self, reader) -> None:
        while True:
            frame = await codec.read_frame(reader)
            if frame is None:
                return
            tag, body = frame
            if tag == codec.FRAME_GW_ACCEPT:
                req = int(body["req"])
                pair = (int(body["seq"]), int(body["vt"]))
                old = self.stats.accepted.get(req)
                if old is not None and old != pair:
                    self.stats.conflicts += 1
                self.stats.accepted.setdefault(req, pair)
                sent = self._sent_mono.pop(req, None)
                if sent is not None:
                    self.stats.rtt_s.append(time.monotonic() - sent)
                self._pending.pop(req, None)
            elif tag == codec.FRAME_GW_BUSY:
                req = int(body["req"])
                reason = str(body.get("reason", "?"))
                if self._pending.pop(req, None) is not None:
                    self.stats.busy[reason] = (
                        self.stats.busy.get(reason, 0) + 1
                    )
            # FRAME_ERROR and anything else: leave reqs pending; the
            # connection is about to die and the retransmit path rules.
            self._reply.set()

    # -- connection lifecycle --------------------------------------------
    async def _connect(self):
        reader, writer = await asyncio.open_connection(*self.addr)
        writer.write(codec.encode_gw_hello(self.client_id))
        await writer.drain()
        frame = await asyncio.wait_for(codec.read_frame(reader),
                                       timeout=_WELCOME_TIMEOUT_S)
        if frame is None or frame[0] != codec.FRAME_GW_WELCOME:
            writer.close()
            raise TransportError(
                f"{self.client_id}: no WELCOME (got {frame!r})"
            )
        return reader, writer

    async def run(self, t0: float) -> ClientStats:
        """Send the whole schedule (epoch ``t0`` in ``time.monotonic()``
        terms), drain replies, retransmit across reconnects."""
        send_idx = 0
        n = len(self.send_at)
        deadline = t0 + (self.send_at[-1] if self.send_at else 0.0) \
            + self.drain_s
        while True:
            reader_task = None
            writer = None
            try:
                reader, writer = await self._connect()
            except (OSError, ConnectionError, TransportError,
                    codec.CodecError, asyncio.TimeoutError):
                self.stats.connect_errors += 1
                if time.monotonic() >= deadline:
                    break
                await asyncio.sleep(_RECONNECT_DELAY_S)
                continue
            if self._connected_once:
                self.stats.reconnects += 1
            self._connected_once = True
            reader_task = asyncio.get_running_loop().create_task(
                self._reader_loop(reader)
            )
            try:
                # After a reconnect: retransmit everything unanswered.
                for frame in list(self._pending.values()):
                    writer.write(frame)
                await writer.drain()
                while send_idx < n:
                    if reader_task.done():
                        raise ConnectionResetError("reader died")
                    delay = (t0 + self.send_at[send_idx]) - time.monotonic()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    frame = codec.encode_gw_submit(
                        send_idx, self.input_id, self.payload_of(send_idx)
                    )
                    self._pending[send_idx] = frame
                    self._sent_mono[send_idx] = time.monotonic()
                    self.stats.sent += 1
                    writer.write(frame)
                    if send_idx % 64 == 0:
                        await writer.drain()
                    send_idx += 1
                await writer.drain()
                while self._pending and time.monotonic() < deadline:
                    if reader_task.done():
                        raise ConnectionResetError("reader died")
                    self._reply.clear()
                    try:
                        await asyncio.wait_for(self._reply.wait(),
                                               _RETRANSMIT_GAP_S)
                    except asyncio.TimeoutError:
                        # A whole gap with no reply: assume lost frames
                        # (e.g. a mid-burst reset) and retransmit.
                        for frame in list(self._pending.values()):
                            writer.write(frame)
                        await writer.drain()
                break
            except (ConnectionError, OSError, TransportError):
                if time.monotonic() >= deadline:
                    break
                await asyncio.sleep(_RECONNECT_DELAY_S)
            finally:
                if reader_task is not None:
                    reader_task.cancel()
                    try:
                        await reader_task
                    except (asyncio.CancelledError, ConnectionError,
                            OSError, TransportError, codec.CodecError):
                        pass
                if writer is not None:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError,
                            asyncio.CancelledError):
                        pass
        self.stats.unresolved = len(self._pending)
        return self.stats


# ----------------------------------------------------------------------
# Fleet planning
# ----------------------------------------------------------------------


@dataclass
class ClientPlan:
    """A seeded fleet of open-loop clients."""

    n_clients: int
    total_messages: int
    #: Aggregate offered rate, msgs/sec across the whole fleet.  A
    #: non-positive rate means "synchronized burst": every message of
    #: every client is offered immediately (the overload experiment).
    rate_msgs_per_s: float
    input_id: str = "readings"
    seed: int = 7
    #: Client id prefix; ids are ``<group>:<n>``, and the chaos proxy
    #: classifies gateway links by this group.
    group: str = "clients"
    #: Wall seconds of grace to drain replies after the last send.
    drain_s: float = 15.0

    def duration_s(self) -> float:
        """Nominal seconds from first to last scheduled arrival."""
        if self.rate_msgs_per_s <= 0:
            return 0.0
        return self.total_messages / self.rate_msgs_per_s


def build_clients(plan: ClientPlan, addr: Tuple[str, int],
                  payload_factory: Callable[[random.Random, int], Any]
                  ) -> List[GatewayClient]:
    """Instantiate the fleet with seeded schedules and payloads.

    Message counts are spread round-robin; arrival gaps are exponential
    (Poisson arrivals at the per-client share of the aggregate rate),
    drawn from ``random.Random(seed)`` derivatives so the same plan
    always offers the same load.  Payloads come from
    ``payload_factory(client_rng, message_index)``.
    """
    counts = [plan.total_messages // plan.n_clients] * plan.n_clients
    for i in range(plan.total_messages % plan.n_clients):
        counts[i] += 1
    clients: List[GatewayClient] = []
    per_client_rate = (plan.rate_msgs_per_s / max(1, plan.n_clients)
                       if plan.rate_msgs_per_s > 0 else 0.0)
    for i, count in enumerate(counts):
        if count == 0:
            continue
        rng = random.Random(f"{plan.seed}:{plan.group}:{i}")
        if per_client_rate > 0:
            t = 0.0
            send_at = []
            for _ in range(count):
                t += rng.expovariate(per_client_rate)
                send_at.append(t)
        else:
            # Synchronized burst: tiny seeded jitter so frames do not
            # serialize on connect order, but all inside a few ms.
            send_at = sorted(rng.uniform(0.0, 0.005) for _ in range(count))
        payload_rng = random.Random(f"{plan.seed}:{plan.group}:{i}:payload")
        clients.append(GatewayClient(
            f"{plan.group}:{i}", addr, plan.input_id,
            payload_of=lambda idx, r=payload_rng: payload_factory(r, idx),
            send_at=send_at, drain_s=plan.drain_s,
        ))
    return clients


def fleet_summary(stats: List[ClientStats]) -> Dict[str, int]:
    """Aggregate fleet counters (stable keys, diffable)."""
    out = {
        "planned": sum(s.planned for s in stats),
        "sent": sum(s.sent for s in stats),
        "accepted": sum(len(s.accepted) for s in stats),
        "busy_rate": sum(s.busy.get("rate", 0) for s in stats),
        "busy_shed": sum(s.busy.get("shed", 0) for s in stats),
        "unresolved": sum(s.unresolved for s in stats),
        "reconnects": sum(s.reconnects for s in stats),
        "connect_errors": sum(s.connect_errors for s in stats),
        "conflicts": sum(s.conflicts for s in stats),
    }
    return out


def exactly_once_violations(stats: List[ClientStats],
                            shadow: Dict[str, List[Tuple[int, int, Any]]]
                            ) -> int:
    """Count observable exactly-once violations across the run.

    Two independent checks: (1) conflicting ACCEPTs for one req — a
    req stamped under two identities; (2) duplicate sequence numbers
    inside the gateway's own shadow log — an ingress double-append.
    Both must be zero on every run, faulted or not; shed/rate drops are
    *not* violations (the client was told, nothing was stamped).
    """
    violations = sum(s.conflicts for s in stats)
    for entries in shadow.values():
        seqs = [seq for seq, _vt, _payload in entries]
        violations += len(seqs) - len(set(seqs))
    return violations
