"""Gateway acceptance harness: real clients, real cluster, replayed oracle.

``python -m repro.gateway.cluster`` (also reachable as ``python -m
repro.net.cluster --gateway``) is the end-to-end proof for the public
ingress path.  It differs from the producer-driven harness in one
fundamental way: external submissions arrive at *wall-clock* times over
real sockets, so no seeded simulation can predict the ingress log up
front.  The determinism oracle therefore runs **after** the live run:

1. spawn the usual engine/replica processes, host the ingresses and
   consumers on the coordinator, and put a :class:`~repro.gateway
   .server.GatewayServer` in front of the ingresses;
2. drive it with a fleet of open-loop TCP clients (:mod:`repro.gateway
   .client`), optionally SIGKILLing the active engine mid-stream or
   resetting client connections through the chaos proxy;
3. replay the gateway's shadow log — every admitted ``(seq, vt,
   stamped payload)`` — into a *fresh pure simulation* at the recorded
   virtual times (:func:`replay_reference`).  Because the ingress stamp
   is ``vt = max(now, last_vt + 1)`` and the recorded stamps are
   strictly increasing per wire, the replay reproduces the ingress log
   exactly, and a deterministic engine must then reproduce the consumer
   stream byte for byte;
4. wait for the live consumers to reach the replayed counts and judge
   the streams with :func:`~repro.tools.verify_determinism
   .verify_trace_equivalence`, plus the client-side exactly-once checks
   (no conflicting ACCEPTs, no duplicated ingress sequence numbers).

Failover transparency is judged from the client ledger: across a
``--kill-active`` run the fleet must report zero reconnects — client
connections terminate at the gateway, which never dies, so an engine
failover is invisible at the socket layer.

Gateway runs default to ``speed=1.0`` (one simulated tick per real
nanosecond), so consumer latency percentiles come out in honest
microseconds of admission-to-delivery time.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.net import codec
from repro.net.cluster import (
    GO_LEAD_S,
    READY_TIMEOUT_S,
    CoordinatorHost,
    free_port,
    spawn_children,
    with_addresses,
)
from repro.net.server import ProcessRuntime
from repro.net.topology import (
    ClusterSpec,
    build_deployment,
    plan_cluster_nodes,
    stream_of,
)
from repro.sim.kernel import ms
from repro.gateway.client import (
    ClientPlan,
    build_clients,
    exactly_once_violations,
    fleet_summary,
)
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.tools.verify_determinism import verify_trace_equivalence

#: Extra wall seconds between the GO epoch and the first client send,
#: so every engine is ticking before load arrives.
CLIENT_LEAD_S = 0.25

#: Simulated drain margin appended after the last replayed stamp.
_REPLAY_DRAIN_TICKS = ms(2000)


def gateway_payload_factory(n_devices: int = 8, n_fields: int = 4):
    """Client payloads for the pipeline app: readings *without* birth.

    The gateway's ingress stamp supplies ``birth = vt`` at admission —
    a client cannot know its own admission time, and letting it claim
    one would corrupt the latency metric.
    """

    def factory(rng, index: int) -> Dict:
        return {
            "device": f"dev{rng.randrange(n_devices)}",
            "fields": [rng.randrange(100) for _ in range(n_fields)],
        }

    return factory


def replay_reference(spec: ClusterSpec,
                     shadow: Dict[str, List[Tuple[int, int, Any]]]
                     ) -> Dict[str, List[Tuple]]:
    """Re-simulate the shadow log; return the reference output streams.

    Offers each recorded stamped payload at its recorded virtual time in
    a fresh deployment of the same spec.  At tick ``vt`` the ingress
    assigns ``max(now, last_vt + 1) = vt`` (stamps are strictly
    increasing per wire), so the replayed ingress log — sequence
    numbers, virtual times, payload bytes — is identical to the live
    one, and the consumer streams are the ground truth the networked
    run must have produced.
    """
    dep = build_deployment(spec)
    last_vt = 0
    for input_id, entries in shadow.items():
        ingress = dep.ingresses[input_id]
        for _seq, vt, payload in entries:
            dep.sim.at(
                vt,
                lambda ing=ingress, p=payload: ing.offer(p),
                label=f"replay:{input_id}",
            )
            last_vt = max(last_vt, vt)
    dep.run(until=last_vt + _REPLAY_DRAIN_TICKS)
    return {sink: stream_of(consumer)
            for sink, consumer in dep.consumers.items()}


async def run_gateway_cluster(
    spec: ClusterSpec,
    plan: ClientPlan,
    kill_engine: Optional[str] = None,
    kill_fraction: float = 0.4,
    deadline_s: float = 120.0,
    chaos=None,
    payload_factory=None,
) -> Dict:
    """One live gateway run; returns streams, reference, and diagnostics.

    ``spec`` must carry addresses and a gateway config (see
    :func:`~repro.net.cluster.with_addresses`).  With ``kill_engine``
    set, that engine's process is SIGKILLed once ``kill_fraction`` of
    the planned submissions have been admitted.  ``chaos`` is an
    optional :class:`~repro.chaos.runner.ChaosDriver` whose proxy has
    been planned to front the gateway (see :func:`gateway_front`).
    """
    started = time.monotonic()
    runtime = ProcessRuntime("coordinator", spec)
    listen_host, listen_port = spec.listen_addr("coordinator")
    server = await asyncio.start_server(
        runtime._handle_conn, listen_host, listen_port
    )
    if chaos is not None:
        await chaos.start()
    host = CoordinatorHost(spec, runtime)
    for consumer in host.consumers.values():
        consumer.birth_of = _birth_of
    gateway = GatewayServer(
        "gateway",
        ingresses=dict(host.deployment.ingresses),
        inject=runtime.rtk.inject,
        metrics=host.deployment.metrics,
        config=GatewayConfig.from_spec(spec),
        congested=runtime.transport.congested,
    )
    await gateway.start()

    spec_file = tempfile.NamedTemporaryFile(
        "w", suffix=".json", prefix="gateway-spec-", delete=False
    )
    spec_path = Path(spec_file.name)
    with spec_file:
        spec_file.write(spec.to_json())

    children = spawn_children(spec, spec_path)
    if chaos is not None:
        chaos.attach(children)
    result: Dict = {"killed": None, "complete": False, "error": None}
    loop = asyncio.get_running_loop()
    pump: Optional[asyncio.Task] = None
    client_stats: List = []
    reference: Dict[str, List[Tuple]] = {}
    shadow: Dict[str, List[Tuple]] = {}
    try:
        for child in children.values():
            ok = await loop.run_in_executor(
                None, child.ready.wait, READY_TIMEOUT_S
            )
            if not ok:
                raise RuntimeError(
                    f"child {child.name} not READY within "
                    f"{READY_TIMEOUT_S}s (rc={child.proc.poll()})"
                )

        t0 = time.time() + GO_LEAD_S
        for name in children:
            runtime.transport.channel_to(f"proc:{name}").enqueue(
                runtime.peer_id, codec.GoSignal(t0=t0, speed=spec.speed)
            )
        runtime.clock.set_epoch(t0)
        if chaos is not None:
            chaos.on_go(t0)
        host.start()
        pump = loop.create_task(runtime.rtk.run(), name="pump:coordinator")

        factory = payload_factory or gateway_payload_factory()
        clients = build_clients(plan, spec.gateway_addr(), factory)
        client_t0 = time.monotonic() + (t0 - time.time()) + CLIENT_LEAD_S
        client_tasks = [
            loop.create_task(c.run(client_t0), name=f"client:{c.client_id}")
            for c in clients
        ]
        fleet = asyncio.gather(*client_tasks, return_exceptions=True)

        kill_at = max(1, int(plan.total_messages * kill_fraction))
        deadline = time.monotonic() + deadline_s
        while not fleet.done():
            if pump.done():
                pump.result()  # surfaces TransportError etc.
                raise RuntimeError("coordinator pump exited early")
            if (kill_engine is not None and result["killed"] is None
                    and gateway.accepted() >= kill_at):
                children[f"engine-{kill_engine}"].kill()
                result["killed"] = {
                    "engine": kill_engine,
                    "at_accepted": gateway.accepted(),
                    "at_s": round(time.monotonic() - started, 3),
                }
            if time.monotonic() >= deadline:
                fleet.cancel()
                raise RuntimeError(
                    f"clients still running at the {deadline_s}s deadline"
                )
            await asyncio.sleep(0.05)
        for outcome in fleet.result():
            if isinstance(outcome, BaseException):
                raise outcome
            client_stats.append(outcome)

        # Freeze the admitted-work record and replay it (CPU-bound, in
        # a worker thread) while the live consumers finish draining.
        shadow = {input_id: list(entries)
                  for input_id, entries in gateway.shadow.items()}
        reference = await loop.run_in_executor(
            None, replay_reference, spec, shadow
        )
        ref_counts = {sink: len(s) for sink, s in reference.items()}
        while time.monotonic() < deadline:
            if pump.done():
                pump.result()
                raise RuntimeError("coordinator pump exited early")
            if host.counts() == ref_counts:
                result["complete"] = True
                break
            await asyncio.sleep(0.05)
        else:
            raise RuntimeError(
                f"consumers at {host.counts()} of {ref_counts} at the "
                f"{deadline_s}s deadline"
            )
    except Exception as exc:  # noqa: BLE001 - reported in the result
        result["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        for name, child in children.items():
            if child.proc.poll() is None:
                try:
                    runtime.transport.channel_to(f"proc:{name}").enqueue(
                        runtime.peer_id, codec.Shutdown("run complete")
                    )
                except Exception:  # noqa: BLE001 - best-effort shutdown
                    pass
        await asyncio.sleep(0.3)
        if pump is not None:
            runtime.rtk.stop()
            try:
                await pump
            except Exception as exc:  # noqa: BLE001
                if result["error"] is None:
                    result["error"] = f"{type(exc).__name__}: {exc}"
        epoch_resets = sum(
            ch.epoch_resets for ch in runtime.transport._channels.values()
        )
        await gateway.close()
        if chaos is not None:
            await chaos.close()
        await runtime.transport.close()
        server.close()
        await server.wait_closed()
        exit_codes = {name: child.reap() for name, child in children.items()}
        try:
            spec_path.unlink()
        except OSError:
            pass

    metrics = host.deployment.metrics
    samples = metrics.latency_count()
    result.update(
        counts=host.counts(),
        streams=host.streams(),
        reference=reference,
        stutter=host.stutter(),
        elapsed_s=round(time.monotonic() - started, 3),
        child_exit_codes=exit_codes,
        epoch_resets=epoch_resets,
        gateway=gateway.report(),
        clients=fleet_summary(client_stats),
        exactly_once_violations=exactly_once_violations(
            client_stats, gateway.shadow
        ),
        latency={
            "samples": samples,
            "p50_us": _pct(metrics, 50.0, samples),
            "p99_us": _pct(metrics, 99.0, samples),
            "p999_us": _pct(metrics, 99.9, samples),
        },
        shadow=shadow,
        metrics=metrics.dump_json(),
    )
    if chaos is not None:
        result["chaos"] = chaos.report()
    return result


def _birth_of(payload: Any) -> Optional[int]:
    if isinstance(payload, dict):
        return payload.get("birth")
    return None


def _pct(metrics, q: float, samples: int) -> Optional[float]:
    if samples == 0:
        return None
    return round(metrics.latency_percentile_us(q), 3)


def gateway_front(spec: ClusterSpec):
    """Front the gateway's dial address with a fault proxy.

    Returns ``(run_spec, proxy)``: a deep copy of ``spec`` whose
    ``gateway.host/port`` is a proxy front while the gateway itself
    binds its real address via ``gateway.listen``; the proxy forwards
    and applies the ``("clients", "gateway")`` link policy.  Engine and
    replica links stay direct — gateway chaos scenarios fault the edge,
    not the interior (``repro.chaos`` covers the interior).
    """
    from repro.chaos.proxy import FaultProxy

    run_spec = ClusterSpec.from_json(spec.to_json())
    real = run_spec.gateway_addr()
    front = ("127.0.0.1", free_port())
    proxy = FaultProxy()
    proxy.plan("gateway", real, front)
    run_spec.gateway["listen"] = real
    run_spec.gateway["host"], run_spec.gateway["port"] = front
    return run_spec, proxy


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_gateway_spec(args: argparse.Namespace,
                       plan: ClientPlan) -> ClusterSpec:
    span_ms = max(400.0, plan.duration_s() * 1000.0)
    return ClusterSpec(
        app="pipeline",
        app_args={"window": args.window},
        engines=[f"e{i}" for i in range(args.engines)],
        replicas=args.replicas,
        followers_per_group=getattr(args, "followers", None),
        master_seed=args.seed,
        # One tick per nanosecond: latency percentiles in real us.
        speed=1.0,
        checkpoint_interval_ms=args.checkpoint_ms,
        heartbeat_interval_ms=args.heartbeat_ms,
        heartbeat_miss_limit=args.heartbeat_miss,
        workload={},
        gateway={
            "max_inflight_msgs": args.max_inflight,
            "max_inflight_bytes": args.max_inflight_bytes,
            "rate_msgs_per_s": args.client_rate,
            "rate_burst": args.client_burst,
            "retry_ms": args.retry_ms,
            "span_ms": span_ms,
        },
    )


def run_trial(label: str, spec: ClusterSpec, plan: ClientPlan,
              kill_engine: Optional[str], kill_fraction: float,
              deadline_s: float,
              chaos_seed: Optional[int] = None,
              record_dir: Optional[str] = None) -> Dict:
    """One addressed live run + verification; returns the trial report."""

    async def _run() -> Dict:
        run_spec = with_addresses(spec)
        chaos = None
        if chaos_seed is not None:
            from repro.chaos.runner import ChaosDriver
            from repro.chaos.schedule import generate_schedule

            run_spec2, proxy = gateway_front(run_spec)
            schedule = generate_schedule(
                chaos_seed, run_spec2, scenario="gateway_client_reset"
            )
            chaos = ChaosDriver(schedule, proxy, run_spec2)
            return await run_gateway_cluster(
                run_spec2, plan, kill_engine=kill_engine,
                kill_fraction=kill_fraction, deadline_s=deadline_s,
                chaos=chaos,
            )
        return await run_gateway_cluster(
            run_spec, plan, kill_engine=kill_engine,
            kill_fraction=kill_fraction, deadline_s=deadline_s,
        )

    result = asyncio.run(_run())
    shadow = result.pop("shadow", {})
    if record_dir is not None and shadow:
        # Gateway bundles replay the admission shadow log (the spec has
        # no seeded workload), re-executed under the replay-clock tracer.
        from repro.runtime.flightrec import record_run

        bundle = record_run(
            spec, Path(record_dir) / label, external=shadow,
            seed=spec.master_seed, source="gateway",
        )
        result["bundle"] = str(bundle)
        print(f"{label}: wrote replay bundle {bundle}",
              file=sys.stderr, flush=True)
    verdict = verify_trace_equivalence(
        result.pop("reference"), result.pop("streams"), trial=label,
        require_complete=True,
    )
    result["deterministic"] = verdict.deterministic
    if not verdict.deterministic:
        result["divergence"] = verdict.summary()
    ok = (verdict.deterministic
          and result["complete"]
          and result["error"] is None
          and result["exactly_once_violations"] == 0
          and result["clients"]["unresolved"] == 0)
    if kill_engine is not None:
        # Failover transparency: the engine died, yet no client socket
        # so much as blinked.
        ok = ok and result["killed"] is not None
        ok = ok and result["clients"]["reconnects"] == 0
    result["ok"] = ok
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway.cluster",
        description="Drive a real cluster through the public ingress "
                    "gateway with open-loop TCP clients and verify the "
                    "output against a pure-sim replay of the gateway's "
                    "admission log.",
    )
    parser.add_argument("--engines", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=1, choices=(0, 1))
    parser.add_argument("--followers", type=int, default=None, metavar="K",
                        help="followers per replication group (overrides "
                             "--replicas)")
    parser.add_argument("--messages", type=int, default=240,
                        help="total submissions across all clients")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--rate", type=float, default=400.0,
                        help="aggregate open-loop offered rate in "
                             "msgs/sec (<= 0: synchronized burst)")
    parser.add_argument("--window", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--checkpoint-ms", type=float, default=25.0)
    parser.add_argument("--heartbeat-ms", type=float, default=10.0)
    parser.add_argument("--heartbeat-miss", type=int, default=3)
    parser.add_argument("--kill-active", action="store_true",
                        help="SIGKILL an engine mid-stream; clients "
                             "must not notice (zero reconnects) and the "
                             "output must stay byte-identical")
    parser.add_argument("--kill-engine", default=None)
    parser.add_argument("--kill-fraction", type=float, default=0.4)
    parser.add_argument("--client-reset", type=int, default=None,
                        metavar="SEED",
                        help="run the seeded gateway_client_reset chaos "
                             "scenario: client connections are hard-"
                             "closed mid-burst through the fault proxy")
    parser.add_argument("--max-inflight", type=int, default=1024,
                        help="admission cap on in-flight messages")
    parser.add_argument("--max-inflight-bytes", type=int,
                        default=8 * 1024 * 1024)
    parser.add_argument("--client-rate", type=float, default=2000.0,
                        help="per-client token bucket refill (msgs/sec)")
    parser.add_argument("--client-burst", type=float, default=200.0)
    parser.add_argument("--retry-ms", type=float, default=50.0)
    parser.add_argument("--skip-clean", action="store_true")
    parser.add_argument("--record", default=None, metavar="DIR",
                        help="write a .replay flight-recorder bundle per "
                             "trial under DIR (see docs/timetravel.md)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the full metrics registry as JSON "
                             "at shutdown")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-trial wall-clock deadline in seconds")
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    if args.followers is not None and args.followers < 0:
        parser.error("--followers must be >= 0")
    effective_followers = (args.followers if args.followers is not None
                           else args.replicas)
    if args.kill_active and effective_followers < 1:
        parser.error("--kill-active requires at least one follower "
                     "(--followers >= 1 or --replicas 1)")
    kill_engine = None
    if args.kill_active:
        kill_engine = args.kill_engine or "e0"
        if kill_engine not in [f"e{i}" for i in range(args.engines)]:
            parser.error(f"unknown --kill-engine {kill_engine!r}")

    plan = ClientPlan(
        n_clients=args.clients,
        total_messages=args.messages,
        rate_msgs_per_s=args.rate,
        seed=args.seed,
    )
    spec = build_gateway_spec(args, plan)
    deadline_s = args.timeout or max(60.0, 6.0 * plan.duration_s() + 30.0)

    trials: List[Tuple[str, Optional[str], Optional[int]]] = []
    if not args.skip_clean:
        trials.append(("gateway-clean", None, None))
    if kill_engine is not None:
        trials.append((f"gateway-kill-{kill_engine}", kill_engine, None))
    if args.client_reset is not None:
        trials.append((f"gateway-reset-{args.client_reset}", None,
                       args.client_reset))
    if not trials:
        trials.append(("gateway-clean", None, None))

    report: Dict = {"plan": {
        "clients": plan.n_clients,
        "messages": plan.total_messages,
        "rate_msgs_per_s": plan.rate_msgs_per_s,
    }, "trials": {}}
    metrics_docs: Dict[str, Dict] = {}
    failed = False
    for label, victim, chaos_seed in trials:
        print(f"{label}: launching "
              f"{len(plan_cluster_nodes(spec)) - 1} child process(es), "
              f"{plan.n_clients} client(s), {plan.total_messages} "
              f"submission(s) ...", file=sys.stderr, flush=True)
        result = run_trial(label, spec, plan, victim, args.kill_fraction,
                           deadline_s, chaos_seed=chaos_seed,
                           record_dir=args.record)
        metrics_docs[label] = result.pop("metrics", None)
        failed = failed or not result["ok"]
        report["trials"][label] = result
        status = "OK" if result["ok"] else "FAIL"
        lat = result["latency"]
        gw = result["gateway"]
        print(f"{label}: {status} — {sum(result['counts'].values())} "
              f"outputs in {result['elapsed_s']}s; accepted="
              f"{gw['accepted']} shed={gw['shed']} rate_limited="
              f"{gw['rate_limited']} dup={gw['duplicates']}; "
              f"p50={lat['p50_us']}us p99={lat['p99_us']}us "
              f"p999={lat['p999_us']}us; stutter={result['stutter']}, "
              f"reconnects={result['clients']['reconnects']}, "
              f"violations={result['exactly_once_violations']}"
              + (f"; killed {result['killed']['engine']} after "
                 f"{result['killed']['at_accepted']} admissions"
                 if result["killed"] else ""),
              file=sys.stderr, flush=True)
        if result["error"]:
            print(f"{label}: error: {result['error']}",
                  file=sys.stderr, flush=True)
        if "divergence" in result:
            print(result["divergence"], file=sys.stderr, flush=True)

    if args.metrics_out is not None:
        Path(args.metrics_out).write_text(
            json.dumps(metrics_docs, indent=2, sort_keys=True) + "\n")
        print(f"gateway: wrote metrics to {args.metrics_out}",
              file=sys.stderr, flush=True)
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    print("gateway: " + ("all trials byte-identical to the replayed "
                         "reference" if not failed else "FAILED"),
          file=sys.stderr, flush=True)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
