"""The gateway server: thousands of client sockets, one front door.

A :class:`GatewayServer` terminates external client connections and
bridges them onto the cluster's :class:`~repro.runtime.external
.ExternalIngress` objects.  The protocol (frame tags 8–12 of
:mod:`repro.net.codec`) is deliberately minimal:

* ``GW_HELLO`` / ``GW_WELCOME`` — session open + input-id advertisement;
* ``GW_SUBMIT {req, input, payload}`` — one submission, where ``req``
  is per-client monotonic and is the dedup key;
* ``GW_ACCEPT {req, seq, vt}`` — the payload was stamped with virtual
  time ``vt``, logged, and is now guaranteed exactly-once delivery;
* ``GW_BUSY {req, reason, retry_ms}`` — shed (``reason="shed"``) or
  rate-limited (``reason="rate"``); the submission consumed nothing and
  may be retried.

Ordering of defenses per submission: dedup (a retransmitted ``req`` is
re-answered from the session's reply table, never re-stamped), then the
per-client token bucket, then the global admission controller.  Only an
admitted submission reaches the simulator pump, where the ingress
assigns ``vt = max(now, last_vt + 1)``, stamps ``birth = vt`` into the
payload, logs it, and ships it over the exactly-once channel — so the
consumer-side latency metric measures admission-stamp to delivery.

Every admitted ``(seq, vt, stamped payload)`` is also appended to an
in-memory *shadow log* per input.  The shadow log is the determinism
oracle for gateway runs: wall-clock arrivals cannot be predicted by a
seeded simulation, but re-offering the recorded payloads at their
recorded virtual times in a fresh simulation reproduces the ingress log
(and therefore the consumer stream) byte for byte — see
``repro.gateway.cluster.replay_reference``.

Client sessions are keyed by the HELLO ``client`` id, not by the
connection: a client that reconnects (gateway-side reset, chaos fault)
resumes its dedup table, so retransmitting every unanswered ``req`` is
always safe.  Engine failover needs nothing from the gateway at all —
connections terminate here, and the ingress + channel layers already
hide the failover from anything upstream of them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import TransportError
from repro.net import codec
from repro.net.topology import ClusterSpec
from repro.runtime.external import ExternalIngress
from repro.runtime.metrics import MetricSet
from repro.gateway.admission import AdmissionController, TokenBucket

#: Seconds a new connection gets to present its GW_HELLO.
_HELLO_TIMEOUT_S = 10.0


@dataclass
class GatewayConfig:
    """Resolved gateway knobs (see ``ClusterSpec.gateway``)."""

    host: str = "127.0.0.1"
    port: int = 0
    listen: Optional[Tuple[str, int]] = None
    #: Global admission caps (non-positive disables a bound).
    max_inflight_msgs: int = 1024
    max_inflight_bytes: int = 8 * 1024 * 1024
    #: Per-client token bucket (rate <= 0 disables rate limiting).
    rate_msgs_per_s: float = 2000.0
    rate_burst: float = 200.0
    #: Backoff hint carried by BUSY rejects.
    retry_ms: float = 50.0

    @classmethod
    def from_spec(cls, spec: ClusterSpec) -> "GatewayConfig":
        gw = spec.gateway
        listen = gw.get("listen")
        return cls(
            host=gw.get("host", "127.0.0.1"),
            port=int(gw.get("port", 0)),
            listen=(listen[0], int(listen[1])) if listen else None,
            max_inflight_msgs=int(gw.get("max_inflight_msgs", 1024)),
            max_inflight_bytes=int(gw.get("max_inflight_bytes",
                                          8 * 1024 * 1024)),
            rate_msgs_per_s=float(gw.get("rate_msgs_per_s", 2000.0)),
            rate_burst=float(gw.get("rate_burst", 200.0)),
            retry_ms=float(gw.get("retry_ms", 50.0)),
        )

    def bind_addr(self) -> Tuple[str, int]:
        return self.listen if self.listen is not None else (self.host,
                                                            self.port)


@dataclass
class _ClientSession:
    """Per-client (not per-connection) gateway state."""

    client_id: str
    bucket: TokenBucket
    #: req -> (input_id, seq, vt): the reply table retransmits are
    #: answered from.  Bounded by the client's lifetime request count.
    replies: Dict[int, Tuple[str, int, int]] = field(default_factory=dict)
    #: reqs admitted but not yet stamped (dedup for in-flight races).
    inflight: Set[int] = field(default_factory=set)


class GatewayServer:
    """Admission-controlled bridge from client sockets to ingresses."""

    def __init__(self, name: str, ingresses: Dict[str, ExternalIngress],
                 inject: Callable[[Callable[[], None]], None],
                 metrics: MetricSet, config: GatewayConfig,
                 congested: Optional[Callable[[], bool]] = None):
        self.name = name
        self.ingresses = ingresses
        self.inject = inject
        self.metrics = metrics
        self.config = config
        self.admission = AdmissionController(
            config.max_inflight_msgs, config.max_inflight_bytes,
            congested=congested,
        )
        self._sessions: Dict[str, _ClientSession] = {}
        #: input_id -> [(seq, vt, stamped payload)]: the admitted-work
        #: record the replay reference re-simulates from.
        self.shadow: Dict[str, List[Tuple[int, int, Any]]] = {
            input_id: [] for input_id in ingresses
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: Set[asyncio.streams.StreamWriter] = set()
        self._accept_tasks: Set[asyncio.Task] = set()
        self.torn_frames = 0

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the client listener; returns the bound (host, port)."""
        host, port = self.config.bind_addr()
        self._server = await asyncio.start_server(self._handle_conn,
                                                  host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        for task in list(self._accept_tasks):
            if not task.done():
                task.cancel()
        self._accept_tasks.clear()
        for writer in list(self._conns):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
        self._conns.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- metrics ---------------------------------------------------------
    def accepted(self) -> int:
        return self.metrics.counter("gateway.accepted")

    def report(self) -> Dict[str, int]:
        """The gateway's headline counters (stable keys, diffable)."""
        return {
            "accepted": self.metrics.counter("gateway.accepted"),
            "shed": self.metrics.counter("gateway.shed"),
            "rate_limited": self.metrics.counter("gateway.rate_limited"),
            "duplicates": self.metrics.counter("gateway.duplicates"),
            "rejected": self.metrics.counter("gateway.rejected"),
            "connections": self.metrics.counter("gateway.connections"),
            "torn_frames": self.torn_frames,
        }

    # -- inbound protocol ------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        self._conns.add(writer)
        try:
            frame = await asyncio.wait_for(codec.read_frame(reader),
                                           timeout=_HELLO_TIMEOUT_S)
            if frame is None or frame[0] != codec.FRAME_GW_HELLO:
                self.metrics.count("gateway.rejected")
                return
            proto = frame[1].get("proto")
            if proto != codec.WIRE_VERSION:
                self.metrics.count("gateway.rejected")
                writer.write(codec.encode_error(
                    f"unsupported wire protocol {proto!r}; "
                    f"{self.name} speaks {codec.WIRE_VERSION}"
                ))
                await writer.drain()
                return
            client_id = str(frame[1].get("client", ""))
            if not client_id:
                self.metrics.count("gateway.rejected")
                writer.write(codec.encode_error("GW_HELLO without client"))
                await writer.drain()
                return
            session = self._session(client_id)
            self.metrics.count("gateway.connections")
            self.metrics.gauge("gateway.clients", len(self._conns))
            writer.write(codec.encode_gw_welcome(self.name, self.ingresses))
            await writer.drain()
            await self._submit_loop(reader, writer, session)
        except codec.CodecError:
            self.metrics.count("gateway.rejected")
        except TransportError:
            self.torn_frames += 1
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._conns.discard(writer)
            self.metrics.gauge("gateway.clients", len(self._conns))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _session(self, client_id: str) -> _ClientSession:
        session = self._sessions.get(client_id)
        if session is None:
            session = _ClientSession(
                client_id,
                TokenBucket(self.config.rate_msgs_per_s,
                            self.config.rate_burst),
            )
            self._sessions[client_id] = session
        return session

    async def _submit_loop(self, reader, writer,
                           session: _ClientSession) -> None:
        """Read submissions; gate inline, stamp through the pump.

        The gate (dedup, rate, admission) runs synchronously per frame
        so an overloading client is answered BUSY immediately; only
        admitted submissions spawn a stamp task, so clients are free to
        pipeline without waiting for ACCEPTs (open-loop) while the
        reply order is allowed to interleave — ``req`` identifies each.
        """
        lock = asyncio.Lock()
        while True:
            frame = await codec.read_frame_sized(reader)
            if frame is None:
                return
            tag, body, nbytes = frame
            if tag != codec.FRAME_GW_SUBMIT:
                self.metrics.count("gateway.rejected")
                writer.write(codec.encode_error(
                    f"unexpected frame tag {tag} (want GW_SUBMIT)"
                ))
                await writer.drain()
                return
            reply = self._gate(session, body, nbytes)
            if reply is not None:
                async with lock:
                    writer.write(reply)
                    await writer.drain()
                continue
            task = asyncio.get_running_loop().create_task(
                self._stamp_and_reply(session, body, nbytes, writer, lock)
            )
            self._accept_tasks.add(task)
            task.add_done_callback(self._accept_tasks.discard)

    def _gate(self, session: _ClientSession, body: Dict,
              nbytes: int) -> Optional[bytes]:
        """Apply dedup/rate/admission; bytes to reply, or None=admitted."""
        try:
            req = int(body["req"])
            input_id = str(body["input"])
            payload = body["payload"]
        except (KeyError, TypeError, ValueError):
            self.metrics.count("gateway.rejected")
            return codec.encode_error(f"malformed GW_SUBMIT: {sorted(body)}")
        if not isinstance(payload, dict):
            self.metrics.count("gateway.rejected")
            return codec.encode_error("GW_SUBMIT payload must be a dict")
        done = session.replies.get(req)
        if done is not None:
            # Retransmit of an answered req: re-answer, never re-stamp.
            self.metrics.count("gateway.duplicates")
            _input, seq, vt = done
            return codec.encode_gw_accept(req, seq, vt)
        if req in session.inflight:
            # Retransmit racing its own original through the pump: the
            # original's ACCEPT is on its way; answering twice is
            # harmless but stamping twice would not be, so drop.
            self.metrics.count("gateway.duplicates")
            return b""
        if input_id not in self.ingresses:
            self.metrics.count("gateway.rejected")
            return codec.encode_error(f"unknown input {input_id!r}")
        if not session.bucket.allow():
            self.metrics.count("gateway.rate_limited")
            return codec.encode_gw_busy(req, "rate", self.config.retry_ms)
        if not self.admission.admit(nbytes):
            self.metrics.count("gateway.shed")
            return codec.encode_gw_busy(req, "shed", self.config.retry_ms)
        session.inflight.add(req)
        self.metrics.count("gateway.accepted")
        return None

    async def _stamp_and_reply(self, session: _ClientSession, body: Dict,
                               nbytes: int, writer, lock) -> None:
        req = int(body["req"])
        input_id = str(body["input"])
        payload = body["payload"]
        future = asyncio.get_running_loop().create_future()

        def _offer() -> None:
            # Runs inside the simulator pump: sim.now is the current
            # real tick, so the stamp is the admission time.  Failures
            # are routed onto the future instead of up through the pump
            # (an exception here must not take the coordinator down).
            try:
                ingress = self.ingresses[input_id]
                try:
                    seq = ingress.offer(payload, stamp=_stamp_birth)
                    vt = ingress.log.last_vt()
                    self.shadow[input_id].append(
                        (seq, vt, _stamp_birth(vt, payload))
                    )
                finally:
                    self.admission.release(nbytes)
            except BaseException as exc:  # noqa: BLE001 - crosses the pump
                if not future.done():
                    future.set_exception(exc)
                return
            if not future.done():
                future.set_result((seq, vt))

        self.inject(_offer)
        try:
            seq, vt = await future
        finally:
            # Record the reply (if any) before leaving: a connection
            # death between stamp and write must still land the reply
            # in the dedup table so the reconnect retransmit is
            # re-answered instead of re-stamped.
            if (future.done() and not future.cancelled()
                    and future.exception() is None):
                done_seq, done_vt = future.result()
                session.replies[req] = (input_id, done_seq, done_vt)
            session.inflight.discard(req)
        try:
            async with lock:
                writer.write(codec.encode_gw_accept(req, seq, vt))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client is gone; the reply table covers its return


def _stamp_birth(vt: int, payload: Dict) -> Dict:
    """The gateway's ingress stamp: ``birth = vt`` (admission time)."""
    out = dict(payload)
    out["birth"] = vt
    return out
