"""Admission control: per-client rate limiting and global in-flight caps.

Two independent defenses, applied in order at the gateway's socket edge:

1. :class:`TokenBucket` — one per client, refilled at a fixed rate.  A
   client that outruns its bucket gets a structured BUSY ``"rate"``
   reject; nothing global is consumed, so one hot client cannot starve
   the rest.
2. :class:`AdmissionController` — one per gateway, bounding the total
   admitted-but-not-yet-stamped work (messages *and* wire bytes).  A
   submission admitted here is charged until the simulator pump executes
   its ingress offer; when the offered load exceeds what the pump (or a
   congested outbound channel) can absorb, the controller refuses and
   the gateway sheds with BUSY ``"shed"`` instead of queueing without
   bound — open-loop overload degrades into explicit rejects, never into
   latency collapse or a crash.

Both are wall-clock mechanisms at the system boundary, *before* the
virtual-time stamp: shedding changes which messages enter the log, never
how logged messages replay, so determinism is untouched by overload.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/second, ``burst`` cap.

    Time is injected (``now_s``) so tests are deterministic; the bucket
    starts full, which lets a well-behaved client open with a burst.
    A non-positive ``rate`` disables limiting (always allows).
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float,
                 now_s: Optional[float] = None):
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._stamp = time.monotonic() if now_s is None else float(now_s)

    def allow(self, n: float = 1.0, now_s: Optional[float] = None) -> bool:
        """Consume ``n`` tokens if available; False means rate-limited."""
        if self.rate <= 0:
            return True
        now = time.monotonic() if now_s is None else float(now_s)
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens available as of the last :meth:`allow` call."""
        return self._tokens


class AdmissionController:
    """Global in-flight bounds for one gateway.

    ``admit(nbytes)`` charges one message of ``nbytes`` wire bytes and
    returns False (charging nothing) when either cap would be exceeded
    or the downstream transport reports congestion; ``release(nbytes)``
    refunds it once the ingress offer has executed.  Non-positive caps
    disable the corresponding bound.
    """

    def __init__(self, max_inflight_msgs: int = 1024,
                 max_inflight_bytes: int = 8 * 1024 * 1024,
                 congested: Optional[Callable[[], bool]] = None):
        self.max_inflight_msgs = int(max_inflight_msgs)
        self.max_inflight_bytes = int(max_inflight_bytes)
        self._congested = congested
        self.inflight_msgs = 0
        self.inflight_bytes = 0
        #: Diagnostics: lifetime admits / refusals.
        self.admitted = 0
        self.refused = 0

    def admit(self, nbytes: int) -> bool:
        """Charge one in-flight message, or refuse without charging."""
        if (self.max_inflight_msgs > 0
                and self.inflight_msgs + 1 > self.max_inflight_msgs):
            self.refused += 1
            return False
        if (self.max_inflight_bytes > 0
                and self.inflight_bytes + nbytes > self.max_inflight_bytes):
            self.refused += 1
            return False
        if self._congested is not None and self._congested():
            # An outbound channel is over its high-water mark: the
            # engine is not absorbing what was already admitted, so new
            # work is shed instead of piling onto the backlog.
            self.refused += 1
            return False
        self.inflight_msgs += 1
        self.inflight_bytes += nbytes
        self.admitted += 1
        return True

    def release(self, nbytes: int) -> None:
        """Refund one admitted message (clamped at zero for safety)."""
        self.inflight_msgs = max(0, self.inflight_msgs - 1)
        self.inflight_bytes = max(0, self.inflight_bytes - nbytes)
