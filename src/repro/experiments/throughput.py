"""Section III.A's throughput study.

"We estimated throughput by increasing the message rates of the external
clients from the initial 1000 messages/second gradually until the system
became unstable due to inability to keep up with message rates.  In both
deterministic and non-deterministic execution modes, the system
saturated at 1235 messages/second."

The merger's capacity bound is 400 µs/event with two senders, i.e. 1250
msg/s/sender; the paper's point is that determinism costs *no*
throughput — both modes saturate at the same rate just below that bound.
We ramp the per-sender rate and detect instability as sustained latency
growth between the first and last third of the run (a stable queue's
latency is stationary; an overloaded queue's grows without bound).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import Fig1Params, run_fig1
from repro.sim.kernel import TICKS_PER_S, seconds

#: Default per-sender rates (messages/second) to ramp through.
DEFAULT_RATES = (1000, 1100, 1150, 1200, 1225, 1250, 1275, 1300)


def _growth_ratio(latencies: List[int]) -> float:
    """Mean latency of the last third divided by the first third."""
    if len(latencies) < 30:
        return 1.0
    third = len(latencies) // 3
    first = sum(latencies[:third]) / third
    last = sum(latencies[-third:]) / third
    if first <= 0:
        return 1.0
    return last / first


def run_throughput(duration: int = seconds(5),
                   rates: Sequence[int] = DEFAULT_RATES,
                   growth_threshold: float = 2.0,
                   seed: int = 0,
                   base: Optional[Fig1Params] = None) -> List[Dict]:
    """Ramp the offered rate in both modes; one row per (rate, mode)."""
    base = base or Fig1Params()
    rows: List[Dict] = []
    for mode in ("nondeterministic", "deterministic"):
        for rate in rates:
            interarrival = TICKS_PER_S // rate
            metrics = run_fig1(replace(
                base, mode=mode, duration=duration,
                mean_interarrival=interarrival, seed=seed,
            ))
            growth = _growth_ratio(metrics.latencies)
            rows.append({
                "mode": mode,
                "rate_per_sender": rate,
                "mean_latency_us": metrics.mean_latency_us(),
                "p95_latency_us": metrics.latency_percentile_us(95),
                "growth_ratio": growth,
                "stable": growth < growth_threshold,
                "messages": metrics.latency_count(),
            })
    return rows


def saturation_point(rows: List[Dict], mode: str) -> Optional[int]:
    """Highest stable rate for one mode (None if none were stable)."""
    stable = [r["rate_per_sender"] for r in rows
              if r["mode"] == mode and r["stable"]]
    return max(stable) if stable else None


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    rows = run_throughput()
    print("III.A — throughput saturation")
    print(format_table(rows, ["mode", "rate_per_sender", "mean_latency_us",
                              "growth_ratio", "stable"]))
    for mode in ("nondeterministic", "deterministic"):
        print(f"saturation ({mode}): {saturation_point(rows, mode)} msg/s/sender")


if __name__ == "__main__":  # pragma: no cover
    main()
