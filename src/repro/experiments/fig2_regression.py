"""Figure 2: calibrating the estimator by linear regression.

The paper executed Code Body 1 10,000 times with U(1,19) iterations and
fitted service time against iteration count through the origin:
τ = 61827 ξ₁ ticks (Eq. 2), R² = 0.9154, "highly right-skewed" residuals,
and "close to zero correlation between the number of iterations and the
residuals".

We regenerate the measurements from the synthetic service-time trace
(see DESIGN.md's substitution note), run the same regression through
:class:`~repro.core.calibration.LinearRegressionCalibrator`, and report
the same statistics, plus the per-iteration-count latency profile that
makes up the figure's scatter.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.calibration import LinearRegressionCalibrator
from repro.sim.rng import RngRegistry
from repro.sim.trace import synthesize_service_trace
from repro.vt.time import TICKS_PER_US


def run_fig2(n_samples: int = 10_000, seed: int = 0,
             slope_us: float = 61.827) -> Dict:
    """Reproduce Figure 2; returns the fit summary and scatter rows."""
    rng = RngRegistry(seed).stream("fig2-trace")
    trace = synthesize_service_trace(
        rng, n=n_samples, slope_ticks=int(round(slope_us * TICKS_PER_US))
    )

    calibrator = LinearRegressionCalibrator(["loop"], fit_intercept=False)
    for iterations, duration in trace.samples:
        calibrator.add_sample({"loop": iterations}, duration)
    fit = calibrator.fit()

    scatter: List[Dict] = []
    for iterations, durations in sorted(trace.buckets().items()):
        ordered = sorted(durations)
        scatter.append({
            "iterations": iterations,
            "n": len(ordered),
            "mean_us": sum(ordered) / len(ordered) / TICKS_PER_US,
            "p10_us": ordered[int(0.10 * (len(ordered) - 1))] / TICKS_PER_US,
            "p90_us": ordered[int(0.90 * (len(ordered) - 1))] / TICKS_PER_US,
            "predicted_us": fit.coefficient("loop") * iterations / TICKS_PER_US,
        })

    return {
        "paper": {
            "slope_us_per_iteration": 61.827,
            "r_squared": 0.9154,
            "residual_skew": "highly right-skewed",
            "residual_iteration_corr": "close to zero",
        },
        "measured": {
            "slope_us_per_iteration": fit.coefficient("loop") / TICKS_PER_US,
            "r_squared": fit.r_squared,
            "residual_skewness": fit.residual_skewness,
            "residual_iteration_corr": fit.residual_feature_corr[0],
            "n_samples": fit.n_samples,
        },
        "scatter": scatter,
        "fit": fit,
    }


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    result = run_fig2()
    print("Figure 2 — estimator calibration")
    print("paper   :", result["paper"])
    print("measured:", result["measured"])
    print(format_table(result["scatter"]))


if __name__ == "__main__":  # pragma: no cover
    main()
