"""Section III.A's dumb-estimator study.

"We re-ran the experiment, this time substituting a 'dumb' estimator
that always predicted a computation time of 600 µs — the average
computation time per message over all executions.  In this version of
the experiment, the overhead of determinism varied considerably as a
function of the standard deviation ... it steadily increases, reaching a
high of 13% for the case where the number of iterations is in the range
from 1 to 19", while in the constant-work case the dumb estimator
"slightly outperforms the smart estimator with non-prescient silence
estimates".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.estimators import ConstantEstimator
from repro.experiments.common import Fig1Params, overhead_pct, run_fig1
from repro.experiments.fig3_variability import DEFAULT_SPREADS, compute_time_sd_us
from repro.sim.kernel import seconds, us
from repro.vt.time import TICKS_PER_US


def run_dumb_estimator(duration: int = seconds(5),
                       spreads: Sequence[int] = DEFAULT_SPREADS,
                       dumb_estimate: int = us(600),
                       seed: int = 0,
                       base: Optional[Fig1Params] = None) -> List[Dict]:
    """Smart vs dumb estimator overhead across the variability sweep."""
    base = base or Fig1Params()
    rows: List[Dict] = []
    for half_width in spreads:
        sweep = replace(
            base,
            duration=duration,
            iterations_low=10 - half_width,
            iterations_high=10 + half_width,
            seed=seed,
        )
        baseline = run_fig1(replace(sweep, mode="nondeterministic"))
        smart = run_fig1(replace(sweep, mode="deterministic"))
        dumb = run_fig1(replace(
            sweep, mode="deterministic",
            estimator=ConstantEstimator(dumb_estimate),
        ))
        base_us = baseline.mean_latency_us()
        rows.append({
            "sd_us": compute_time_sd_us(
                half_width, sweep.per_iteration / TICKS_PER_US
            ),
            "half_width": half_width,
            "nondet_latency_us": base_us,
            "smart_latency_us": smart.mean_latency_us(),
            "dumb_latency_us": dumb.mean_latency_us(),
            "smart_overhead_pct": overhead_pct(base_us, smart.mean_latency_us()),
            "dumb_overhead_pct": overhead_pct(base_us, dumb.mean_latency_us()),
            "dumb_probes_per_message": dumb.probes_per_message(),
        })
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    rows = run_dumb_estimator()
    print("III.A — dumb (600 µs constant) vs smart estimator")
    print(format_table(rows, ["sd_us", "smart_overhead_pct",
                              "dumb_overhead_pct",
                              "dumb_probes_per_message"]))


if __name__ == "__main__":  # pragma: no cover
    main()
