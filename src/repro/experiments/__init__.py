"""Evaluation harness: one module per paper table/figure.

Every experiment is a pure function from parameters to a list of row
dicts, so benchmarks, tests, and the command-line entry points share one
implementation.  Default parameters reproduce the paper's configuration;
benchmarks pass scaled-down durations.

| Module | Paper result |
| --- | --- |
| :mod:`~repro.experiments.fig2_regression` | Fig. 2 — estimator calibration by linear regression |
| :mod:`~repro.experiments.fig3_variability` | Fig. 3 — latency vs sender variability, 3 modes |
| :mod:`~repro.experiments.dumb_estimator` | §III.A — crude estimator overhead growth |
| :mod:`~repro.experiments.throughput` | §III.A — saturation equality of det/non-det |
| :mod:`~repro.experiments.fig4_sensitivity` | Fig. 4 — sensitivity to the estimator coefficient |
| :mod:`~repro.experiments.fig5_distributed` | Fig. 5 — two-engine run, lazy vs curiosity |
| :mod:`~repro.experiments.recovery` | §II.F — failover/replay correctness + recovery time |
| :mod:`~repro.experiments.ablations` | §II.G — checkpoint frequency, silence policies, re-tuning |
"""

from repro.experiments.common import Fig1Params, format_table, run_fig1
from repro.experiments.fig2_regression import run_fig2
from repro.experiments.fig3_variability import run_fig3
from repro.experiments.dumb_estimator import run_dumb_estimator
from repro.experiments.throughput import run_throughput
from repro.experiments.fig4_sensitivity import run_fig4
from repro.experiments.fig5_distributed import run_fig5
from repro.experiments.recovery import run_recovery
from repro.experiments.ablations import (
    run_bias_ablation,
    run_checkpoint_ablation,
    run_detection_ablation,
    run_retuning_ablation,
    run_silence_policy_ablation,
)
from repro.experiments.extensions import (
    run_comm_estimator_ablation,
    run_preprobe_ablation,
    run_priority_ablation,
)
from repro.experiments.alternatives import run_alternatives

__all__ = [
    "Fig1Params",
    "format_table",
    "run_alternatives",
    "run_bias_ablation",
    "run_checkpoint_ablation",
    "run_comm_estimator_ablation",
    "run_detection_ablation",
    "run_dumb_estimator",
    "run_preprobe_ablation",
    "run_priority_ablation",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_recovery",
    "run_retuning_ablation",
    "run_silence_policy_ablation",
    "run_throughput",
]
