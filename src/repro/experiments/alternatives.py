"""Quantifying section IV's conjectures: TART vs the alternatives.

The paper *argues* that passive-replica checkpoint-replay beats the
alternatives but measures none of them: "We conjecture that the
overheads of logging external messages and intermittently sending
asynchronous soft checkpoints in our approach will be lower than the
overheads of performing distributed transaction commits per processed
event."  This experiment builds the comparators and measures:

* **TART** — deterministic execution + soft checkpoints to a passive
  replica (the paper's system);
* **active replication** — two live copies of every engine processing
  the same multicast inputs (determinism makes the copies agree with no
  coordination, the best case for active replication — cf. Basile et
  al. [14], which additionally pays mutex-order forwarding);
* **transactional** — one copy, but every message handler pays a
  synchronous per-event commit (modelled as added service time: two
  forced log writes of ``commit_us`` each, as a 2009-era transactional
  object cache would).

Reported per approach: failure-free latency, compute ticks per
delivered message (the redundancy bill), network frames per message
(the coordination bill), checkpoint bytes, and the output gap when an
engine hosting the merger is killed mid-run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.wordcount import (
    birth_of,
    make_merger_class,
    make_sender_class,
    sentence_factory,
)
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant, Exponential
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us
from repro.vt.time import TICKS_PER_MS, TICKS_PER_US


class MulticastProducer:
    """Feeds identical payload streams to several ingresses.

    Active replication's input stage: every replica group receives the
    same externally-timestamped inputs (the equivalent of a reliable
    multicast from the client).
    """

    def __init__(self, sim, rng, ingresses, payload_factory,
                 mean_interarrival: int, stop_at: Optional[int] = None):
        self.sim = sim
        self.rng = rng
        self.ingresses = list(ingresses)
        self.payload_factory = payload_factory
        self.interarrival = Exponential(mean_interarrival)
        self.stop_at = stop_at
        self.produced = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self.sim.after(self.interarrival.sample(self.rng), self._produce,
                       "multicast-producer")

    def _produce(self) -> None:
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return
        payload = self.payload_factory(self.rng, self.produced, self.sim.now)
        for ingress in self.ingresses:
            ingress.offer(payload)
        self.produced += 1
        self.sim.after(self.interarrival.sample(self.rng), self._produce,
                       "multicast-producer")


def _wordcount_app(suffix: str = "", commit_us: int = 0) -> Application:
    """The Figure 1 app, optionally suffixed (replica copies) and with a
    per-event commit cost folded into every handler."""
    sender_class = make_sender_class(
        per_iteration_true=us(60),
        name=f"Sender{suffix or ''}",
    )
    if commit_us:
        # Commit cost: two forced writes per processed event, paid in
        # real time and reflected in the estimator (it is real work).
        from repro.core.cost import LinearCost

        sender_class = make_sender_class(per_iteration_true=us(60))
        sender_cost = LinearCost(
            {"loop": us(60)},
            features=lambda p: {"loop": len(p["words"])},
            intercept=2 * us(commit_us),
        )
        original = sender_class

        class _CommitSender(original):  # type: ignore[valid-type]
            pass

        spec = _CommitSender.handler_specs()["input"]
        _CommitSender.process_sentence._tart_handler = type(spec)(
            input_name=spec.input_name, cost=sender_cost,
            two_way=False, method_name=spec.method_name,
        )
        sender_class = _CommitSender
        merger_class = make_merger_class(us(400) + 2 * us(commit_us))
    else:
        merger_class = make_merger_class(us(400))

    app = Application(f"alt{suffix}")
    for i in (1, 2):
        app.add_component(f"sender{i}{suffix}", sender_class)
    app.add_component(f"merger{suffix}", merger_class)
    for i in (1, 2):
        app.external_input(f"ext{i}{suffix}", f"sender{i}{suffix}", "input")
        app.wire(f"sender{i}{suffix}", "port1", f"merger{suffix}", "input")
    app.external_output(f"merger{suffix}", "out", f"sink{suffix}")
    return app


def _total_busy_ticks(deployment: Deployment) -> int:
    total = 0
    for engine in deployment.engines.values():
        for runtime in engine.runtimes.values():
            total += getattr(runtime.processor, "busy_ticks", 0)
    return total


def _total_frames(deployment: Deployment) -> int:
    return sum(ch.data_link.frames_sent + ch.ack_link.frames_sent
               for ch in deployment.network.channels().values())


def _output_gap(consumer_times: List[int], around: int) -> int:
    gap = 0
    for before, after in zip(consumer_times, consumer_times[1:]):
        if before <= around <= after or (before >= around and gap == 0):
            gap = max(gap, after - before)
    return gap


def _run_tart(duration, kill_at, seed, interarrival) -> Dict[str, Any]:
    app = _wordcount_app()
    deployment = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=ms(50)),
        default_link=LinkParams(delay=Constant(us(100))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        deployment.add_poisson_producer(f"ext{i}", factory,
                                        mean_interarrival=interarrival)
    if kill_at is not None:
        FailureInjector(deployment).kill_engine("E2", at=kill_at,
                                                detection_delay=ms(2))
    deployment.run(until=duration)
    sink = deployment.consumer("sink")
    times = [t for _s, _v, _p, t in sink.effective_outputs]
    return {
        "approach": "TART (passive replica)",
        "metrics": deployment.metrics,
        "messages": len(times),
        "busy_ticks": _total_busy_ticks(deployment),
        "frames": _total_frames(deployment),
        "checkpoint_bytes": deployment.metrics.accumulator("checkpoint_bytes"),
        "output_gap": _output_gap(times, kill_at) if kill_at else 0,
    }


def _run_active(duration, kill_at, seed, interarrival) -> Dict[str, Any]:
    # Two full copies: group A on E1a/E2a, group B on E1b/E2b, fed the
    # same inputs.  No checkpointing — redundancy IS the recovery story.
    app = Application("active")
    placement: Dict[str, str] = {}
    for suffix in ("_a", "_b"):
        copy = _wordcount_app(suffix)
        for name in copy.component_names():
            app.add_component(name, copy.component_class(name))
        for i in (1, 2):
            app.external_input(f"ext{i}{suffix}", f"sender{i}{suffix}",
                               "input")
            app.wire(f"sender{i}{suffix}", "port1", f"merger{suffix}",
                     "input")
        app.external_output(f"merger{suffix}", "out", f"sink{suffix}")
        placement.update({
            f"sender1{suffix}": f"E1{suffix}",
            f"sender2{suffix}": f"E1{suffix}",
            f"merger{suffix}": f"E2{suffix}",
        })
    deployment = Deployment(
        app, Placement(placement),
        engine_config=EngineConfig(jitter=NormalTickJitter()),
        default_link=LinkParams(delay=Constant(us(100))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        producer = MulticastProducer(
            deployment.sim,
            deployment.rng.stream(f"multicast:{i}"),
            [deployment.ingress(f"ext{i}_a"), deployment.ingress(f"ext{i}_b")],
            factory, mean_interarrival=interarrival,
        )
        deployment.start()
        producer.start()
    if kill_at is not None:
        FailureInjector(deployment).kill_engine("E2_a", at=kill_at,
                                                detection_delay=ms(2))
    deployment.run(until=duration)

    # The client merges the replica outputs, deduplicating by sequence.
    merged_times: Dict[int, int] = {}
    latencies: List[int] = []
    for suffix in ("_a", "_b"):
        for seq, _vt, payload, t in \
                deployment.consumer(f"sink{suffix}").effective_outputs:
            if seq not in merged_times or t < merged_times[seq]:
                merged_times[seq] = t
    births: Dict[int, int] = {}
    for suffix in ("_a", "_b"):
        for seq, _vt, payload, _t in \
                deployment.consumer(f"sink{suffix}").effective_outputs:
            births.setdefault(seq, payload["birth"])
    times = [merged_times[seq] for seq in sorted(merged_times)]
    latencies = [merged_times[seq] - births[seq]
                 for seq in sorted(merged_times)]
    mean_latency_us = (sum(latencies) / len(latencies) / TICKS_PER_US
                       if latencies else float("nan"))
    return {
        "approach": "active replication (2x)",
        "mean_latency_us": mean_latency_us,
        "messages": len(times),
        "busy_ticks": _total_busy_ticks(deployment),
        "frames": _total_frames(deployment),
        "checkpoint_bytes": 0,
        "output_gap": _output_gap(times, kill_at) if kill_at else 0,
    }


def _run_transactional(duration, kill_at, seed, commit_us,
                       interarrival) -> Dict[str, Any]:
    app = _wordcount_app(commit_us=commit_us)
    deployment = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter()),
        default_link=LinkParams(delay=Constant(us(100))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        deployment.add_poisson_producer(f"ext{i}", factory,
                                        mean_interarrival=interarrival)
    deployment.run(until=duration)
    sink = deployment.consumer("sink")
    times = [t for _s, _v, _p, t in sink.effective_outputs]
    return {
        "approach": f"transactional ({commit_us}us commits)",
        "metrics": deployment.metrics,
        "messages": len(times),
        "busy_ticks": _total_busy_ticks(deployment),
        "frames": _total_frames(deployment),
        "checkpoint_bytes": 0,
        "output_gap": None,  # depends on the store's own recovery
    }


def run_alternatives(duration: int = seconds(2),
                     kill_at: Optional[int] = None,
                     commit_us: int = 100,
                     interarrival: Optional[int] = None,
                     seed: int = 0) -> List[Dict]:
    """Compare TART against active replication and transactions.

    Each approach runs twice: once failure-free (latency / compute /
    traffic numbers) and once with the merger engine killed at
    ``kill_at`` (the output-gap number).  The offered rate is sized so
    even the commit-burdened merger stays below saturation.
    """
    if kill_at is None:
        kill_at = duration // 2
    if interarrival is None:
        interarrival = int(ms(1.5))
    runners = [
        lambda ka: _run_tart(duration, ka, seed, interarrival),
        lambda ka: _run_active(duration, ka, seed, interarrival),
        lambda ka: _run_transactional(duration, None, seed, commit_us,
                                      interarrival),
    ]
    rows: List[Dict] = []
    for runner in runners:
        clean = runner(None)
        messages = max(1, clean["messages"])
        metrics = clean.get("metrics")
        mean_latency = (clean.get("mean_latency_us")
                        if metrics is None else metrics.mean_latency_us())
        if clean["approach"].startswith("transactional"):
            gap_ms = None  # recovery belongs to the transactional store
        else:
            killed = runner(kill_at)
            gap_ms = killed["output_gap"] / TICKS_PER_MS
        rows.append({
            "approach": clean["approach"],
            "mean_latency_us": mean_latency,
            "compute_us_per_msg": clean["busy_ticks"] / messages
            / TICKS_PER_US,
            "frames_per_msg": clean["frames"] / messages,
            "checkpoint_kb": clean["checkpoint_bytes"] / 1024.0,
            "output_gap_ms": gap_ms,
            "messages": clean["messages"],
        })
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    rows = run_alternatives()
    print("IV — TART vs active replication vs transactions "
          "(merger engine killed mid-run)")
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
