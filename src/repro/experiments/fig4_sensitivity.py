"""Figure 4: sensitivity of performance to the estimator coefficient.

Section III.B replaces the normal jitter with measured execution times:
"we imported 10000 of these execution time measurements into our
simulation ... we used the estimator of equation (2) to compute the
predicted virtual time, and a random measurement from our imported set
having the same iteration count, to compute the real time."  It then
sweeps the estimator coefficient from 48 to 70 µs/iteration and reports
deterministic latency, non-deterministic latency, messages received out
of real-time order (x10 in the figure), and curiosity probes, over one
simulated minute at 1000 msg/s/sender.

The paper's findings to match in shape: the latency minimum sits near
the regression coefficient (60-62 µs, nearly flat between), out-of-order
messages stay under ~10% at the optimum, and probes bottom out around
1.5/message.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.estimators import LinearEstimator
from repro.experiments.common import Fig1Params, run_fig1
from repro.sim.jitter import TraceJitter
from repro.sim.rng import RngRegistry
from repro.sim.trace import synthesize_service_trace
from repro.vt.time import TICKS_PER_US
from repro.sim.kernel import seconds, us

#: Paper sweep: 48..70 µs/iteration in 2 µs steps.
DEFAULT_COEFFICIENTS_US = tuple(range(48, 71, 2))


def build_realistic_jitter(seed: int = 0, n_samples: int = 10_000,
                           slope_us: float = 61.827) -> TraceJitter:
    """The imported-measurements jitter model (same-iteration sampling)."""
    rng = RngRegistry(seed).stream("fig4-trace")
    trace = synthesize_service_trace(
        rng, n=n_samples, slope_ticks=int(round(slope_us * TICKS_PER_US))
    )
    return TraceJitter(trace.buckets(), key="loop")


def run_fig4(duration: int = seconds(10),
             coefficients_us: Sequence[int] = DEFAULT_COEFFICIENTS_US,
             seed: int = 0,
             trace_seed: int = 0,
             base: Optional[Fig1Params] = None) -> List[Dict]:
    """Sweep the estimator coefficient under realistic jitter."""
    base = base or Fig1Params()
    jitter = build_realistic_jitter(trace_seed)
    # The non-deterministic baseline does not use estimators; measure it
    # once per sweep with the nominal coefficient.
    nondet = run_fig1(replace(
        base, mode="nondeterministic", duration=duration, jitter=jitter,
        seed=seed,
    ))
    rows: List[Dict] = []
    for coeff_us in coefficients_us:
        estimator = LinearEstimator({"loop": us(coeff_us)})
        metrics = run_fig1(replace(
            base, mode="deterministic", duration=duration, jitter=jitter,
            estimator=estimator, seed=seed,
        ))
        rows.append({
            "coefficient_us": coeff_us,
            "det_latency_us": metrics.mean_latency_us(),
            "nondet_latency_us": nondet.mean_latency_us(),
            "out_of_order": metrics.counter("out_of_order_arrivals"),
            "out_of_order_fraction": metrics.out_of_order_fraction(),
            "curiosity_probes": metrics.counter("curiosity_probes"),
            "probes_per_message": metrics.probes_per_message(),
            "messages": metrics.latency_count(),
        })
    return rows


def best_coefficient(rows: List[Dict]) -> int:
    """Coefficient with the lowest deterministic latency."""
    return min(rows, key=lambda r: r["det_latency_us"])["coefficient_us"]


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    rows = run_fig4()
    print("Figure 4 — sensitivity to estimator coefficient")
    print(format_table(rows, ["coefficient_us", "det_latency_us",
                              "nondet_latency_us", "out_of_order_fraction",
                              "probes_per_message"]))
    print("best coefficient:", best_coefficient(rows), "µs/iteration")


if __name__ == "__main__":  # pragma: no cover
    main()
