"""Figure 5: the two-engine distributed run, lazy vs curiosity silence.

"We ran an actual multi-engine implementation, not a simulation, of the
TART protocols ... The Sender components were on one engine, the Merger
on a second.  We compared non-deterministic execution to deterministic
execution with both lazy and curiosity-based silence propagation.  The
results ... suggest that curiosity-based silence propagation ... still
had less than a 20% overhead relative to non-determinism", while lazy
silence is far worse (multi-millisecond latencies).

Our analogue runs the full protocol stack — reliable channels over a
latency link, real silence/probe/checkpoint messages — across two
engines.  Per-request latencies are reported in arrival order, bucketed
for plotting, exactly like the figure's "web request number" x-axis.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps.fanin import (
    build_fanin_app,
    make_fanin_merger_class,
    make_fanin_sender_class,
    request_factory,
)
from repro.apps.wordcount import birth_of
from repro.core.silence_policy import (
    CuriositySilencePolicy,
    LazySilencePolicy,
    SilencePolicy,
)
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Normal
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, us
from repro.vt.time import TICKS_PER_MS

#: The three execution modes of Figure 5.
MODES = ("nondeterministic", "deterministic-lazy", "deterministic-curiosity")


def _policy_for(mode: str) -> Callable[[], SilencePolicy]:
    if mode == "deterministic-lazy":
        return LazySilencePolicy
    return CuriositySilencePolicy


def run_fig5_mode(mode: str,
                  n_requests: int = 3000,
                  mean_interarrival: int = us(1250),
                  link_delay: int = us(100),
                  sender_service: int = us(300),
                  merger_service: int = us(500),
                  estimate_error: float = 1.0,
                  seed: int = 0) -> Dict:
    """One Figure 5 run; returns metrics and the per-request latencies.

    ``estimate_error`` models the paper's "ad-hoc estimators": declared
    costs are off from the truth by this factor.
    """
    sender_class = make_fanin_sender_class(sender_service, estimate_error)
    merger_class = make_fanin_merger_class(merger_service, estimate_error)
    app = build_fanin_app(2, sender_class, merger_class)
    placement = Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"})
    config = EngineConfig(
        mode=("nondeterministic" if mode == "nondeterministic"
              else "deterministic"),
        policy_factory=_policy_for(mode),
        jitter=NormalTickJitter(),
    )
    deployment = Deployment(
        app, placement,
        engine_config=config,
        default_link=LinkParams(delay=Normal(link_delay, link_delay // 10)),
        control_delay=us(5),
        birth_of=birth_of,
        master_seed=seed,
    )
    per_sender = (n_requests + 1) // 2
    for i in (1, 2):
        deployment.add_poisson_producer(
            f"ext{i}", request_factory(),
            mean_interarrival=mean_interarrival,
            max_messages=per_sender,
        )
    # Run long enough for every request to drain even under lazy silence.
    deployment.run(until=per_sender * mean_interarrival * 8)
    return {
        "mode": mode,
        "metrics": deployment.metrics,
        "latencies_ms": [lat / TICKS_PER_MS
                         for lat in deployment.metrics.latencies],
    }


def run_fig5(n_requests: int = 3000, seed: int = 0,
             bucket: int = 100, **kwargs) -> Dict:
    """All three Figure 5 modes; returns summary and bucketed series."""
    runs = {mode: run_fig5_mode(mode, n_requests=n_requests, seed=seed,
                                **kwargs)
            for mode in MODES}
    baseline = runs["nondeterministic"]["metrics"].mean_latency_us()
    summary: List[Dict] = []
    for mode in MODES:
        metrics = runs[mode]["metrics"]
        mean_us = metrics.mean_latency_us()
        summary.append({
            "mode": mode,
            "mean_latency_ms": mean_us / 1000.0,
            "overhead_pct": (mean_us - baseline) / baseline * 100.0,
            "messages": metrics.latency_count(),
            "probes_per_message": metrics.probes_per_message(),
            "pessimism_events": metrics.counter("pessimism_events"),
        })
    series: List[Dict] = []
    max_len = max(len(r["latencies_ms"]) for r in runs.values())
    for start in range(0, max_len, bucket):
        row: Dict = {"request_number": start + 1}
        for mode in MODES:
            window = runs[mode]["latencies_ms"][start:start + bucket]
            row[mode] = sum(window) / len(window) if window else None
        series.append(row)
    return {"summary": summary, "series": series, "runs": runs}


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    result = run_fig5()
    print("Figure 5 — two-engine distributed implementation")
    print(format_table(result["summary"]))
    print(format_table(result["series"]))


if __name__ == "__main__":  # pragma: no cover
    main()
