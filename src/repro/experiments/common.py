"""Shared harness for the Figure-1 simulation studies.

The paper's sections III.A/III.B all run the same configuration: the
Figure 1 application (two senders, one merger) on a multiprocessor
engine, each component on a dedicated processor, external Poisson
clients, 20 µs curiosity probes.  :func:`run_fig1` builds and runs that
configuration once and returns its metrics; the per-figure modules sweep
its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.apps.wordcount import (
    birth_of,
    build_wordcount_app,
    make_merger_class,
    make_sender_class,
    sentence_factory,
)
from repro.core.estimators import Estimator
from repro.core.silence_policy import CuriositySilencePolicy
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.metrics import MetricSet
from repro.runtime.placement import single_engine_placement
from repro.sim.jitter import JitterModel, NormalTickJitter
from repro.sim.kernel import ms, seconds, us


@dataclass
class Fig1Params:
    """One run of the Figure 1 configuration."""

    #: "nondeterministic", "deterministic", or "prescient".
    mode: str = "deterministic"
    #: Simulated run length in ticks.
    duration: int = seconds(5)
    #: Number of sender components (paper: 2).
    n_senders: int = 2
    #: Mean inter-arrival per sender in ticks (paper: 1 msg / 1000 µs).
    mean_interarrival: int = ms(1)
    #: Iteration-count distribution bounds (paper sweeps these).
    iterations_low: int = 1
    iterations_high: int = 19
    #: True per-iteration cost in ticks (paper: 60 µs).
    per_iteration: int = us(60)
    #: Estimator override; None = smart linear estimator at per_iteration.
    estimator: Optional[Estimator] = None
    #: Merger fixed service time (paper: 400 µs).
    merger_service: int = us(400)
    #: One-way control-message delay; probe round trip = 2x this
    #: (paper: probes take 20 µs).
    control_delay: int = us(10)
    #: Execution jitter; None = the paper's per-tick N(1, 0.1).
    jitter: Optional[JitterModel] = None
    #: RNG master seed.
    seed: int = 0
    #: Probe backoff between unhelpful answers.
    probe_backoff: int = us(20)

    def effective_mode(self) -> str:
        """Engine mode string ("prescient" maps to deterministic)."""
        return ("nondeterministic" if self.mode == "nondeterministic"
                else "deterministic")


def run_fig1(params: Fig1Params) -> MetricSet:
    """Run the Figure 1 configuration once; return its metrics."""
    sender_class = make_sender_class(
        per_iteration_true=params.per_iteration,
        estimator=params.estimator,
    )
    merger_class = make_merger_class(service_time=params.merger_service)
    app = build_wordcount_app(params.n_senders, sender_class, merger_class)

    jitter = params.jitter if params.jitter is not None else NormalTickJitter()
    backoff = params.probe_backoff
    config = EngineConfig(
        mode=params.effective_mode(),
        prescient=(params.mode == "prescient"),
        jitter=jitter,
        policy_factory=lambda: CuriositySilencePolicy(probe_backoff=backoff),
    )
    deployment = Deployment(
        app,
        single_engine_placement(app.component_names()),
        engine_config=config,
        control_delay=params.control_delay,
        birth_of=birth_of,
        master_seed=params.seed,
    )
    factory = sentence_factory(params.iterations_low, params.iterations_high)
    for i in range(1, params.n_senders + 1):
        deployment.add_poisson_producer(
            f"ext{i}", factory, mean_interarrival=params.mean_interarrival
        )
    deployment.run(until=params.duration)
    return deployment.metrics


def compare_modes(base: Fig1Params,
                  modes: Sequence[str] = ("nondeterministic",
                                          "deterministic",
                                          "prescient")) -> Dict[str, MetricSet]:
    """Run the same workload under several scheduling modes."""
    return {mode: run_fig1(replace(base, mode=mode)) for mode in modes}


def overhead_pct(baseline_us: float, measured_us: float) -> float:
    """Relative latency overhead in percent."""
    if baseline_us <= 0:
        return float("nan")
    return (measured_us - baseline_us) / baseline_us * 100.0


def format_table(rows: List[Dict], columns: Optional[List[str]] = None) -> str:
    """Render experiment rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), max(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.rjust(w) for cell, w in zip(r, widths)) for r in rendered
    )
    return f"{header}\n{rule}\n{body}"


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
