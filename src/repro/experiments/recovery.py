"""Recovery correctness and recovery-time experiment (paper II.F).

The paper evaluates performance (its recovery machinery is argued
correct by construction); this experiment makes the correctness claim
*measurable*: run the Figure 1 application across two engines, kill one
mid-run, fail over to its passive replica, and compare the effective
external output stream against a failure-free run of the identical
workload.  Determinism means the two must be exactly equal — modulo
output stutter, which is reported separately.

Also reports the recovery timeline: detection, replica promotion,
replayed message count, and output-gap duration (the paper's "time to
recover", tuned by the checkpoint frequency — see the checkpoint
ablation for the sweep).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us
from repro.vt.time import TICKS_PER_MS


def _build(checkpoint_interval: int, seed: int,
           mean_interarrival: int) -> Deployment:
    app = build_wordcount_app(2)
    placement = Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"})
    deployment = Deployment(
        app, placement,
        engine_config=EngineConfig(
            jitter=NormalTickJitter(),
            checkpoint_interval=checkpoint_interval,
        ),
        default_link=LinkParams(delay=Constant(us(100))),
        control_delay=us(10),
        birth_of=birth_of,
        master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        deployment.add_poisson_producer(
            f"ext{i}", factory, mean_interarrival=mean_interarrival
        )
    return deployment


def _effective_stream(deployment: Deployment) -> List[tuple]:
    return [
        (seq, payload["total"], payload["count"], payload["events"])
        for seq, _vt, payload, _t in
        deployment.consumer("sink").effective_outputs
    ]


def run_recovery(duration: int = seconds(2),
                 kill_at: int = seconds(1) // 2,
                 detection_delay: int = ms(2),
                 checkpoint_interval: int = ms(50),
                 kill_engine: str = "E2",
                 mean_interarrival: int = ms(1),
                 seed: int = 0) -> Dict:
    """Kill an engine mid-run; compare against the failure-free twin."""
    faulty = _build(checkpoint_interval, seed, mean_interarrival)
    FailureInjector(faulty).kill_engine(
        kill_engine, at=kill_at, detection_delay=detection_delay
    )
    faulty.run(until=duration)

    clean = _build(checkpoint_interval, seed, mean_interarrival)
    clean.run(until=duration)

    faulty_stream = _effective_stream(faulty)
    clean_stream = _effective_stream(clean)
    sink = faulty.consumer("sink")

    # Output-gap: the largest inter-output silence around the failure.
    deliveries = [t for _s, _v, _p, t in sink.effective_outputs]
    gap = 0
    for before, after in zip(deliveries, deliveries[1:]):
        if before <= kill_at <= after or (before >= kill_at and gap == 0):
            gap = max(gap, after - before)
    metrics = faulty.metrics
    return {
        "identical_effective_output": faulty_stream == clean_stream,
        "outputs_faulty": len(faulty_stream),
        "outputs_clean": len(clean_stream),
        "stutter": sink.stutter,
        "messages_replayed": metrics.counter("messages_replayed"),
        "duplicates_discarded": metrics.counter("duplicates_discarded"),
        "checkpoints_captured": metrics.counter("checkpoints_captured"),
        "failovers": faulty.recovery.failover_count(),
        "downtime_ms": metrics.accumulator("failover_downtime_ticks")
        / TICKS_PER_MS,
        "output_gap_ms": gap / TICKS_PER_MS,
        "checkpoint_bytes": metrics.accumulator("checkpoint_bytes"),
    }


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_recovery()
    print("II.F — failover + replay correctness")
    for key, value in result.items():
        print(f"  {key}: {value}")


if __name__ == "__main__":  # pragma: no cover
    main()
