"""Figure 3: latency vs sender-compute variability for three modes.

"We varied the variability of the Sender[i] processors by stages from
constant (every invocation called for 10 iterations) to variable with
uniform random distribution of from 1 to 19 iterations" and compared
Non-deterministic, Deterministic (curiosity, non-prescient) and
Prescient execution.  The paper's findings, which this sweep regenerates:

* latency grows with variability in every mode,
* the determinism overhead stays small (2.8%-4.1%) across the sweep,
* prescience helps only slightly.

The sweep parameter is the half-width ``k`` of U(10-k, 10+k) iterations;
the x-axis value reported is the resulting standard deviation of sender
compute time (60 µs per iteration).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import Fig1Params, compare_modes, overhead_pct
from repro.sim.kernel import seconds
from repro.vt.time import TICKS_PER_US

#: Default half-width sweep: constant .. U(1, 19).
DEFAULT_SPREADS = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9)


def compute_time_sd_us(half_width: int, per_iteration_us: float = 60.0) -> float:
    """Std deviation of sender compute time for U(10-k, 10+k) iterations."""
    n = 2 * half_width + 1
    iteration_sd = math.sqrt((n * n - 1) / 12.0)
    return iteration_sd * per_iteration_us


def run_fig3(duration: int = seconds(5),
             spreads: Sequence[int] = DEFAULT_SPREADS,
             seed: int = 0,
             base: Optional[Fig1Params] = None) -> List[Dict]:
    """Run the Figure 3 sweep; one row per (spread, mode)."""
    base = base or Fig1Params()
    rows: List[Dict] = []
    for half_width in spreads:
        params = replace(
            base,
            duration=duration,
            iterations_low=10 - half_width,
            iterations_high=10 + half_width,
            seed=seed,
        )
        results = compare_modes(params)
        baseline = results["nondeterministic"].mean_latency_us()
        for mode in ("nondeterministic", "deterministic", "prescient"):
            metrics = results[mode]
            rows.append({
                "sd_us": compute_time_sd_us(
                    half_width, params.per_iteration / TICKS_PER_US
                ),
                "half_width": half_width,
                "mode": mode,
                "mean_latency_us": metrics.mean_latency_us(),
                "overhead_pct": overhead_pct(baseline,
                                             metrics.mean_latency_us()),
                "messages": metrics.latency_count(),
                "probes_per_message": metrics.probes_per_message(),
                "pessimism_delay_us_per_msg": (
                    metrics.accumulator("pessimism_delay_ticks")
                    / max(1, metrics.latency_count()) / TICKS_PER_US
                ),
            })
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    rows = run_fig3()
    print("Figure 3 — latency vs variability of sender computation")
    print(format_table(rows, ["sd_us", "mode", "mean_latency_us",
                              "overhead_pct", "probes_per_message"]))


if __name__ == "__main__":  # pragma: no cover
    main()
