"""Ablations over the paper's tuning controls (section II.G).

* **Checkpoint frequency** — "more frequent checkpointing reduces
  recovery time but increases overhead": sweep the interval, report
  recovery gap vs checkpoint traffic.
* **Silence policies** — lazy / curiosity / aggressive /
  hyper-aggressive on the same workload (II.G.3, II.H).
* **Hyper-aggressive bias** — the bias algorithm's trade-off when one
  sender is much slower than the other (II.G.1's closing paragraph).
* **Dynamic re-tuning** — start with a badly calibrated estimator, let
  drift detection trigger a determinism fault, and show latency before
  vs after the re-calibration (II.G.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.wordcount import (
    birth_of,
    build_wordcount_app,
    make_merger_class,
    make_sender_class,
    sentence_factory,
)
from repro.core.estimators import LinearEstimator
from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    BiasSilencePolicy,
    CuriositySilencePolicy,
    HyperAggressiveSilencePolicy,
    LazySilencePolicy,
)
from repro.experiments import recovery as recovery_mod
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import single_engine_placement
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us
from repro.vt.time import TICKS_PER_US


def run_checkpoint_ablation(
    intervals: Sequence[int] = (ms(10), ms(25), ms(50), ms(100), ms(200)),
    duration: int = seconds(2),
    seed: int = 0,
) -> List[Dict]:
    """Sweep checkpoint interval; recovery gap vs checkpoint traffic."""
    rows: List[Dict] = []
    for interval in intervals:
        result = recovery_mod.run_recovery(
            duration=duration, checkpoint_interval=interval, seed=seed
        )
        rows.append({
            "interval_ms": interval / 1_000_000,
            "identical": result["identical_effective_output"],
            "output_gap_ms": result["output_gap_ms"],
            "messages_replayed": result["messages_replayed"],
            "stutter": result["stutter"],
            "checkpoints": result["checkpoints_captured"],
            "checkpoint_bytes": result["checkpoint_bytes"],
        })
    return rows


_POLICIES = {
    "lazy": LazySilencePolicy,
    "curiosity": CuriositySilencePolicy,
    "aggressive": lambda: AggressiveSilencePolicy(interval=us(200)),
    "hyper-aggressive": lambda: HyperAggressiveSilencePolicy(
        bias=us(100), interval=us(200)
    ),
}


def _run_policy(policy_name: str, duration: int, seed: int,
                slow_factor: float = 1.0) -> Dict:
    """One deterministic run of the Figure 1 app under a policy.

    ``slow_factor`` scales sender 2's input rate down, creating the
    asymmetric-rate situation the bias algorithm targets.
    """
    app = build_wordcount_app(2)
    config = EngineConfig(
        mode="deterministic",
        policy_factory=_POLICIES[policy_name],
        jitter=NormalTickJitter(),
    )
    deployment = Deployment(
        app, single_engine_placement(app.component_names()),
        engine_config=config, control_delay=us(10), birth_of=birth_of,
        master_seed=seed,
    )
    factory = sentence_factory()
    deployment.add_poisson_producer("ext1", factory, mean_interarrival=ms(1))
    deployment.add_poisson_producer(
        "ext2", factory, mean_interarrival=int(ms(1) * slow_factor)
    )
    deployment.run(until=duration)
    metrics = deployment.metrics
    return {
        "policy": policy_name,
        "mean_latency_us": metrics.mean_latency_us(),
        "p95_latency_us": metrics.latency_percentile_us(95),
        "probes_per_message": metrics.probes_per_message(),
        "silence_advances": metrics.counter("silence_advances_sent"),
        "pessimism_delay_us_per_msg": (
            metrics.accumulator("pessimism_delay_ticks")
            / max(1, metrics.latency_count()) / TICKS_PER_US
        ),
        "messages": metrics.latency_count(),
    }


def run_silence_policy_ablation(duration: int = seconds(2),
                                seed: int = 0) -> List[Dict]:
    """Compare all four silence policies on the symmetric workload."""
    return [_run_policy(name, duration, seed) for name in _POLICIES]


def run_bias_ablation(duration: int = seconds(2), seed: int = 0,
                      slow_factor: float = 8.0,
                      bias: Optional[int] = None) -> List[Dict]:
    """The bias algorithm under asymmetric sender rates (paper II.G.1).

    "In the absence of aggressive silence propagation protocols, it is
    actually better for ... the process that is slower on the average to
    eagerly promise more silence ticks and delay the next data tick ...
    to improve the chance that messages from the faster process will not
    be delayed."  All parties use lazy propagation (the setting where
    bias matters); the slow sender, on its own engine, either does
    nothing extra or runs the pure bias algorithm with ``bias`` matched
    to its inter-output gap.
    """
    if bias is None:
        # Half the slow sender's inter-output gap: enough to cover most
        # of the gap, with headroom so bunched arrivals are not pushed
        # into an ever-growing virtual-time queue.
        bias = int(ms(1) * slow_factor / 2)
    rows = []
    for variant, slow_policy in (
        ("lazy-everywhere", None),
        ("lazy+bias-on-slow-sender",
         lambda: BiasSilencePolicy(bias=bias)),
    ):
        app = build_wordcount_app(2)
        from repro.runtime.placement import Placement

        placement = Placement({"sender1": "E1", "sender2": "E2",
                               "merger": "E1"})
        base_config = EngineConfig(mode="deterministic",
                                   jitter=NormalTickJitter(),
                                   policy_factory=LazySilencePolicy)
        configs = {}
        if slow_policy is not None:
            configs["E2"] = EngineConfig(
                mode="deterministic", jitter=NormalTickJitter(),
                policy_factory=slow_policy,
            )
        deployment = Deployment(
            app, placement, engine_config=base_config,
            engine_configs=configs, control_delay=us(10),
            birth_of=birth_of, master_seed=seed,
        )
        deployment.add_poisson_producer(
            "ext1", sentence_factory(origin="fast"), mean_interarrival=ms(1))
        deployment.add_poisson_producer(
            "ext2", sentence_factory(origin="slow"),
            mean_interarrival=int(ms(1) * slow_factor))
        deployment.run(until=duration)
        metrics = deployment.metrics
        by_origin: Dict[str, List[int]] = {"fast": [], "slow": []}
        for _seq, _vt, payload, real in \
                deployment.consumer("sink").effective_outputs:
            if payload.get("origin") in by_origin:
                by_origin[payload["origin"]].append(real - payload["birth"])

        def mean_us(samples: List[int]) -> float:
            return (sum(samples) / len(samples) / TICKS_PER_US
                    if samples else float("nan"))

        rows.append({
            "variant": variant,
            "slow_factor": slow_factor,
            "fast_latency_us": mean_us(by_origin["fast"]),
            "slow_latency_us": mean_us(by_origin["slow"]),
            "mean_latency_us": metrics.mean_latency_us(),
            "pessimism_delay_us_per_msg": (
                metrics.accumulator("pessimism_delay_ticks")
                / max(1, metrics.latency_count()) / TICKS_PER_US
            ),
            "messages": metrics.latency_count(),
        })
    return rows


def run_detection_ablation(
    intervals: Sequence[int] = (ms(1), ms(5), ms(20)),
    miss_limit: int = 3,
    duration: int = seconds(2),
    seed: int = 0,
) -> List[Dict]:
    """Heartbeat period vs recovery downtime (organic detection).

    With heartbeat detection the downtime is ``interval x miss_limit``
    plus promotion; shorter heartbeats buy faster recovery for more
    background traffic — the detection-side twin of the checkpoint
    frequency trade-off.
    """
    from repro.runtime.failure import FailureInjector
    from repro.runtime.placement import Placement
    from repro.runtime.transport import LinkParams
    from repro.sim.distributions import Constant

    rows: List[Dict] = []
    for interval in intervals:
        app = build_wordcount_app(2)
        deployment = Deployment(
            app,
            Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
            engine_config=EngineConfig(
                jitter=NormalTickJitter(),
                checkpoint_interval=ms(40),
                heartbeat_interval=interval,
                heartbeat_miss_limit=miss_limit,
            ),
            default_link=LinkParams(delay=Constant(us(80))),
            control_delay=us(10), birth_of=birth_of, master_seed=seed,
        )
        factory = sentence_factory()
        for i in (1, 2):
            deployment.add_poisson_producer(f"ext{i}", factory,
                                            mean_interarrival=ms(1))
        kill_at = duration // 2
        FailureInjector(deployment).kill_engine("E2", at=kill_at)
        deployment.run(until=duration)
        metrics = deployment.metrics
        # With organic detection the recovery manager only sees the
        # detection moment; end-to-end downtime shows up as the output
        # gap around the kill.
        deliveries = [t for _s, _v, _p, t in
                      deployment.consumer("sink").effective_outputs]
        gap = 0
        for before, after in zip(deliveries, deliveries[1:]):
            if before <= kill_at <= after:
                gap = max(gap, after - before)
        rows.append({
            "heartbeat_ms": interval / 1_000_000,
            "timeout_ms": interval * miss_limit / 1_000_000,
            "output_gap_ms": gap / 1_000_000,
            "failovers": deployment.recovery.failover_count(),
            "false_detections": sum(
                d.detections for d in deployment.detectors.values()
            ) - deployment.recovery.failover_count(),
            "messages": metrics.latency_count(),
        })
    return rows


def run_retuning_ablation(duration: int = seconds(6),
                          bad_coefficient_us: int = 90,
                          seed: int = 0) -> Dict:
    """Determinism-fault re-calibration: latency before vs after.

    The sender starts with a badly over-estimating coefficient; the
    engine's drift monitor fires a determinism fault that installs the
    regression fit, and latency drops for the remainder of the run.
    """
    sender_class = make_sender_class(
        per_iteration_true=us(60),
        estimator=LinearEstimator({"loop": us(bad_coefficient_us)}),
    )
    app = build_wordcount_app(2, sender_class, make_merger_class())
    config = EngineConfig(
        mode="deterministic",
        jitter=NormalTickJitter(),
        calibrate=True,
        drift_window=100,
        drift_threshold=0.05,
        recalibrate_cooldown_samples=200,
    )
    deployment = Deployment(
        app, single_engine_placement(app.component_names()),
        engine_config=config, control_delay=us(10), birth_of=birth_of,
        master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        deployment.add_poisson_producer(f"ext{i}", factory,
                                        mean_interarrival=ms(1))
    deployment.run(until=duration)
    metrics = deployment.metrics
    latencies = metrics.latencies
    half = len(latencies) // 2
    first = sum(latencies[:half]) / max(1, half) / TICKS_PER_US
    second = sum(latencies[half:]) / max(1, len(latencies) - half) / TICKS_PER_US
    fault_log = deployment.fault_logs["engine0"]
    return {
        "bad_coefficient_us": bad_coefficient_us,
        "determinism_faults": metrics.counter("determinism_faults"),
        "fault_records": len(fault_log),
        "first_half_latency_us": first,
        "second_half_latency_us": second,
        "improvement_pct": (first - second) / first * 100.0 if first else 0.0,
        "messages": len(latencies),
    }


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    print("II.G — checkpoint interval")
    print(format_table(run_checkpoint_ablation()))
    print("\nII.G — silence policies")
    print(format_table(run_silence_policy_ablation()))
    print("\nII.G — bias under asymmetric rates")
    print(format_table(run_bias_ablation()))
    print("\nII.G — dynamic re-tuning")
    print(run_retuning_ablation())


if __name__ == "__main__":  # pragma: no cover
    main()
