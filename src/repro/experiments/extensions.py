"""Ablations for the reproduction's extension features.

Three studies that push past the paper's evaluation, along directions
its discussion explicitly opens:

* **Pre-probing** — §II.H's curiosity is strictly reactive; overlapping
  probes with ongoing computation hides the probe round trip (relevant
  to Figure 5's residual overhead).
* **Thread priorities under CPU contention** — §II.G.2: "Dynamically
  changing the priority of these threads to slow down the fast threads
  or speed up the slow ones may improve overhead."
* **Load-correlated communication-delay estimators** — §II.G.1 / future
  work: delay estimates driven by "the number of messages sent within a
  recent number of virtual ticks", against a link with finite bandwidth
  where queueing delay really does grow with load.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.fanin import (
    build_fanin_app,
    make_fanin_merger_class,
    make_fanin_sender_class,
    request_factory,
)
from repro.apps.wordcount import (
    birth_of,
    build_wordcount_app,
    sentence_factory,
)
from repro.core.estimators import QueueCorrelatedDelayEstimator
from repro.core.silence_policy import (
    CuriositySilencePolicy,
    PreProbingCuriositySilencePolicy,
)
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import Placement, single_engine_placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant, Normal
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us
from repro.vt.time import TICKS_PER_US


def run_preprobe_ablation(n_requests: int = 2000, seed: int = 0) -> List[Dict]:
    """Reactive vs pre-probing curiosity on the Figure 5 deployment."""
    rows: List[Dict] = []
    for mode, policy_factory in (
        ("nondeterministic", None),
        ("curiosity (reactive)", CuriositySilencePolicy),
        ("curiosity (pre-probing)", PreProbingCuriositySilencePolicy),
    ):
        app = build_fanin_app(2, make_fanin_sender_class(us(300)),
                              make_fanin_merger_class(us(500)))
        config = EngineConfig(
            mode="nondeterministic" if policy_factory is None
            else "deterministic",
            policy_factory=policy_factory or CuriositySilencePolicy,
            jitter=NormalTickJitter(),
        )
        deployment = Deployment(
            app, Placement({"sender1": "E1", "sender2": "E1",
                            "merger": "E2"}),
            engine_config=config,
            default_link=LinkParams(delay=Normal(us(100), us(10))),
            control_delay=us(5), birth_of=birth_of, master_seed=seed,
        )
        for i in (1, 2):
            deployment.add_poisson_producer(
                f"ext{i}", request_factory(),
                mean_interarrival=us(1250), max_messages=n_requests // 2,
            )
        deployment.run(until=n_requests * us(1250) * 4)
        metrics = deployment.metrics
        rows.append({
            "mode": mode,
            "mean_latency_us": metrics.mean_latency_us(),
            "probes_per_message": metrics.probes_per_message(),
            "pessimism_delay_us_per_msg": (
                metrics.accumulator("pessimism_delay_ticks")
                / max(1, metrics.latency_count()) / TICKS_PER_US
            ),
            "messages": metrics.latency_count(),
        })
    baseline = rows[0]["mean_latency_us"]
    for row in rows:
        row["overhead_pct"] = ((row["mean_latency_us"] - baseline)
                               / baseline * 100.0)
    return rows


def run_priority_ablation(duration: int = seconds(2), shared_cpus: int = 2,
                          seed: int = 0) -> List[Dict]:
    """Static vs vt-lag thread priorities when CPUs are shared (II.G.2)."""
    rows: List[Dict] = []
    for label, mode, priority_mode in (
        ("nondeterministic", "nondeterministic", "static"),
        ("det / static priorities", "deterministic", "static"),
        ("det / vt-lag priorities", "deterministic", "vt-lag"),
    ):
        app = build_wordcount_app(2)
        deployment = Deployment(
            app, single_engine_placement(app.component_names()),
            engine_config=EngineConfig(
                mode=mode, jitter=NormalTickJitter(),
                shared_cpus=shared_cpus, priority_mode=priority_mode,
            ),
            control_delay=us(10), birth_of=birth_of, master_seed=seed,
        )
        factory = sentence_factory()
        for i in (1, 2):
            deployment.add_poisson_producer(f"ext{i}", factory,
                                            mean_interarrival=int(ms(1.25)))
        deployment.run(until=duration)
        metrics = deployment.metrics
        pool = deployment.engine("engine0")._pool
        rows.append({
            "variant": label,
            "mean_latency_us": metrics.mean_latency_us(),
            "p95_latency_us": metrics.latency_percentile_us(95),
            "pessimism_delay_us_per_msg": (
                metrics.accumulator("pessimism_delay_ticks")
                / max(1, metrics.latency_count()) / TICKS_PER_US
            ),
            "cpu_queue_ms": pool.queued_ticks / 1_000_000 if pool else 0.0,
            "messages": metrics.latency_count(),
        })
    baseline = rows[0]["mean_latency_us"]
    for row in rows:
        row["overhead_pct"] = ((row["mean_latency_us"] - baseline)
                               / baseline * 100.0)
    return rows


def make_burst_sender_class(service_time: int, burst: int,
                            name: str = "BurstSender"):
    """A sender that fans each request out into ``burst`` records.

    Back-to-back records serialize onto the link one after another, so
    the k-th record of a burst really arrives ~k serialization quanta
    late — the load-dependent delay a queue-correlated estimator can
    predict and a constant one cannot.
    """
    from repro.core.component import Component, on_message
    from repro.core.cost import CostModel
    from repro.core.estimators import ConstantEstimator

    cost = CostModel(estimator=ConstantEstimator(service_time),
                     true_per_feature={}, true_intercept=service_time,
                     min_features={})

    class _Burst(Component):
        def setup(self):
            self.handled = self.state.value("handled", 0)
            self.out = self.output_port("out")

        @on_message("request", cost=cost)
        def handle_request(self, payload):
            self.handled.set(self.handled.get() + 1)
            for part in range(burst):
                self.out.send({
                    "request": payload["request"], "part": part,
                    "birth": payload["birth"],
                })

    _Burst.__name__ = name
    _Burst.__qualname__ = name
    return _Burst


def run_comm_estimator_ablation(duration: int = seconds(3),
                                link_delay: int = us(100),
                                serialize: int = us(150),
                                burst: int = 4,
                                seed: int = 0) -> List[Dict]:
    """Constant vs load-correlated delay estimators on a finite link.

    The inter-engine link serializes one frame per ``serialize`` ticks
    and each request fans out into a burst, so later burst records
    experience real queueing.  A constant estimator stamps the whole
    burst with one delay; the queue-correlated estimator predicts the
    backlog from the recent-emission count (a deterministic quantity)
    and keeps virtual times near real arrival times.
    """
    rows: List[Dict] = []
    base_estimate = link_delay + serialize
    estimators = {
        "constant (expected delay)": None,  # falls back to the mean
        "queue-correlated": QueueCorrelatedDelayEstimator(
            base_estimate, serialize,
            window_ticks=2 * burst * serialize),
    }
    for label, estimator in estimators.items():
        app = Application("comm-ablation")
        sender_class = make_burst_sender_class(us(100), burst)
        merger_class = make_fanin_merger_class(us(100))
        app.add_component("sender1", sender_class)
        app.add_component("sender2", sender_class)
        app.add_component("merger", merger_class)
        for i in (1, 2):
            app.external_input(f"ext{i}", f"sender{i}", "request")
            app.wire(f"sender{i}", "out", "merger", "input",
                     delay_estimate=None if estimator else base_estimate,
                     delay_estimator=estimator)
        app.external_output("merger", "out", "sink")
        deployment = Deployment(
            app, Placement({"sender1": "E1", "sender2": "E1",
                            "merger": "E2"}),
            engine_config=EngineConfig(jitter=NormalTickJitter()),
            default_link=LinkParams(delay=Constant(link_delay),
                                    serialize_ticks=serialize),
            control_delay=us(5), birth_of=birth_of, master_seed=seed,
        )
        for i in (1, 2):
            deployment.add_poisson_producer(
                f"ext{i}", request_factory(),
                mean_interarrival=int(ms(1) * burst * 0.75))
        deployment.run(until=duration)
        metrics = deployment.metrics
        rows.append({
            "delay_estimator": label,
            "mean_latency_us": metrics.mean_latency_us(),
            "p95_latency_us": metrics.latency_percentile_us(95),
            "out_of_order_fraction": metrics.out_of_order_fraction(),
            "pessimism_delay_us_per_msg": (
                metrics.accumulator("pessimism_delay_ticks")
                / max(1, metrics.latency_count()) / TICKS_PER_US
            ),
            "probes_per_message": metrics.probes_per_message(),
            "messages": metrics.latency_count(),
        })
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.common import format_table

    print("extension: pre-probing curiosity")
    print(format_table(run_preprobe_ablation()))
    print("\nextension: thread priorities under CPU contention")
    print(format_table(run_priority_ablation()))
    print("\nextension: load-correlated communication-delay estimators")
    print(format_table(run_comm_estimator_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
