"""Benchmarks: §II.G ablations over TART's tuning controls.

Four studies the paper describes but does not plot:

* checkpoint frequency vs recovery gap / checkpoint traffic (II.F.2),
* silence-propagation policies on one workload (II.G.3),
* the hyper-aggressive bias under asymmetric sender rates (II.G.1),
* drift-triggered determinism-fault re-calibration (II.G.4).
"""

from conftest import once

from repro.experiments.ablations import (
    run_bias_ablation,
    run_checkpoint_ablation,
    run_retuning_ablation,
    run_silence_policy_ablation,
)
from repro.experiments.common import format_table
from repro.sim.kernel import ms, seconds


def test_checkpoint_frequency(benchmark, full_scale, record_result):
    intervals = ((ms(10), ms(25), ms(50), ms(100), ms(200)) if full_scale
                 else (ms(25), ms(100)))
    duration = seconds(2)
    rows = once(benchmark, lambda: run_checkpoint_ablation(
        intervals=intervals, duration=duration))

    print("\n=== II.G ablation: checkpoint frequency ===")
    print("paper: more frequent checkpointing reduces recovery time but "
          "increases overhead")
    print(format_table(rows))
    record_result("ablation_checkpoint", rows)

    assert all(r["identical"] for r in rows)
    first, last = rows[0], rows[-1]
    assert first["messages_replayed"] <= last["messages_replayed"]
    assert first["checkpoints"] > last["checkpoints"]


def test_silence_policies(benchmark, full_scale, record_result):
    duration = seconds(4) if full_scale else seconds(2)
    rows = once(benchmark,
                lambda: run_silence_policy_ablation(duration=duration))

    print("\n=== II.G ablation: silence-propagation policies ===")
    print(format_table(rows))
    record_result("ablation_policies", rows)

    by_policy = {r["policy"]: r for r in rows}
    assert (by_policy["lazy"]["mean_latency_us"]
            > by_policy["curiosity"]["mean_latency_us"])
    assert (by_policy["aggressive"]["pessimism_delay_us_per_msg"]
            <= by_policy["curiosity"]["pessimism_delay_us_per_msg"])
    # Aggressive trades probe traffic for volunteered advances.
    assert (by_policy["aggressive"]["probes_per_message"]
            <= by_policy["curiosity"]["probes_per_message"])


def test_hyper_aggressive_bias(benchmark, full_scale, record_result):
    duration = seconds(4) if full_scale else seconds(2)
    rows = once(benchmark, lambda: run_bias_ablation(duration=duration))

    print("\n=== II.G ablation: bias under asymmetric sender rates ===")
    print("paper: a slow sender eagerly promising extra silence reduces "
          "the fast path's pessimism delay")
    print(format_table(rows))
    record_result("ablation_bias", rows)

    by_variant = {r["variant"]: r for r in rows}
    plain = by_variant["lazy-everywhere"]
    biased = by_variant["lazy+bias-on-slow-sender"]
    # The fast stream benefits substantially; the slow stream pays at
    # most a modest penalty.
    assert biased["fast_latency_us"] < 0.8 * plain["fast_latency_us"]
    assert biased["slow_latency_us"] < 2.0 * plain["slow_latency_us"]


def test_detection_time(benchmark, full_scale, record_result):
    from repro.experiments.ablations import run_detection_ablation
    from repro.sim.kernel import ms as _ms

    intervals = ((_ms(1), _ms(2), _ms(5), _ms(10), _ms(20)) if full_scale
                 else (_ms(1), _ms(5), _ms(20)))
    rows = once(benchmark, lambda: run_detection_ablation(
        intervals=intervals, duration=seconds(2)))

    print("\n=== ablation: heartbeat detection time vs recovery gap ===")
    print("organic failure detection: gap = heartbeat timeout + replay "
          "catch-up")
    print(format_table(rows))
    record_result("ablation_detection", rows)

    gaps = [r["output_gap_ms"] for r in rows]
    assert gaps == sorted(gaps)            # shorter beats, shorter gaps
    assert all(r["false_detections"] == 0 for r in rows)
    assert all(r["failovers"] == 1 for r in rows)


def test_dynamic_retuning(benchmark, full_scale, record_result):
    duration = seconds(8) if full_scale else seconds(4)
    result = once(benchmark, lambda: run_retuning_ablation(
        duration=duration))

    print("\n=== II.G ablation: determinism-fault re-calibration ===")
    print("paper: re-calibration is synchronously logged; replay honours "
          "the switchover virtual time")
    for key, value in result.items():
        print(f"  {key}: {value}")
    record_result("ablation_retuning", result)

    assert result["determinism_faults"] >= 1
    assert result["second_half_latency_us"] < result["first_half_latency_us"]
