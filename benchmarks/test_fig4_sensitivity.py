"""Benchmark: Figure 4 — sensitivity to the estimator coefficient.

Paper (realistic right-skewed jitter, 1 min at 1000 msg/s/sender): best
latency near 60 µs/iteration, nearly flat 60-62, rising toward 48 and
70; out-of-order under 10% and probes ~1.5/message at the optimum.
"""

from conftest import once

from repro.experiments.common import format_table
from repro.experiments.fig4_sensitivity import best_coefficient, run_fig4
from repro.sim.kernel import seconds


def test_fig4_sensitivity(benchmark, full_scale, record_result):
    duration = seconds(60) if full_scale else seconds(3)
    coefficients = (tuple(range(48, 71, 2)) if full_scale
                    else (48, 52, 56, 58, 60, 62, 64, 68))
    rows = once(benchmark, lambda: run_fig4(duration=duration,
                                            coefficients_us=coefficients))

    print("\n=== Figure 4: sensitivity to estimator coefficient ===")
    print("paper: minimum at 60-62us/iter (regression said 61.827); "
          "OOO <10%, ~1.5 probes/msg at optimum")
    print(format_table(rows, ["coefficient_us", "det_latency_us",
                              "nondet_latency_us", "out_of_order_fraction",
                              "probes_per_message"]))
    best = best_coefficient(rows)
    print(f"measured best coefficient: {best} us/iteration")
    record_result("fig4", {"rows": rows, "best_coefficient_us": best})

    assert 56 <= best <= 64
    by_coeff = {r["coefficient_us"]: r for r in rows}
    assert by_coeff[48]["det_latency_us"] > by_coeff[best]["det_latency_us"]
    assert by_coeff[68 if 68 in by_coeff else 70]["det_latency_us"] \
        > by_coeff[best]["det_latency_us"]
    assert by_coeff[best]["out_of_order_fraction"] < 0.10
    assert by_coeff[best]["probes_per_message"] < 2.5
