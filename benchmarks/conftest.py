"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation.
By default they run at a reduced scale so the whole suite finishes in a
few minutes; set ``REPRO_BENCH_SCALE=full`` to run the paper's full
parameters (Figure 4's one-minute runs, Figure 5's 3000 requests, the
complete sweeps).

Each benchmark prints its reproduction table (paper value vs measured)
to stdout so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
results report; a machine-readable copy is appended to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

import json
import os
import pathlib

import pytest

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def full_scale():
    """True when running the paper's full parameters."""
    return FULL


@pytest.fixture(scope="session")
def record_result():
    """Persist one experiment's rows as JSON under benchmarks/results/."""

    def _record(name, payload):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        return path

    return _record


def once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer.

    The experiments are multi-second simulations; statistical repetition
    belongs to the simulation (many messages), not to wall-clock rounds.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
