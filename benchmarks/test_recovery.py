"""Benchmark: §II.F — failover + replay correctness and recovery cost.

No figure in the paper reports this directly (correctness is argued, not
measured); this bench makes it a regenerable result: kill an engine
mid-run and verify the effective output equals the failure-free run,
reporting downtime, stutter, and replay volume.
"""

from conftest import once

from repro.experiments.recovery import run_recovery
from repro.sim.kernel import ms, seconds


def test_recovery(benchmark, full_scale, record_result):
    duration = seconds(4) if full_scale else seconds(2)
    result = once(benchmark, lambda: run_recovery(
        duration=duration, kill_at=duration // 2,
        checkpoint_interval=ms(50)))

    print("\n=== II.F: failover + replay ===")
    print("paper claim: behaviour identical to a failure-free execution, "
          "except output stutter")
    for key, value in result.items():
        print(f"  {key}: {value}")
    record_result("recovery", result)

    assert result["identical_effective_output"]
    assert result["failovers"] == 1
    assert result["outputs_faulty"] == result["outputs_clean"]
    assert result["duplicates_discarded"] >= 0
    assert result["downtime_ms"] >= 2.0  # at least the detection delay
