"""Benchmark: §III.A — throughput saturation of det vs non-det.

Paper: "In both deterministic and non-deterministic execution modes, the
system saturated at 1235 messages/second" — determinism costs latency
(a little) but no throughput.
"""

from conftest import once

from repro.experiments.common import format_table
from repro.experiments.throughput import run_throughput, saturation_point
from repro.sim.kernel import seconds


def test_throughput_saturation(benchmark, full_scale, record_result):
    duration = seconds(5) if full_scale else seconds(2)
    rates = ((1000, 1100, 1150, 1200, 1225, 1250, 1275, 1300) if full_scale
             else (1000, 1150, 1225, 1300))
    rows = once(benchmark, lambda: run_throughput(duration=duration,
                                                  rates=rates))

    nondet = saturation_point(rows, "nondeterministic")
    det = saturation_point(rows, "deterministic")
    print("\n=== III.A: throughput saturation ===")
    print("paper: both modes saturate at 1235 msg/s/sender "
          "(merger capacity bound: 1250)")
    print(format_table(rows, ["mode", "rate_per_sender", "mean_latency_us",
                              "growth_ratio", "stable"]))
    print(f"measured saturation: nondet={nondet}  det={det} msg/s/sender")
    record_result("throughput", {"rows": rows, "saturation": {
        "nondeterministic": nondet, "deterministic": det}})

    assert nondet == det                 # the headline: no throughput cost
    assert 1150 <= det <= 1250           # near the merger capacity bound
