"""Benchmarks: extension ablations beyond the paper's evaluation.

Each follows a direction the paper's discussion opens: pre-probing
curiosity (II.H), thread priorities under CPU contention (II.G.2), and
load-correlated communication-delay estimation (II.G.1 / future work).
The last is a *negative* result at our parameters — recorded as such.
"""

from conftest import once

from repro.experiments.common import format_table
from repro.experiments.extensions import (
    run_comm_estimator_ablation,
    run_preprobe_ablation,
    run_priority_ablation,
)
from repro.sim.kernel import seconds


def test_preprobing_curiosity(benchmark, full_scale, record_result):
    n_requests = 3000 if full_scale else 1000
    rows = once(benchmark, lambda: run_preprobe_ablation(n_requests))

    print("\n=== extension: pre-probing curiosity (Figure 5 deployment) ===")
    print("hypothesis: overlapping probes with computation hides the probe "
          "round trip")
    print(format_table(rows))
    record_result("ext_preprobe", rows)

    by_mode = {r["mode"]: r for r in rows}
    reactive = by_mode["curiosity (reactive)"]
    preprobe = by_mode["curiosity (pre-probing)"]
    assert preprobe["overhead_pct"] < reactive["overhead_pct"]
    assert (preprobe["pessimism_delay_us_per_msg"]
            < reactive["pessimism_delay_us_per_msg"])


def test_thread_priorities_under_contention(benchmark, full_scale,
                                            record_result):
    duration = seconds(4) if full_scale else seconds(2)
    rows = once(benchmark, lambda: run_priority_ablation(duration=duration))

    print("\n=== extension: II.G.2 thread priorities (3 threads, 2 CPUs) ===")
    print("paper: 'dynamically changing the priority of these threads ... "
          "may improve overhead'")
    print(format_table(rows))
    record_result("ext_priorities", rows)

    by_variant = {r["variant"]: r for r in rows}
    static = by_variant["det / static priorities"]
    dynamic = by_variant["det / vt-lag priorities"]
    # Prioritising vt-lagging threads reduces latency under contention.
    assert dynamic["mean_latency_us"] < static["mean_latency_us"]


def test_load_correlated_delay_estimator(benchmark, full_scale,
                                         record_result):
    duration = seconds(4) if full_scale else seconds(2)
    rows = once(benchmark,
                lambda: run_comm_estimator_ablation(duration=duration))

    print("\n=== extension: II.G.1 load-correlated delay estimation ===")
    print("finding (negative at these parameters): with continuous data "
          "flow, arrivals themselves carry silence, so more accurate — "
          "i.e. later — stamps gate scheduling harder and buy nothing; "
          "consistent with the paper deferring delay-estimator refinement "
          "to future work")
    print(format_table(rows))
    record_result("ext_comm_estimator", rows)

    constant = rows[0]
    adaptive = rows[1]
    # Both configurations are healthy and close; neither melts down.
    assert constant["messages"] == adaptive["messages"]
    ratio = adaptive["mean_latency_us"] / constant["mean_latency_us"]
    assert 0.85 < ratio < 1.15
    assert adaptive["out_of_order_fraction"] < 0.10
