"""Benchmark: Figure 2 — estimator calibration by linear regression.

Paper: slope 61.827 µs/iteration, R² = 0.9154, highly right-skewed
residuals, near-zero residual-iteration correlation over 10,000 samples.
"""

from conftest import once

from repro.experiments.common import format_table
from repro.experiments.fig2_regression import run_fig2


def test_fig2_regression(benchmark, full_scale, record_result):
    n = 10_000  # the paper's own sample count is cheap enough to keep
    result = once(benchmark, lambda: run_fig2(n_samples=n))
    measured = result["measured"]

    print("\n=== Figure 2: service-time regression ===")
    print(f"paper   : slope=61.827us/iter  R^2=0.9154  residuals right-skewed")
    print(f"measured: slope={measured['slope_us_per_iteration']:.3f}us/iter  "
          f"R^2={measured['r_squared']:.4f}  "
          f"skew={measured['residual_skewness']:.2f}  "
          f"resid-iter corr={measured['residual_iteration_corr']:.4f}")
    print(format_table(result["scatter"],
                       ["iterations", "n", "mean_us", "p10_us", "p90_us",
                        "predicted_us"]))
    record_result("fig2", {"paper": result["paper"], "measured": measured,
                           "scatter": result["scatter"]})

    assert abs(measured["slope_us_per_iteration"] - 61.827) < 2.0
    assert 0.85 <= measured["r_squared"] <= 0.97
    assert measured["residual_skewness"] > 1.0
