"""Benchmark: §IV — TART vs active replication vs transactions.

The paper conjectures its overheads beat per-event transaction commits
and that passive replication is cheaper than active; this bench measures
all three on the same workload (see
:mod:`repro.experiments.alternatives` for the comparator models).
"""

from conftest import once

from repro.experiments.alternatives import run_alternatives
from repro.experiments.common import format_table
from repro.sim.kernel import seconds


def test_alternatives(benchmark, full_scale, record_result):
    duration = seconds(4) if full_scale else seconds(2)
    rows = once(benchmark, lambda: run_alternatives(duration=duration))

    print("\n=== IV: TART vs active replication vs transactions ===")
    print("paper conjecture: logging externals + async soft checkpoints "
          "< distributed commit per event; passive < active in resources")
    print(format_table(rows))
    record_result("alternatives", rows)

    by_approach = {r["approach"].split(" (")[0]: r for r in rows}
    tart = by_approach["TART"]
    active = by_approach["active replication"]
    txn = by_approach["transactional"]

    # Conjecture 1: TART's failure-free latency beats per-event commits.
    assert tart["mean_latency_us"] < txn["mean_latency_us"]
    # Conjecture 2: passive replication halves active replication's
    # compute and network bills...
    assert tart["compute_us_per_msg"] < 0.65 * active["compute_us_per_msg"]
    assert tart["frames_per_msg"] < 0.65 * active["frames_per_msg"]
    # ...at the price of a real (but bounded) recovery gap, where active
    # replication barely hiccups.
    assert tart["output_gap_ms"] > active["output_gap_ms"]
    assert tart["output_gap_ms"] < 200
