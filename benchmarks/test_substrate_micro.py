"""Micro-benchmarks of the substrates (not paper figures).

Wall-clock cost of the pieces everything else is built on: the event
kernel, the reliable channel, checkpoint serialization, and the
deterministic scheduler's per-message path.  Useful for spotting
regressions that would silently stretch every experiment.
"""

import random

from repro.runtime import checkpoint as cpser
from repro.runtime.link import ReliableChannel
from repro.sim.distributions import Constant
from repro.sim.kernel import Simulator, us


def test_kernel_event_throughput(benchmark):
    def run_events():
        sim = Simulator()

        def chain(remaining):
            if remaining:
                sim.after(10, lambda: chain(remaining - 1))

        chain(20_000)
        sim.run()
        return sim.events_executed

    executed = benchmark(run_events)
    assert executed == 20_000


def test_reliable_channel_throughput(benchmark):
    def run_channel():
        sim = Simulator()
        received = []
        channel = ReliableChannel(sim, random.Random(0), "bench",
                                  deliver=received.append,
                                  delay=Constant(us(10)))
        for i in range(5_000):
            channel.send(i)
        sim.run()
        return len(received)

    delivered = benchmark(run_channel)
    assert delivered == 5_000


def test_checkpoint_serialization(benchmark):
    state = {
        "components": {
            f"c{i}": {
                "cells": {"counts": {f"word{j:03d}": j for j in range(200)}},
                "component_vt": i * 1_000_000,
                "pending": [(i, j, f"payload-{j}") for j in range(20)],
            }
            for i in range(5)
        }
    }

    def roundtrip():
        return cpser.loads(cpser.dumps(state))

    restored = benchmark(roundtrip)
    assert restored == state


def test_scheduler_message_path(benchmark):
    """End-to-end per-message cost of the deterministic runtime."""
    from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
    from repro.runtime.app import Deployment
    from repro.runtime.engine import EngineConfig
    from repro.runtime.placement import single_engine_placement
    from repro.sim.kernel import ms, seconds

    def run_deployment():
        app = build_wordcount_app(2)
        dep = Deployment(app,
                         single_engine_placement(app.component_names()),
                         engine_config=EngineConfig(),
                         control_delay=us(10), birth_of=birth_of)
        factory = sentence_factory()
        for i in (1, 2):
            dep.add_poisson_producer(f"ext{i}", factory,
                                     mean_interarrival=ms(1))
        dep.run(until=seconds(1))
        return dep.metrics.latency_count()

    messages = benchmark(run_deployment)
    assert messages > 1_500
