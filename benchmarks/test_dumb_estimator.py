"""Benchmark: §III.A — the "dumb" 600 µs constant estimator.

Paper: with constant work the dumb estimator slightly outperforms the
smart non-prescient one; as variability grows its overhead climbs,
reaching ~13% at U(1,19) iterations.
"""

from conftest import once

from repro.experiments.common import format_table
from repro.experiments.dumb_estimator import run_dumb_estimator
from repro.sim.kernel import seconds


def test_dumb_estimator(benchmark, full_scale, record_result):
    duration = seconds(5) if full_scale else seconds(2)
    spreads = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9) if full_scale else (0, 4, 9)
    rows = once(benchmark, lambda: run_dumb_estimator(duration=duration,
                                                      spreads=spreads))

    print("\n=== III.A: smart vs dumb (600us constant) estimator ===")
    print("paper: dumb overhead grows with variability, up to ~13%")
    print(format_table(rows, ["sd_us", "nondet_latency_us",
                              "smart_overhead_pct", "dumb_overhead_pct",
                              "dumb_probes_per_message"]))
    record_result("dumb_estimator", rows)

    first, last = rows[0], rows[-1]
    gap_first = first["dumb_overhead_pct"] - first["smart_overhead_pct"]
    gap_last = last["dumb_overhead_pct"] - last["smart_overhead_pct"]
    assert gap_last > gap_first          # dumbness hurts more as SD grows
    assert last["dumb_overhead_pct"] > last["smart_overhead_pct"]
