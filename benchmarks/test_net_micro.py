"""Micro-benchmarks of the networked runtime's substrates.

Wall-clock cost of the wire codec and of a localhost channel round
trip — the two per-message overheads the networked runtime adds on top
of the simulated one.  Same shape as ``test_substrate_micro.py``: not
paper figures, just regression tripwires.
"""

import asyncio
import time

from repro.core.message import DataMessage
from repro.net import codec


def _sample_messages(n):
    return [
        DataMessage(
            wire_id=i % 7, seq=i, vt=i * 1_000,
            payload={"device": f"dev{i % 8}",
                     "fields": (i, i + 1, i + 2, i + 3),
                     "birth": i * 10},
        )
        for i in range(n)
    ]


def test_codec_encode_decode_throughput(benchmark):
    messages = _sample_messages(1_000)

    def roundtrip():
        out = []
        for msg in messages:
            out.append(codec.decode_message_bytes(
                codec.encode_message_bytes(msg)
            ))
        return out

    restored = benchmark(roundtrip)
    assert restored == messages


def test_frame_split_throughput(benchmark):
    messages = _sample_messages(1_000)
    wire = b"".join(codec.encode_item(i, "a", "b", m)
                    for i, m in enumerate(messages))

    def split():
        return codec.FrameSplitter().feed(wire)

    frames = benchmark(split)
    assert len(frames) == len(messages)
    assert all(tag == codec.FRAME_ITEM for tag, _ in frames)


def test_localhost_channel_round_trip(benchmark):
    """Acked end-to-end delivery over a real localhost socket."""
    from tests.net.test_channel import FakeHost
    from repro.net.channel import OutboundChannel

    n_items = 200
    messages = _sample_messages(n_items)

    async def run_once():
        host = FakeHost()
        await host.start()
        channel = OutboundChannel("bench:1", "n",
                                  [("127.0.0.1", host.port)])
        channel.start()
        started = time.perf_counter()
        for msg in messages:
            channel.enqueue("src", msg)
        while channel.items_acked < n_items:
            await asyncio.sleep(0)
        elapsed = time.perf_counter() - started
        await channel.close()
        await host.stop()
        return len(host.items), elapsed

    def deliver():
        return asyncio.run(run_once())

    delivered, elapsed = benchmark(deliver)
    assert delivered == n_items
    per_item_us = elapsed / n_items * 1e6
    print(f"\nlocalhost channel: {n_items} items acked in "
          f"{elapsed * 1e3:.1f} ms ({per_item_us:.0f} us/item)")
