"""Benchmark: Figure 3 — latency vs sender variability, three modes.

Paper: latency grows with variability; determinism overhead 2.8-4.1%
across the sweep; prescient slightly better than plain deterministic;
both far below any alternative recovery mechanism's cost.
"""

from conftest import once

from repro.experiments.common import format_table
from repro.experiments.fig3_variability import run_fig3
from repro.sim.kernel import seconds


def test_fig3_variability(benchmark, full_scale, record_result):
    duration = seconds(5) if full_scale else seconds(2)
    spreads = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9) if full_scale else (0, 3, 6, 9)
    rows = once(benchmark, lambda: run_fig3(duration=duration,
                                            spreads=spreads))

    print("\n=== Figure 3: latency vs sender-compute variability ===")
    print("paper: overhead 2.8-4.1% (det), slightly less (prescient)")
    print(format_table(rows, ["sd_us", "mode", "mean_latency_us",
                              "overhead_pct", "probes_per_message",
                              "pessimism_delay_us_per_msg"]))
    record_result("fig3", rows)

    det_rows = [r for r in rows if r["mode"] == "deterministic"]
    presc_rows = [r for r in rows if r["mode"] == "prescient"]
    assert all(r["overhead_pct"] < 10.0 for r in det_rows)
    mean_det = sum(r["overhead_pct"] for r in det_rows) / len(det_rows)
    mean_presc = sum(r["overhead_pct"] for r in presc_rows) / len(presc_rows)
    assert mean_presc <= mean_det + 0.5
