"""Benchmark: Figure 5 — two-engine distributed run, lazy vs curiosity.

Paper: curiosity-based silence propagation keeps deterministic execution
within ~20% of non-deterministic latency on a real two-machine
deployment; lazy silence is several times worse (multi-millisecond
latencies in the figure).
"""

from conftest import once

from repro.experiments.common import format_table
from repro.experiments.fig5_distributed import run_fig5


def test_fig5_distributed(benchmark, full_scale, record_result):
    n_requests = 3000 if full_scale else 800
    result = once(benchmark, lambda: run_fig5(n_requests=n_requests))

    print("\n=== Figure 5: two-engine distributed implementation ===")
    print("paper: det+curiosity < 20% over non-det; det+lazy far worse")
    print(format_table(result["summary"]))
    print(format_table(result["series"][:12]))
    record_result("fig5", {"summary": result["summary"],
                           "series": result["series"]})

    summary = {row["mode"]: row for row in result["summary"]}
    nondet = summary["nondeterministic"]["mean_latency_ms"]
    curiosity = summary["deterministic-curiosity"]["mean_latency_ms"]
    lazy = summary["deterministic-lazy"]["mean_latency_ms"]
    assert nondet < curiosity < lazy
    assert summary["deterministic-curiosity"]["overhead_pct"] < 35
    assert lazy / nondet > 1.6
