"""Flight recorder: bundle round trips, state capture determinism, and
the encode/decode codecs (property-tested)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import ClusterSpec
from repro.runtime import checkpoint as cpser
from repro.runtime.flightrec import (
    BUNDLE_SUFFIX,
    BundleError,
    ReplayBundle,
    capture_state,
    decode_events,
    decode_external,
    default_until,
    encode_events,
    encode_external,
    prepare_run,
    record_run,
)


def spec_for_tests(**overrides) -> ClusterSpec:
    params = dict(
        engines=["e0", "e1"],
        replicas=1,
        master_seed=7,
        workload={"readings": {"n_messages": 40,
                               "mean_interarrival_ms": 1.0}},
    )
    params.update(overrides)
    return ClusterSpec(**params)


# ----------------------------------------------------------------------
# Codec properties
# ----------------------------------------------------------------------

repcl_docs = st.fixed_dictionaries({
    "e": st.integers(0, 1 << 40),
    "o": st.lists(st.tuples(st.integers(0, 30), st.integers(0, 1 << 16))
                  .map(list), max_size=4),
    "c": st.integers(0, 1000),
})

event_docs = st.fixed_dictionaries({
    "index": st.integers(0, 1 << 30),
    "kind": st.sampled_from(["dispatch", "send", "complete"]),
    "component": st.text(max_size=12),
    "engine": st.text(max_size=6),
    "wire": st.integers(0, 500),
    "seq": st.integers(0, 1 << 30),
    "vt": st.integers(0, 1 << 50),
    "repcl": repcl_docs,
})

external_logs = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.lists(st.tuples(st.integers(0, 1 << 20), st.integers(0, 1 << 50),
                       st.one_of(st.text(max_size=10),
                                 st.binary(max_size=10),
                                 st.dictionaries(st.text(max_size=4),
                                                 st.integers(),
                                                 max_size=3))),
             max_size=5),
    max_size=4,
)


@settings(max_examples=50)
@given(st.lists(event_docs, max_size=8))
def test_event_stream_roundtrip(events):
    assert decode_events(encode_events(events)) == events


@settings(max_examples=50)
@given(external_logs, st.dictionaries(st.text(max_size=6),
                                      st.integers(-1, 1 << 20), max_size=3))
def test_external_log_roundtrip(logs, truncated):
    decoded = decode_external(encode_external(logs, truncated))
    assert decoded == {k: [tuple(e) for e in v] for k, v in logs.items()}


def test_codecs_reject_unknown_format():
    blob = cpser.dumps({"format": 999, "events": []})
    with pytest.raises(BundleError):
        decode_events(blob)
    blob = cpser.dumps({"format": 999, "logs": {}})
    with pytest.raises(BundleError):
        decode_external(blob)


# ----------------------------------------------------------------------
# State capture and re-execution
# ----------------------------------------------------------------------

def test_capture_state_is_deterministic():
    spec = spec_for_tests()
    until = default_until(spec)
    docs = []
    for _ in range(2):
        dep = prepare_run(spec)
        dep.run(until=until)
        docs.append(cpser.dumps(capture_state(dep)))
    assert docs[0] == docs[1]
    state = cpser.loads(docs[0])
    assert set(state["components"]) == set(spec_app_components(spec))
    assert state["digests"]


def spec_app_components(spec):
    from repro.net.topology import build_deployment

    return build_deployment(spec).app.component_names()


def test_external_replay_reproduces_stamps():
    """Replaying recorded (seq, vt, payload) logs into a workload-free
    spec reproduces the ingress stamps exactly."""
    # A huge checkpoint interval keeps the external log untrimmed, so
    # the recording is complete and the replay can be compared 1:1.
    spec = spec_for_tests(checkpoint_interval_ms=60_000.0)
    dep = prepare_run(spec)
    dep.run(until=default_until(spec))
    from repro.runtime.flightrec import external_logs_of

    logs, _trunc = external_logs_of(dep)
    replay_spec = spec_for_tests(workload={},
                                 checkpoint_interval_ms=60_000.0)
    assert not replay_spec.workload
    surviving = {k: v for k, v in logs.items() if v}
    assert surviving, "untrimmed run must retain its external log"
    twin = prepare_run(replay_spec, external=surviving)
    twin.run(until=default_until(replay_spec, external=surviving))
    replayed, _ = external_logs_of(twin)
    for input_id, entries in surviving.items():
        got = {(seq, vt) for seq, vt, _p in replayed[input_id]}
        assert {(seq, vt) for seq, vt, _p in entries} <= got


# ----------------------------------------------------------------------
# Bundle round trip
# ----------------------------------------------------------------------

def test_record_and_load_roundtrip(tmp_path):
    spec = spec_for_tests()
    path = record_run(spec, tmp_path / "run", seed=11, source="test")
    assert path.name.endswith(BUNDLE_SUFFIX)
    bundle = ReplayBundle.load(path)
    assert bundle.manifest["source"] == "test"
    assert bundle.manifest["seed"] == 11
    assert bundle.manifest["replay_mode"] == "workload"
    assert bundle.spec.to_json() == spec.to_json()
    assert bundle.events, "event stream must not be empty"
    assert bundle.manifest["event_count"] == len(bundle.events)
    assert bundle.ran_until > 0
    assert bundle.state["digests"]
    assert "sink" in bundle.streams
    assert bundle.metrics is not None and "counters" in bundle.metrics


def test_load_accepts_suffixless_path(tmp_path):
    spec = spec_for_tests()
    record_run(spec, tmp_path / "run", source="test")
    bundle = ReplayBundle.load(tmp_path / "run")  # no .replay suffix
    assert bundle.path.name == "run" + BUNDLE_SUFFIX


def test_load_missing_bundle_raises(tmp_path):
    with pytest.raises(BundleError):
        ReplayBundle.load(tmp_path / "nope")


def test_verdict_persisted(tmp_path):
    spec = spec_for_tests()
    path = record_run(spec, tmp_path / "bad", source="chaos",
                      verdict={"ok": False, "violations": ["x"]})
    bundle = ReplayBundle.load(path)
    assert bundle.verdict == {"ok": False, "violations": ["x"]}
    assert json.loads((path / "verdict.json").read_text())["ok"] is False
