"""Unit tests for ingresses, producers, and consumers."""

import pytest

from repro.core.estimators import CommDelayEstimator
from repro.core.message import (
    CuriosityProbe,
    DataMessage,
    ReplayRequest,
    SilenceAdvance,
    StableNotice,
)
from repro.core.ports import WireSpec
from repro.errors import TransportError
from repro.runtime.external import ExternalConsumer, ExternalIngress, PoissonProducer
from repro.runtime.metrics import MetricSet
from repro.runtime.transport import Network
from repro.sim.distributions import Constant
from repro.sim.kernel import Simulator, ms, us
from repro.sim.rng import RngRegistry


class SinkNode:
    def __init__(self, node_id, sim):
        self.node_id = node_id
        self.sim = sim
        self.alive = True
        self.items = []

    def receive(self, item):
        self.items.append((item, self.sim.now))


def make_ingress():
    sim = Simulator()
    net = Network(sim, RngRegistry(0))
    engine = SinkNode("E1", sim)
    net.register(engine)
    spec = WireSpec(7, "ext_in", None, None, "comp", "input",
                    CommDelayEstimator(0))
    ingress = ExternalIngress("ext:in", sim, net, spec, "E1")
    net.register(ingress)
    return sim, net, engine, ingress


class TestIngress:
    def test_offer_stamps_logs_and_delivers(self):
        sim, net, engine, ingress = make_ingress()
        sim.at(5_000, lambda: ingress.offer("hello"))
        sim.run()
        assert len(ingress.log) == 1
        assert ingress.log.entries_from(0) == [(0, 5_000, "hello")]
        (msg, at), = engine.items
        assert msg == DataMessage(7, 0, 5_000, "hello")
        assert at == 5_000  # zero-delay boundary

    def test_sequences_increment(self):
        sim, net, engine, ingress = make_ingress()
        assert ingress.offer("a") == 0
        assert ingress.offer("b") == 1

    def test_replay_request_resends_from_log(self):
        sim, net, engine, ingress = make_ingress()
        for p in ("a", "b", "c"):
            ingress.offer(p)
        sim.run()
        engine.items.clear()
        ingress.receive(ReplayRequest(7, 1))
        sim.run()
        payloads = [m.payload for m, _ in engine.items
                    if isinstance(m, DataMessage)]
        assert payloads == ["b", "c"]
        # Trailing silence advance closes the replay window.
        advances = [m for m, _ in engine.items
                    if isinstance(m, SilenceAdvance)]
        assert len(advances) == 1

    def test_probe_answered_with_real_time_fact(self):
        sim, net, engine, ingress = make_ingress()
        sim.at(10_000, lambda: ingress.receive(CuriosityProbe(7, 50_000)))
        sim.run()
        (adv, _), = engine.items
        assert isinstance(adv, SilenceAdvance)
        assert adv.through_vt == 10_000 - 1

    def test_stable_notice_truncates_log(self):
        sim, net, engine, ingress = make_ingress()
        for p in ("a", "b", "c"):
            ingress.offer(p)
        ingress.receive(StableNotice(7, 1))
        # Same-tick offers got bumped vts 0, 1, 2.
        assert ingress.log.entries_from(2) == [(2, 2, "c")]

    def test_unexpected_item_rejected(self):
        sim, net, engine, ingress = make_ingress()
        with pytest.raises(TransportError):
            ingress.receive("junk")


class TestPoissonProducer:
    def test_produces_expected_count(self):
        sim, net, engine, ingress = make_ingress()
        producer = PoissonProducer(
            sim, RngRegistry(1).stream("p"), ingress,
            payload_factory=lambda rng, i, now: {"i": i, "born": now},
            mean_interarrival=ms(1),
        )
        producer.start()
        sim.run(until=ms(100))
        # ~100 expected; Poisson so allow slack.
        assert 60 <= producer.produced <= 140
        assert len(ingress.log) == producer.produced

    def test_max_messages_cap(self):
        sim, net, engine, ingress = make_ingress()
        producer = PoissonProducer(
            sim, RngRegistry(1).stream("p"), ingress,
            payload_factory=lambda rng, i, now: i,
            mean_interarrival=us(10), max_messages=5,
        )
        producer.start()
        sim.run(until=ms(10))
        assert producer.produced == 5

    def test_stop_at(self):
        sim, net, engine, ingress = make_ingress()
        producer = PoissonProducer(
            sim, RngRegistry(1).stream("p"), ingress,
            payload_factory=lambda rng, i, now: i,
            mean_interarrival=us(100), stop_at=ms(1),
        )
        producer.start()
        sim.run(until=ms(10))
        assert all(vt < ms(1) for _s, vt, _p in ingress.log.entries_from(0))

    def test_stop(self):
        sim, net, engine, ingress = make_ingress()
        producer = PoissonProducer(
            sim, RngRegistry(1).stream("p"), ingress,
            payload_factory=lambda rng, i, now: i,
            mean_interarrival=us(100),
        )
        producer.start()
        sim.run(until=ms(1))
        producer.stop()
        count = producer.produced
        sim.run(until=ms(5))
        assert producer.produced == count

    def test_payload_factory_receives_now(self):
        sim, net, engine, ingress = make_ingress()
        seen = []
        producer = PoissonProducer(
            sim, RngRegistry(1).stream("p"), ingress,
            payload_factory=lambda rng, i, now: seen.append((i, now)) or i,
            mean_interarrival=us(100), max_messages=3,
        )
        producer.start()
        sim.run(until=ms(10))
        assert [i for i, _ in seen] == [0, 1, 2]
        assert all(now >= 0 for _, now in seen)


class TestExternalConsumer:
    def make_consumer(self):
        sim = Simulator()
        metrics = MetricSet()
        consumer = ExternalConsumer(
            "sink", sim, metrics,
            birth_of=lambda p: p.get("birth") if isinstance(p, dict) else None,
        )
        return sim, metrics, consumer

    def test_records_latency_from_birth(self):
        sim, metrics, consumer = self.make_consumer()
        sim.at(9_000, lambda: consumer.receive(
            DataMessage(4, 0, 8_000, {"birth": 1_000})))
        sim.run()
        assert metrics.latencies == [8_000]
        assert len(consumer) == 1

    def test_duplicates_counted_as_stutter(self):
        sim, metrics, consumer = self.make_consumer()
        msg = DataMessage(4, 0, 8_000, {"birth": 0})
        consumer.receive(msg)
        consumer.receive(msg)
        assert consumer.stutter == 1
        assert metrics.counter("output_stutter") == 1
        assert len(consumer.effective_outputs) == 1
        assert len(consumer.raw_outputs) == 2

    def test_gap_is_a_protocol_error(self):
        sim, metrics, consumer = self.make_consumer()
        consumer.receive(DataMessage(4, 0, 1_000, {"birth": 0}))
        with pytest.raises(TransportError):
            consumer.receive(DataMessage(4, 5, 9_000, {"birth": 0}))

    def test_payloads_accessor(self):
        sim, metrics, consumer = self.make_consumer()
        consumer.receive(DataMessage(4, 0, 1_000, {"birth": 0, "x": 1}))
        consumer.receive(DataMessage(4, 1, 2_000, {"birth": 0, "x": 2}))
        assert [p["x"] for p in consumer.payloads()] == [1, 2]

    def test_non_data_items_ignored(self):
        sim, metrics, consumer = self.make_consumer()
        consumer.receive(SilenceAdvance(4, 100))
        assert len(consumer) == 0
