"""Unit tests for recovery-manager bookkeeping and fencing."""

import pytest

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.errors import FailoverInProgressError, RecoveryError
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, us


def build():
    app = build_wordcount_app(2)
    dep = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=ms(30)),
        default_link=LinkParams(delay=Constant(us(60))),
        control_delay=us(10), birth_of=birth_of,
    )
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


class TestRecoveryManager:
    def test_unknown_engine_rejected(self):
        dep = build()
        with pytest.raises(RecoveryError):
            dep.recovery.engine_failed("E99")

    def test_in_progress_tracking(self):
        dep = build()
        dep.run(until=ms(100))
        assert not dep.recovery.in_progress("E2")
        dep.recovery.engine_failed("E2", detection_delay=ms(50))
        assert dep.recovery.in_progress("E2")
        with pytest.raises(RecoveryError):
            dep.recovery.engine_failed("E2")
        dep.run(until=ms(200))
        assert not dep.recovery.in_progress("E2")
        assert dep.recovery.failover_count("E2") == 1

    def test_double_report_raises_structured_error(self):
        # Detector + injector double-report: the second declaration must
        # raise a structured error identifying the engine and when its
        # failover was declared, so callers can drop the duplicate.
        dep = build()
        dep.run(until=ms(100))
        declared_at = dep.sim.now
        dep.recovery.engine_failed("E2", detection_delay=ms(50))
        with pytest.raises(FailoverInProgressError) as exc_info:
            dep.recovery.engine_failed("E2")
        err = exc_info.value
        assert err.engine_id == "E2"
        assert err.failed_at == declared_at
        assert "E2" in str(err) and str(declared_at) in str(err)

    def test_double_report_is_idempotent_when_caught(self):
        # Catching the duplicate leaves the original failover intact:
        # it still completes exactly once.
        dep = build()
        dep.run(until=ms(100))
        dep.recovery.engine_failed("E2", detection_delay=ms(50))
        try:
            dep.recovery.engine_failed("E2")
        except FailoverInProgressError:
            pass
        dep.run(until=ms(300))
        assert not dep.recovery.in_progress("E2")
        assert dep.recovery.failover_count("E2") == 1

    def test_fencing_halts_a_live_engine(self):
        # A false-positive declaration (engine still alive) must fence
        # the old incarnation before promoting the replica.
        dep = build()
        dep.run(until=ms(200))
        old = dep.engine("E2")
        assert old.alive
        dep.recovery.engine_failed("E2", detection_delay=ms(1))
        assert not old.alive  # fenced immediately at declaration
        dep.run(until=ms(400))
        new = dep.engine("E2")
        assert new is not old and new.alive

    def test_false_positive_failover_preserves_output(self):
        # Fence + promote with the "failed" engine actually healthy: the
        # stream must still match a failure-free run (the fenced engine
        # can no longer interfere and the replica replays normally).
        faulty = build()
        faulty.run(until=ms(300))
        faulty.recovery.engine_failed("E2", detection_delay=ms(2))
        faulty.run(until=ms(1_000))
        clean = build()
        clean.run(until=ms(1_000))
        got = [(s, p["total"]) for s, _v, p, _t in
               faulty.consumer("sink").effective_outputs]
        want = [(s, p["total"]) for s, _v, p, _t in
                clean.consumer("sink").effective_outputs]
        assert got == want

    def test_history_records_timestamps(self):
        dep = build()
        dep.run(until=ms(100))
        dep.recovery.engine_failed("E2", detection_delay=ms(5))
        dep.run(until=ms(300))
        ((failed_at, active_at),) = dep.recovery.history["E2"]
        assert active_at - failed_at == ms(5)
        assert dep.recovery.failover_count() == 1
