"""Unit tests for the metrics sink."""

import math

import pytest

from repro.runtime.metrics import MetricSet


class TestCounters:
    def test_count_and_read(self):
        m = MetricSet()
        m.count("x")
        m.count("x", 4)
        assert m.counter("x") == 5
        assert m.counter("absent") == 0

    def test_accumulators(self):
        m = MetricSet()
        m.add("ticks", 100)
        m.add("ticks", 50)
        assert m.accumulator("ticks") == 150
        assert m.accumulator("absent") == 0


class TestLatency:
    def test_record_and_mean(self):
        m = MetricSet()
        m.record_latency(0, 2_000)
        m.record_latency(1_000, 5_000)
        assert m.latency_count() == 2
        assert m.mean_latency_us() == pytest.approx(3.0)
        assert m.latencies == [2_000, 4_000]

    def test_empty_latency_stats_are_nan(self):
        m = MetricSet()
        assert math.isnan(m.mean_latency_us())
        assert math.isnan(m.latency_percentile_us(50))

    def test_percentiles(self):
        m = MetricSet()
        for i in range(1, 101):
            m.record_latency(0, i * 1_000)
        assert m.latency_percentile_us(50) == pytest.approx(50, abs=2)
        assert m.latency_percentile_us(95) == pytest.approx(95, abs=2)
        assert m.latency_percentile_us(0) == pytest.approx(1)

    def test_percentiles_interpolate_between_ranks(self):
        # Known quantiles on a small, fixed sample: with linear
        # interpolation between closest ranks (numpy's default), the
        # values below are exact; nearest-rank rounding would bias
        # p95 up to 4.0us and p50 to a data point.
        m = MetricSet()
        for v in (1_000, 2_000, 3_000, 4_000):
            m.record_latency(0, v)
        assert m.latency_percentile_us(50) == pytest.approx(2.5)
        assert m.latency_percentile_us(25) == pytest.approx(1.75)
        assert m.latency_percentile_us(75) == pytest.approx(3.25)
        assert m.latency_percentile_us(95) == pytest.approx(3.85)
        assert m.latency_percentile_us(0) == pytest.approx(1.0)
        assert m.latency_percentile_us(100) == pytest.approx(4.0)

    def test_percentile_single_sample_and_clamping(self):
        m = MetricSet()
        m.record_latency(0, 7_000)
        for q in (0, 37.5, 100):
            assert m.latency_percentile_us(q) == pytest.approx(7.0)
        m.record_latency(0, 9_000)
        # Out-of-range q clamps rather than indexing out of bounds.
        assert m.latency_percentile_us(-5) == pytest.approx(7.0)
        assert m.latency_percentile_us(120) == pytest.approx(9.0)

    def test_std(self):
        m = MetricSet()
        for v in (1_000, 3_000):
            m.record_latency(0, v)
        assert m.latency_std_us() == pytest.approx(2**0.5, rel=1e-6)
        assert MetricSet().latency_std_us() == 0.0


class TestDerived:
    def test_probes_per_message(self):
        m = MetricSet()
        m.count("curiosity_probes", 30)
        assert m.probes_per_message() == 0.0  # no messages yet
        m.record_latency(0, 1)
        m.record_latency(0, 1)
        assert m.probes_per_message() == 15.0

    def test_out_of_order_fraction(self):
        m = MetricSet()
        assert m.out_of_order_fraction() == 0.0
        m.count("messages_processed", 10)
        m.count("out_of_order_arrivals", 1)
        assert m.out_of_order_fraction() == pytest.approx(0.1)

    def test_summary_keys(self):
        m = MetricSet()
        m.record_latency(0, 1_000)
        summary = m.summary()
        for key in ("messages", "mean_latency_us", "p95_latency_us",
                    "probes_per_message", "pessimism_delay_us"):
            assert key in summary
        assert summary["messages"] == 1.0


class TestDumpJson:
    def test_dump_json_is_json_safe_and_complete(self):
        import json

        m = MetricSet()
        m.count("messages_sent", 3)
        m.add("replayed_ticks", 42)
        m.gauge("queue_depth", 2.5)
        m.gauge("broken", float("nan"))
        m.record_latency(0, 2_000)
        m.record_latency(1_000, 5_000)
        doc = m.dump_json()
        # Must survive strict JSON (non-finite floats become null).
        round_tripped = json.loads(json.dumps(doc, allow_nan=False))
        assert round_tripped["counters"]["messages_sent"] == 3
        assert round_tripped["accumulators"]["replayed_ticks"] == 42
        assert round_tripped["gauges"]["queue_depth"] == 2.5
        assert round_tripped["gauges"]["broken"] is None
        assert round_tripped["latency"]["count"] == 2
        assert round_tripped["latency"]["mean_us"] == pytest.approx(3.0)
        assert "summary" in round_tripped

    def test_dump_json_empty_metrics(self):
        import json

        doc = MetricSet().dump_json()
        json.dumps(doc, allow_nan=False)
        assert doc["latency"] == {"count": 0}
