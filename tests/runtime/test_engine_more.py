"""Additional engine coverage: wiring validation, mid-call checkpoint
deferral, reply-wire silence handling, failover plumbing details."""

import pytest

from repro.apps.callgraph import build_callgraph_app, request_factory
from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.core.message import SilenceAdvance
from repro.errors import WiringError
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement, single_engine_placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us


class TestWiringValidation:
    def test_unknown_port_rejected(self):
        from repro.core.ports import WireSpec
        from repro.core.estimators import CommDelayEstimator

        app = build_wordcount_app(1)
        dep = Deployment(app, single_engine_placement(app.component_names()))
        engine = dep.engine("engine0")
        bad = WireSpec(99, "data", "sender1", "no_such_port", "merger",
                       "input", CommDelayEstimator(0))
        with pytest.raises(WiringError):
            engine.wire_out("sender1", bad, "no_such_port")

    def test_reply_in_requires_service_port(self):
        from repro.core.ports import WireSpec
        from repro.core.estimators import CommDelayEstimator

        app = build_wordcount_app(1)
        dep = Deployment(app, single_engine_placement(app.component_names()))
        engine = dep.engine("engine0")
        bad = WireSpec(98, "reply", "merger", None, "sender1", None,
                       CommDelayEstimator(0))
        with pytest.raises(WiringError):
            engine.wire_reply_in("sender1", bad, "port1")

    def test_duplicate_component_rejected(self):
        from repro.apps.wordcount import WordCountSender

        app = build_wordcount_app(1)
        dep = Deployment(app, single_engine_placement(app.component_names()))
        with pytest.raises(WiringError):
            dep.engine("engine0").add_component(WordCountSender("sender1"))

    def test_unknown_engine_mode_rejected(self):
        import dataclasses

        from repro.apps.wordcount import WordCountSender

        app = build_wordcount_app(1)
        dep = Deployment(app, single_engine_placement(app.component_names()))
        engine = dep.engine("engine0")
        engine.config = dataclasses.replace(engine.config, mode="quantum")
        with pytest.raises(WiringError):
            engine.add_component(WordCountSender("another"))


class TestMidCallCheckpointDeferral:
    def test_checkpoints_still_happen_despite_frequent_calls(self):
        # The frontend spends ~40% of its time suspended on calls (200us
        # RTT per 500us request); mid-call captures must defer and retry,
        # yet checkpoints keep flowing.
        app = build_callgraph_app()
        dep = Deployment(
            app, Placement({"frontend": "E1", "directory": "E2"}),
            engine_config=EngineConfig(jitter=NormalTickJitter(),
                                       checkpoint_interval=ms(10)),
            default_link=LinkParams(delay=Constant(us(100))),
            control_delay=us(5), birth_of=birth_of,
        )
        dep.add_poisson_producer("requests", request_factory(),
                                 mean_interarrival=us(500))
        dep.run(until=ms(300))
        captured = dep.metrics.counter("checkpoints_captured")
        assert captured >= 40  # two engines, ~30 intervals each
        assert dep.replicas["E1"].has_checkpoint
        assert dep.replicas["E2"].has_checkpoint

    def test_explicit_mid_call_capture_raises(self):
        from repro.errors import SchedulingError

        app = build_callgraph_app()
        dep = Deployment(
            app, Placement({"frontend": "E1", "directory": "E2"}),
            engine_config=EngineConfig(jitter=NormalTickJitter(),
                                       checkpoint_interval=seconds(10)),
            default_link=LinkParams(delay=Constant(us(200))),
            control_delay=us(5), birth_of=birth_of,
        )
        dep.start()
        dep.ingress("requests").offer({"key": "k", "birth": 0})
        dep.run(until=us(120))  # call in flight, frontend suspended
        frontend = dep.runtime("frontend")
        assert frontend.mid_call
        with pytest.raises(SchedulingError):
            dep.engine("E1").capture_checkpoint()


class TestReplyWireSilence:
    def test_silence_on_reply_wire_dropped_quietly(self):
        app = build_callgraph_app()
        dep = Deployment(
            app, Placement({"frontend": "E1", "directory": "E2"}),
            engine_config=EngineConfig(),
            birth_of=birth_of,
        )
        reply_wire = next(
            wid for wid in dep.router.wire_ids()
            if dep.router.spec(wid).kind == "reply"
        )
        # Must not raise even though reply wires are not in silence maps.
        dep.engine("E1").receive(SilenceAdvance(reply_wire, 10**9))


class TestFailoverPlumbing:
    def test_runtime_accessor_follows_failover(self):
        app = build_wordcount_app(2)
        dep = Deployment(
            app, Placement({"sender1": "E1", "sender2": "E1",
                            "merger": "E2"}),
            engine_config=EngineConfig(jitter=NormalTickJitter(),
                                       checkpoint_interval=ms(30)),
            default_link=LinkParams(delay=Constant(us(50))),
            control_delay=us(5), birth_of=birth_of,
        )
        factory = sentence_factory()
        for i in (1, 2):
            dep.add_poisson_producer(f"ext{i}", factory,
                                     mean_interarrival=ms(1))
        before = dep.runtime("merger")
        FailureInjector(dep).kill_engine("E2", at=ms(200),
                                         detection_delay=ms(2))
        dep.run(until=ms(400))
        after = dep.runtime("merger")
        assert after is not before
        assert after.component_vt > 0  # restored and progressing

    def test_checkpoint_seq_continues_across_failover(self):
        app = build_wordcount_app(2)
        dep = Deployment(
            app, Placement({"sender1": "E1", "sender2": "E1",
                            "merger": "E2"}),
            engine_config=EngineConfig(jitter=NormalTickJitter(),
                                       checkpoint_interval=ms(30)),
            default_link=LinkParams(delay=Constant(us(50))),
            control_delay=us(5), birth_of=birth_of,
        )
        factory = sentence_factory()
        for i in (1, 2):
            dep.add_poisson_producer(f"ext{i}", factory,
                                     mean_interarrival=ms(1))
        FailureInjector(dep).kill_engine("E2", at=ms(200),
                                         detection_delay=ms(2))
        dep.run(until=ms(600))
        replica = dep.replicas["E2"]
        # Checkpoints kept flowing after failover, with increasing seqs.
        assert replica.last_cp_seq >= 10
