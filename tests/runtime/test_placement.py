"""Unit tests for the placement service."""

import pytest

from repro.errors import WiringError
from repro.runtime.placement import (
    Placement,
    round_robin_placement,
    single_engine_placement,
)


class TestPlacement:
    def test_engine_of(self):
        p = Placement({"a": "E1", "b": "E2"})
        assert p.engine_of("a") == "E1"
        with pytest.raises(WiringError):
            p.engine_of("zz")

    def test_engines_and_components_on(self):
        p = Placement({"a": "E1", "b": "E2", "c": "E1"})
        assert p.engines() == ["E1", "E2"]
        assert p.components_on("E1") == ["a", "c"]
        assert p.components_on("E3") == []

    def test_validate_exact_cover(self):
        p = Placement({"a": "E1"})
        p.validate_components(["a"])
        with pytest.raises(WiringError):
            p.validate_components(["a", "b"])   # missing b
        with pytest.raises(WiringError):
            p.validate_components([])           # extra a

    def test_empty_rejected(self):
        with pytest.raises(WiringError):
            Placement({})


class TestHelpers:
    def test_single_engine(self):
        p = single_engine_placement(["a", "b"], "E9")
        assert p.engines() == ["E9"]
        assert p.components_on("E9") == ["a", "b"]

    def test_round_robin(self):
        p = round_robin_placement(["a", "b", "c"], ["E1", "E2"])
        assert p.engine_of("a") == "E1"
        assert p.engine_of("b") == "E2"
        assert p.engine_of("c") == "E1"

    def test_round_robin_requires_engines(self):
        with pytest.raises(WiringError):
            round_robin_placement(["a"], [])
