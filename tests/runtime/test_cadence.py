"""Unit tests for the recovery-target cadence controller.

Covers the control law (budget minus fixed overheads), hysteresis,
clamping, wall-clock budgets through the observed replay rate, the
``cadence.*`` gauge exports, and the EngineConfig validation that
guards the new knobs.
"""

import pytest

from repro.errors import RecoveryError
from repro.runtime.cadence import CadenceController, RecoveryTarget
from repro.runtime.engine import EngineConfig
from repro.runtime.metrics import MetricSet
from repro.sim.kernel import ms


class TestRecoveryTarget:
    def test_needs_at_least_one_budget(self):
        with pytest.raises(RecoveryError):
            RecoveryTarget()

    def test_rejects_non_positive_budgets(self):
        with pytest.raises(RecoveryError):
            RecoveryTarget(max_replay_ticks=0)
        with pytest.raises(RecoveryError):
            RecoveryTarget(max_recovery_wall_ms=-1.0)

    def test_rejects_bad_hysteresis_and_clamp(self):
        with pytest.raises(RecoveryError):
            RecoveryTarget(max_replay_ticks=ms(10), hysteresis=1.0)
        with pytest.raises(RecoveryError):
            RecoveryTarget(max_replay_ticks=ms(10), min_interval=0)
        with pytest.raises(RecoveryError):
            RecoveryTarget(max_replay_ticks=ms(10), max_interval=-5)


class TestCadenceController:
    def test_interval_fills_budget_minus_overheads(self):
        target = RecoveryTarget(max_replay_ticks=ms(40), hysteresis=0.0)
        ctl = CadenceController(target, base_interval=ms(10),
                                detect_ticks=ms(6))
        ctl.observe_ack(ms(2))
        assert ctl.next_interval() == ms(40) - ms(6) - ms(2)
        # The worst case implied by the chosen interval meets the budget.
        assert ctl.predicted_replay_ticks() == pytest.approx(ms(40))

    def test_hysteresis_suppresses_small_corrections(self):
        target = RecoveryTarget(max_replay_ticks=ms(40), hysteresis=0.2)
        ctl = CadenceController(target, base_interval=ms(36))
        # Desired is 40ms, an ~11% change from 36ms: below hysteresis.
        assert ctl.next_interval() == ms(36)
        assert ctl.adjustments == 0
        # A big overhead shift (desired 20ms, -44%) must be adopted.
        ctl.observe_ack(ms(20))
        assert ctl.next_interval() < ms(36)
        assert ctl.adjustments == 1

    def test_clamped_to_band_around_base(self):
        tight = RecoveryTarget(max_replay_ticks=1, hysteresis=0.0)
        ctl = CadenceController(tight, base_interval=ms(8))
        assert ctl.next_interval() == ms(8) // 8  # floor of default band
        loose = RecoveryTarget(max_replay_ticks=ms(10_000), hysteresis=0.0)
        ctl = CadenceController(loose, base_interval=ms(8))
        assert ctl.next_interval() == ms(8) * 8  # ceiling of default band

    def test_explicit_clamp_overrides_default_band(self):
        target = RecoveryTarget(max_replay_ticks=ms(10_000),
                                min_interval=ms(1), max_interval=ms(12),
                                hysteresis=0.0)
        ctl = CadenceController(target, base_interval=ms(8))
        assert ctl.next_interval() == ms(12)
        with pytest.raises(RecoveryError):
            CadenceController(
                RecoveryTarget(max_replay_ticks=ms(10), min_interval=10,
                               max_interval=5),
                base_interval=ms(8),
            )

    def test_wall_budget_converts_through_observed_replay_rate(self):
        # 5 ms wall budget at a measured 2 ticks/ms replay rate = 10
        # ticks of replay budget.
        target = RecoveryTarget(max_recovery_wall_ms=5.0, hysteresis=0.0,
                                min_interval=1, max_interval=10**12)
        ctl = CadenceController(target, base_interval=1000,
                                replay_rate_prior_ticks_per_ms=1.0)
        assert ctl._budget_ticks() == pytest.approx(5.0)
        for _ in range(50):  # drive the EWMA to the measured rate
            ctl.observe_replay(span_ticks=20, wall_ms=10.0)
        assert ctl._budget_ticks() == pytest.approx(10.0, rel=0.01)

    def test_tighter_of_two_budgets_governs(self):
        target = RecoveryTarget(max_replay_ticks=ms(3),
                                max_recovery_wall_ms=1e9, hysteresis=0.0)
        ctl = CadenceController(target, base_interval=ms(3))
        assert ctl._budget_ticks() == float(ms(3))

    def test_gauges_exported(self):
        metrics = MetricSet()
        target = RecoveryTarget(max_replay_ticks=ms(40), hysteresis=0.0)
        ctl = CadenceController(target, base_interval=ms(10),
                                detect_ticks=ms(6), metrics=metrics)
        ctl.observe_checkpoint(span_ticks=ms(10), messages=50,
                               capture_us=120.0, blob_bytes=4096)
        ctl.next_interval()
        for gauge in ("cadence.interval_ticks", "cadence.budget_ticks",
                      "cadence.detect_ticks", "cadence.ack_lag_ticks",
                      "cadence.predicted_replay_ticks",
                      "cadence.replay_rate_ticks_per_ms",
                      "cadence.growth_msgs_per_tick",
                      "cadence.predicted_replay_msgs",
                      "cadence.capture_us", "cadence.checkpoint_bytes"):
            assert gauge in metrics.gauges, gauge
        assert metrics.gauge_value("cadence.budget_ticks") == float(ms(40))
        assert metrics.counters.get("cadence.adjustments", 0) == 1

    def test_rejects_bad_construction(self):
        target = RecoveryTarget(max_replay_ticks=ms(10))
        with pytest.raises(RecoveryError):
            CadenceController(target, base_interval=0)
        with pytest.raises(RecoveryError):
            CadenceController(target, base_interval=10, detect_ticks=-1)


class TestEngineConfigValidation:
    def test_rejects_non_positive_intervals(self):
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_interval=0)
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_interval=-ms(5))
        with pytest.raises(ValueError):
            EngineConfig(full_checkpoint_every=0)
        with pytest.raises(ValueError):
            EngineConfig(heartbeat_interval=0)
        with pytest.raises(ValueError):
            EngineConfig(heartbeat_miss_limit=0)
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_max_retries=0)

    def test_none_still_disables_the_features(self):
        config = EngineConfig(checkpoint_interval=None,
                              heartbeat_interval=None)
        assert config.checkpoint_interval is None

    def test_audit_and_target_require_checkpointing(self):
        with pytest.raises(ValueError):
            EngineConfig(audit="heal")  # no checkpoint_interval
        with pytest.raises(ValueError):
            EngineConfig(recovery_target=RecoveryTarget(
                max_replay_ticks=ms(10)))
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_interval=ms(10), audit="sometimes")
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_interval=ms(10), audit_every=0)
        # Valid combinations construct fine.
        EngineConfig(checkpoint_interval=ms(10), audit="heal",
                     recovery_target=RecoveryTarget(max_replay_ticks=ms(40)))
