"""Unit tests for the application builder and deployment wiring."""

import pytest

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.core.component import Component, on_message
from repro.core.cost import fixed_cost
from repro.core.estimators import ConstantEstimator
from repro.core.cost import CostModel
from repro.errors import WiringError
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import Placement, single_engine_placement
from repro.sim.kernel import ms, us


class Src(Component):
    def setup(self):
        self.out = self.output_port("out")

    @on_message("input", cost=fixed_cost(us(10)))
    def handle(self, payload):
        self.out.send(payload)


class Dst(Component):
    def setup(self):
        self.seen = self.state.value("seen", [])

    @on_message("input", cost=fixed_cost(us(10)))
    def handle(self, payload):
        self.seen.set(self.seen.get() + [payload])


class TestApplicationDeclaration:
    def test_duplicate_component_rejected(self):
        app = Application("t")
        app.add_component("a", Src)
        with pytest.raises(WiringError):
            app.add_component("a", Src)

    def test_non_component_class_rejected(self):
        app = Application("t")
        with pytest.raises(WiringError):
            app.add_component("a", dict)

    def test_wire_unknown_component_rejected(self):
        app = Application("t")
        app.add_component("a", Src)
        with pytest.raises(WiringError):
            app.wire("a", "out", "missing", "input")

    def test_duplicate_external_ids_rejected(self):
        app = Application("t")
        app.add_component("a", Src)
        app.external_input("in", "a", "input")
        with pytest.raises(WiringError):
            app.external_input("in", "a", "input")
        app.external_output("a", "out", "sink")
        with pytest.raises(WiringError):
            app.external_output("a", "out", "sink")

    def test_component_names_in_order(self):
        app = Application("t")
        app.add_component("z", Src)
        app.add_component("a", Dst)
        assert app.component_names() == ["z", "a"]


def simple_app():
    app = Application("t")
    app.add_component("src", Src)
    app.add_component("dst", Dst)
    app.external_input("in", "src", "input")
    app.wire("src", "out", "dst", "input")
    return app


class TestDeployment:
    def test_placement_must_cover_components(self):
        app = simple_app()
        with pytest.raises(WiringError):
            Deployment(app, Placement({"src": "E1"}))

    def test_end_to_end_delivery(self):
        app = simple_app()
        dep = Deployment(app, single_engine_placement(app.component_names()))
        dep.start()
        dep.ingress("in").offer("hello")
        dep.run(until=ms(1))
        assert dep.runtime("dst").component.seen.get() == ["hello"]

    def test_accessors(self):
        app = build_wordcount_app(2)
        dep = Deployment(app, single_engine_placement(app.component_names()),
                         birth_of=birth_of)
        assert dep.engine("engine0").engine_id == "engine0"
        assert dep.consumer("sink").node_id == "sink"
        assert dep.ingress("ext1").spec.dst_component == "sender1"
        assert dep.runtime("merger").component.name == "merger"

    def test_wire_ids_unique_and_routed(self):
        app = build_wordcount_app(2)
        dep = Deployment(app, single_engine_placement(app.component_names()))
        ids = dep.router.wire_ids()
        assert len(ids) == len(set(ids)) == 5  # 2 ext_in + 2 data + 1 ext_out

    def test_remote_wire_gets_link_mean_delay_estimate(self):
        from repro.runtime.transport import LinkParams
        from repro.sim.distributions import Constant

        app = simple_app()
        dep = Deployment(
            app, Placement({"src": "E1", "dst": "E2"}),
            default_link=LinkParams(delay=Constant(us(200))),
        )
        spec = next(s for wid in dep.router.wire_ids()
                    for s in [dep.router.spec(wid)] if s.kind == "data")
        assert spec.delay_estimator.estimate({}) == us(200)

    def test_local_wire_zero_delay_estimate(self):
        app = simple_app()
        dep = Deployment(app, single_engine_placement(app.component_names()))
        spec = next(s for wid in dep.router.wire_ids()
                    for s in [dep.router.spec(wid)] if s.kind == "data")
        assert spec.delay_estimator.estimate({}) == 0

    def test_cost_override_applied(self):
        app = simple_app()
        override = CostModel(ConstantEstimator(us(500)),
                             true_per_feature={}, true_intercept=us(500))
        dep = Deployment(
            app, single_engine_placement(app.component_names()),
            cost_overrides={("src", "input"): override},
        )
        runtime = dep.runtime("src")
        spec = runtime.in_wires[0].handler_spec
        assert spec.cost.estimated({}, 0) == us(500)

    def test_producers_added_before_or_after_start(self):
        app = simple_app()
        dep = Deployment(app, single_engine_placement(app.component_names()))
        dep.add_poisson_producer("in", lambda r, i, n: i,
                                 mean_interarrival=us(100), max_messages=3)
        dep.start()
        late = dep.add_poisson_producer("in", lambda r, i, n: 100 + i,
                                        mean_interarrival=us(100),
                                        max_messages=2)
        dep.run(until=ms(10))
        assert dep.runtime("dst").component.seen.get()  # both produced
        assert late.produced == 2

    def test_engine_per_engine_config(self):
        app = simple_app()
        dep = Deployment(
            app, Placement({"src": "E1", "dst": "E2"}),
            engine_config=EngineConfig(mode="deterministic"),
            engine_configs={"E2": EngineConfig(mode="nondeterministic")},
        )
        assert dep.engine("E1").config.mode == "deterministic"
        assert dep.engine("E2").config.mode == "nondeterministic"

    def test_deterministic_reruns_are_identical(self):
        def run_once():
            app = simple_app()
            dep = Deployment(app,
                             single_engine_placement(app.component_names()),
                             master_seed=77)
            dep.add_poisson_producer("in", lambda r, i, n: i,
                                     mean_interarrival=us(50),
                                     max_messages=50)
            dep.run(until=ms(100))
            return dep.runtime("dst").component.seen.get()

        assert run_once() == run_once()
