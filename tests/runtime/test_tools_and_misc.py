"""Tests for the report tool's rendering and miscellaneous utilities."""

import pytest

from repro.core.estimators import CommDelayEstimator
from repro.core.ports import OutputPort, WireSpec
from repro.errors import (
    ComponentError,
    RecoveryError,
    SchedulingError,
    SilenceViolationError,
    StateError,
    TartError,
    TransportError,
    VirtualTimeError,
    WiringError,
)
from repro.tools.report import _md_table


class TestMdTable:
    def test_renders_rows(self):
        text = _md_table([{"a": 1, "b": 2.5}, {"a": None, "b": "x"}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.50 |" in text
        assert "| — | x |" in text

    def test_empty(self):
        assert "no rows" in _md_table([])

    def test_column_selection(self):
        text = _md_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ComponentError, RecoveryError, SchedulingError,
        SilenceViolationError, StateError, TransportError,
        VirtualTimeError, WiringError,
    ])
    def test_all_errors_are_tart_errors(self, exc):
        assert issubclass(exc, TartError)

    def test_silence_violation_is_a_virtual_time_error(self):
        assert issubclass(SilenceViolationError, VirtualTimeError)

    def test_wiring_and_state_errors_are_component_errors(self):
        assert issubclass(WiringError, ComponentError)
        assert issubclass(StateError, ComponentError)


class TestWireSpec:
    def test_str_for_internal_wire(self):
        spec = WireSpec(3, "data", "a", "out", "b", "input",
                        CommDelayEstimator(0))
        assert "a.out" in str(spec)
        assert "b.input" in str(spec)
        assert "wire#3" in str(spec)

    def test_str_for_external_ends(self):
        spec = WireSpec(4, "ext_in", None, None, "b", "input",
                        CommDelayEstimator(0))
        assert "<external>" in str(spec)


class TestOutputPortWiring:
    def _port(self):
        from repro.core.component import Component

        class C(Component):
            def setup(self):
                pass

        comp = C("c")
        return OutputPort(comp, "p")

    def test_fan_out_attach(self):
        port = self._port()
        for wid in (1, 2, 3):
            port.attach(WireSpec(wid, "data", "c", "p", f"d{wid}", "input",
                                 CommDelayEstimator(0)))
        assert len(port.wires) == 3

    def test_duplicate_wire_rejected(self):
        port = self._port()
        spec = WireSpec(1, "data", "c", "p", "d", "input",
                        CommDelayEstimator(0))
        port.attach(spec)
        with pytest.raises(WiringError):
            port.attach(spec)

    def test_service_port_single_wire(self):
        from repro.core.component import Component
        from repro.core.ports import ServicePort

        class C(Component):
            def setup(self):
                pass

        port = ServicePort(C("c"), "svc")
        port.attach(WireSpec(1, "call", "c", "svc", "s", "q",
                             CommDelayEstimator(0)))
        with pytest.raises(WiringError):
            port.attach(WireSpec(2, "call", "c", "svc", "s2", "q",
                                 CommDelayEstimator(0)))

    def test_unwired_call_rejected(self):
        from repro.core.component import Component
        from repro.core.ports import ServicePort

        class C(Component):
            def setup(self):
                pass

        port = ServicePort(C("c"), "svc")
        with pytest.raises(WiringError):
            port.call("x")
