"""Unit tests for passive replicas."""

import pytest

from repro.core.message import CheckpointAck, CheckpointData
from repro.errors import RecoveryError
from repro.runtime import checkpoint as cpser
from repro.runtime.replica import PassiveReplica
from repro.runtime.transport import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class EngineStub:
    def __init__(self, node_id, sim):
        self.node_id = node_id
        self.sim = sim
        self.alive = True
        self.acks = []

    def receive(self, item):
        if isinstance(item, CheckpointAck):
            self.acks.append(item)


def component_snap(cells, incremental, vt):
    return {
        "cells": cells,
        "cells_incremental": incremental,
        "component_vt": vt,
        "max_arrived_vt": -1,
        "next_call_id": 0,
        "receivers": {},
        "reply_receivers": {},
        "senders": {},
        "silence": {"horizons": {}},
        "pending": {},
    }


def cp(engine_id, seq, incremental, components):
    blob = cpser.dumps({"components": components})
    return CheckpointData(engine_id, seq, incremental, blob)


def make_replica():
    sim = Simulator()
    net = Network(sim, RngRegistry(0))
    engine = EngineStub("E1", sim)
    net.register(engine)
    replica = PassiveReplica("replica:E1", sim, net, "E1")
    net.register(replica)
    return sim, engine, replica


class TestReplica:
    def test_acks_each_checkpoint(self):
        sim, engine, replica = make_replica()
        replica.receive(cp("E1", 1, False,
                           {"c": component_snap({"v": 1}, False, 10)}))
        sim.run()
        assert [a.cp_seq for a in engine.acks] == [1]
        assert replica.has_checkpoint
        assert replica.last_cp_seq == 1

    def test_materialize_single_full(self):
        sim, engine, replica = make_replica()
        replica.receive(cp("E1", 1, False,
                           {"c": component_snap({"v": 7}, False, 10)}))
        snaps = replica.materialize()
        assert snaps["c"]["cells"] == {"v": 7}

    def test_materialize_chain(self):
        sim, engine, replica = make_replica()
        replica.receive(cp("E1", 1, False,
                           {"c": component_snap({"v": 1, "m": {"a": 1}},
                                                False, 10)}))
        replica.receive(cp("E1", 2, True,
                           {"c": component_snap(
                               {"v": (True, 5), "m": {"b": 2}}, True, 20)}))
        snaps = replica.materialize()
        assert snaps["c"]["cells"] == {"v": 5, "m": {"a": 1, "b": 2}}
        assert snaps["c"]["component_vt"] == 20

    def test_new_full_checkpoint_resets_chain(self):
        sim, engine, replica = make_replica()
        replica.receive(cp("E1", 1, False,
                           {"c": component_snap({"v": 1}, False, 10)}))
        replica.receive(cp("E1", 2, True,
                           {"c": component_snap({"v": (True, 2)}, True, 20)}))
        replica.receive(cp("E1", 3, False,
                           {"c": component_snap({"v": 99}, False, 30)}))
        snaps = replica.materialize()
        assert snaps["c"]["cells"] == {"v": 99}
        assert replica.last_cp_seq == 3

    def test_delta_without_base_rejected(self):
        sim, engine, replica = make_replica()
        with pytest.raises(RecoveryError):
            replica.receive(cp("E1", 1, True,
                               {"c": component_snap({}, True, 0)}))

    def test_wrong_engine_rejected(self):
        sim, engine, replica = make_replica()
        with pytest.raises(RecoveryError):
            replica.receive(cp("E9", 1, False, {}))

    def test_materialize_without_checkpoint_rejected(self):
        sim, engine, replica = make_replica()
        with pytest.raises(RecoveryError):
            replica.materialize()
        assert replica.last_cp_seq == -1

    def test_non_checkpoint_items_ignored(self):
        sim, engine, replica = make_replica()
        replica.receive("noise")
        assert not replica.has_checkpoint

    def test_bytes_received_accounted(self):
        sim, engine, replica = make_replica()
        data = cp("E1", 1, False, {"c": component_snap({"v": 1}, False, 0)})
        replica.receive(data)
        assert replica.bytes_received == len(data.blob) > 0
