"""Unit tests for passive replicas."""

import pytest

from repro.core.message import CheckpointAck, CheckpointData
from repro.errors import RecoveryError
from repro.runtime import checkpoint as cpser
from repro.runtime.replica import PassiveReplica
from repro.runtime.transport import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class EngineStub:
    def __init__(self, node_id, sim):
        self.node_id = node_id
        self.sim = sim
        self.alive = True
        self.acks = []

    def receive(self, item):
        if isinstance(item, CheckpointAck):
            self.acks.append(item)


def component_snap(cells, incremental, vt):
    return {
        "cells": cells,
        "cells_incremental": incremental,
        "component_vt": vt,
        "max_arrived_vt": -1,
        "next_call_id": 0,
        "receivers": {},
        "reply_receivers": {},
        "senders": {},
        "silence": {"horizons": {}},
        "pending": {},
    }


def cp(engine_id, seq, incremental, components):
    blob = cpser.dumps({"components": components})
    return CheckpointData(engine_id, seq, incremental, blob)


def make_replica():
    sim = Simulator()
    net = Network(sim, RngRegistry(0))
    engine = EngineStub("E1", sim)
    net.register(engine)
    replica = PassiveReplica("replica:E1", sim, net, "E1")
    net.register(replica)
    return sim, engine, replica


class TestReplica:
    def test_acks_each_checkpoint(self):
        sim, engine, replica = make_replica()
        replica.receive(cp("E1", 1, False,
                           {"c": component_snap({"v": 1}, False, 10)}))
        sim.run()
        assert [a.cp_seq for a in engine.acks] == [1]
        assert replica.has_checkpoint
        assert replica.last_cp_seq == 1

    def test_materialize_single_full(self):
        sim, engine, replica = make_replica()
        replica.receive(cp("E1", 1, False,
                           {"c": component_snap({"v": 7}, False, 10)}))
        snaps = replica.materialize()
        assert snaps["c"]["cells"] == {"v": 7}

    def test_materialize_chain(self):
        sim, engine, replica = make_replica()
        replica.receive(cp("E1", 1, False,
                           {"c": component_snap({"v": 1, "m": {"a": 1}},
                                                False, 10)}))
        replica.receive(cp("E1", 2, True,
                           {"c": component_snap(
                               {"v": (True, 5), "m": {"b": 2}}, True, 20)}))
        snaps = replica.materialize()
        assert snaps["c"]["cells"] == {"v": 5, "m": {"a": 1, "b": 2}}
        assert snaps["c"]["component_vt"] == 20

    def test_new_full_checkpoint_resets_chain(self):
        sim, engine, replica = make_replica()
        replica.receive(cp("E1", 1, False,
                           {"c": component_snap({"v": 1}, False, 10)}))
        replica.receive(cp("E1", 2, True,
                           {"c": component_snap({"v": (True, 2)}, True, 20)}))
        replica.receive(cp("E1", 3, False,
                           {"c": component_snap({"v": 99}, False, 30)}))
        snaps = replica.materialize()
        assert snaps["c"]["cells"] == {"v": 99}
        assert replica.last_cp_seq == 3

    def test_delta_without_base_rejected(self):
        sim, engine, replica = make_replica()
        with pytest.raises(RecoveryError):
            replica.receive(cp("E1", 1, True,
                               {"c": component_snap({}, True, 0)}))

    def test_wrong_engine_rejected(self):
        sim, engine, replica = make_replica()
        with pytest.raises(RecoveryError):
            replica.receive(cp("E9", 1, False, {}))

    def test_materialize_without_checkpoint_rejected(self):
        sim, engine, replica = make_replica()
        with pytest.raises(RecoveryError):
            replica.materialize()
        assert replica.last_cp_seq == -1

    def test_non_checkpoint_items_ignored(self):
        sim, engine, replica = make_replica()
        replica.receive("noise")
        assert not replica.has_checkpoint

    def test_bytes_received_accounted(self):
        sim, engine, replica = make_replica()
        data = cp("E1", 1, False, {"c": component_snap({"v": 1}, False, 0)})
        replica.receive(data)
        assert replica.bytes_received == len(data.blob) > 0


class TestChainGC:
    def make_replica_with_metrics(self, threshold=4):
        from repro.runtime.metrics import MetricSet

        sim = Simulator()
        net = Network(sim, RngRegistry(0))
        engine = EngineStub("E1", sim)
        net.register(engine)
        metrics = MetricSet()
        replica = PassiveReplica("replica:E1", sim, net, "E1",
                                 metrics=metrics,
                                 gc_fold_threshold=threshold)
        net.register(replica)
        self.sim = sim
        return engine, replica, metrics

    def feed(self, replica, n_deltas):
        replica.receive(cp("E1", 0, False,
                           {"c": component_snap({"v": 0}, False, 0)}))
        for seq in range(1, n_deltas + 1):
            replica.receive(cp("E1", seq, True,
                               {"c": component_snap({"v": (True, seq)},
                                                    True, seq * 10)}))

    def test_long_delta_tail_folds_to_one_entry(self):
        engine, replica, metrics = self.make_replica_with_metrics(4)
        self.feed(replica, 20)
        assert replica.chain_len <= 4
        assert replica.gc_folds >= 1
        assert metrics.counter("replica.gc_folds") == replica.gc_folds

    def test_fold_preserves_materialized_state_and_seq(self):
        engine, replica, metrics = self.make_replica_with_metrics(3)
        self.feed(replica, 12)
        assert replica.last_cp_seq == 12
        assert replica.materialize()["c"]["cells"] == {"v": 12}
        assert replica.materialize()["c"]["component_vt"] == 120

    def test_gauges_track_chain_footprint(self):
        engine, replica, metrics = self.make_replica_with_metrics(4)
        self.feed(replica, 2)
        assert metrics.gauge_value("replica.chain_len") == replica.chain_len
        assert (metrics.gauge_value("replica.chain_bytes")
                == replica.chain_bytes > 0)
        self.feed(replica, 20)  # fresh full resets, then folds again
        assert metrics.gauge_value("replica.chain_len") == replica.chain_len
        assert replica.chain_bytes == sum(replica._chain_sizes)

    def test_chain_bytes_bounded_by_fold(self):
        engine, replica, metrics = self.make_replica_with_metrics(4)
        self.feed(replica, 50)
        # Folding keeps at most threshold entries alive; retained bytes
        # stay in the same ballpark as a handful of checkpoints, not 51.
        single = len(cpser.dumps(
            {"components": {"c": component_snap({"v": 1}, False, 10)}}
        ))
        assert replica.chain_bytes <= (replica.gc_fold_threshold + 1) * (
            2 * single
        )

    def test_acks_carry_replica_identity(self):
        engine, replica, metrics = self.make_replica_with_metrics(4)
        self.feed(replica, 3)
        self.sim.run()
        assert engine.acks and all(
            ack.replica_id == "replica:E1" for ack in engine.acks
        )
