"""Unit tests for the stable external-message log."""

import pytest

from repro.errors import RecoveryError
from repro.runtime.message_log import ExternalMessageLog


class TestAppend:
    def test_sequences_assigned_in_order(self):
        log = ExternalMessageLog(1)
        assert log.append(100, "a") == 0
        assert log.append(200, "b") == 1
        assert len(log) == 2
        assert log.last_vt() == 200

    def test_equal_vts_allowed(self):
        log = ExternalMessageLog(1)
        log.append(100, "a")
        log.append(100, "b")  # two arrivals in the same tick

    def test_vt_regression_rejected(self):
        log = ExternalMessageLog(1)
        log.append(100, "a")
        with pytest.raises(RecoveryError):
            log.append(99, "b")


class TestReplay:
    def test_entries_from(self):
        log = ExternalMessageLog(1)
        for i in range(5):
            log.append(i * 10, f"p{i}")
        assert log.entries_from(2) == [(2, 20, "p2"), (3, 30, "p3"),
                                       (4, 40, "p4")]
        assert log.entries_from(0)[0] == (0, 0, "p0")
        assert log.entries_from(5) == []

    def test_negative_seq_rejected(self):
        log = ExternalMessageLog(1)
        with pytest.raises(RecoveryError):
            log.entries_from(-1)


class TestTruncation:
    def test_truncate_keeps_seq_numbers_stable(self):
        log = ExternalMessageLog(1)
        for i in range(5):
            log.append(i * 10, f"p{i}")
        assert log.truncate_through(1) == 2
        assert log.entries_from(2)[0] == (2, 20, "p2")

    def test_replaying_truncated_range_rejected(self):
        log = ExternalMessageLog(1)
        for i in range(5):
            log.append(i * 10, f"p{i}")
        log.truncate_through(2)
        with pytest.raises(RecoveryError):
            log.entries_from(1)

    def test_truncate_is_idempotent(self):
        log = ExternalMessageLog(1)
        for i in range(3):
            log.append(i, f"p{i}")
        log.truncate_through(0)
        assert log.truncate_through(0) == 0

    def test_append_after_truncation(self):
        log = ExternalMessageLog(1)
        log.append(10, "a")
        log.truncate_through(0)
        assert log.append(20, "b") == 1
        assert log.entries_from(1) == [(1, 20, "b")]
