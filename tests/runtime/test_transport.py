"""Unit tests for the inter-node transport."""

import pytest

from repro.core.message import CuriosityProbe, DataMessage, SilenceAdvance
from repro.errors import TransportError
from repro.runtime.transport import LinkParams, Network
from repro.sim.distributions import Constant
from repro.sim.kernel import Simulator, us
from repro.sim.rng import RngRegistry


class FakeNode:
    def __init__(self, node_id, sim):
        self.node_id = node_id
        self.sim = sim
        self.alive = True
        self.received = []

    def receive(self, item):
        self.received.append((item, self.sim.now))

    def arrival_times(self):
        return [t for _, t in self.received]


def make_net(**kwargs):
    sim = Simulator()
    net = Network(sim, RngRegistry(0), **kwargs)
    a, b = FakeNode("a", sim), FakeNode("b", sim)
    net.register(a)
    net.register(b)
    return sim, net, a, b


class TestRouting:
    def test_remote_delivery_through_channel(self):
        sim, net, a, b = make_net(
            default_link=LinkParams(delay=Constant(us(40))))
        net.send("a", "b", "hello")
        sim.run()
        assert [i for i, _ in b.received] == ["hello"]
        assert b.arrival_times() == [us(40)]

    def test_local_delivery_bypasses_channels(self):
        sim, net, a, b = make_net(local_delay=us(3))
        net.send("a", "a", "self")
        sim.run()
        assert [i for i, _ in a.received] == ["self"]
        assert a.arrival_times() == [us(3)]
        assert net.channels() == {}

    def test_per_pair_link_overrides_default(self):
        sim, net, a, b = make_net(
            default_link=LinkParams(delay=Constant(us(500))))
        net.set_link("a", "b", LinkParams(delay=Constant(us(10))))
        net.send("a", "b", "fast")
        sim.run()
        assert b.arrival_times() == [us(10)]

    def test_unknown_node_rejected(self):
        sim, net, a, b = make_net()
        with pytest.raises(TransportError):
            net.node("zz")

    def test_fifo_order_per_pair(self):
        sim, net, a, b = make_net(
            default_link=LinkParams(delay=Constant(us(40))))
        for i in range(5):
            net.send("a", "b", i)
        sim.run()
        assert [i for i, _ in b.received] == [0, 1, 2, 3, 4]


class TestControlDelay:
    def test_probes_and_silence_get_control_delay(self):
        sim, net, a, b = make_net(control_delay=us(10))
        net.send("a", "a", CuriosityProbe(1, 100))
        sim.run()
        net.send("a", "a", SilenceAdvance(1, 100))
        sim.run()
        assert a.arrival_times() == [us(10), us(20)]

    def test_data_local_delivery_has_local_delay_only(self):
        sim, net, a, b = make_net(control_delay=us(10), local_delay=0)
        net.send("a", "a", DataMessage(1, 0, 5, "x"))
        sim.run()
        assert a.arrival_times() == [0]

    def test_remote_control_adds_on_top_of_channel(self):
        sim, net, a, b = make_net(
            default_link=LinkParams(delay=Constant(us(40))),
            control_delay=us(10))
        net.send("a", "b", CuriosityProbe(1, 100))
        sim.run()
        assert b.arrival_times() == [us(50)]


class TestFailure:
    def test_delivery_to_dead_node_dropped(self):
        sim, net, a, b = make_net()
        b.alive = False
        net.send("a", "b", "lost")
        sim.run()
        assert b.received == []

    def test_fail_node_resets_channels(self):
        sim, net, a, b = make_net(
            default_link=LinkParams(delay=Constant(us(100))))
        net.send("a", "b", "in-flight")
        sim.run(until=us(10))
        b.alive = False
        net.fail_node("b")
        b.alive = True
        net.send("a", "b", "after")
        sim.run()
        assert [i for i, _ in b.received] == ["after"]

    def test_replacing_a_node(self):
        sim, net, a, b = make_net()
        replacement = FakeNode("b", sim)
        net.register(replacement)
        net.send("a", "b", "x")
        sim.run()
        assert replacement.received and not b.received

    def test_link_fault_accessor(self):
        sim, net, a, b = make_net()
        fault = net.link_fault("a", "b")
        fault.loss_prob = 1.0
        net.send("a", "b", "dropped?")  # reliable channel retransmits
        # With 100% loss nothing ever arrives; cap the run.
        sim.run(max_events=500)
        assert b.received == []
