"""Unit tests for canonical checkpoint serialization."""

import pytest

from repro.errors import StateError
from repro.runtime.checkpoint import checkpoint_size, dumps, loads


class TestRoundtrip:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -5, 2**62, 3.25, "text", b"\x00\xffbytes",
        [1, 2, 3], (1, 2), {"a": 1}, {}, [], (),
    ])
    def test_scalar_and_container_roundtrip(self, value):
        assert loads(dumps(value)) == value

    def test_tuple_preserved_as_tuple(self):
        assert isinstance(loads(dumps((1, 2))), tuple)
        assert isinstance(loads(dumps([1, 2])), list)

    def test_nested_structures(self):
        value = {"cells": {"m": {"k": [1, (2, 3), b"x"]}},
                 "pending": [(0, 100, "p")]}
        assert loads(dumps(value)) == value

    def test_int_keys_preserved(self):
        value = {1: "a", 2: "b"}
        restored = loads(dumps(value))
        assert restored == value
        assert all(isinstance(k, int) for k in restored)

    def test_tuple_keys_preserved(self):
        value = {(1, "x"): 5}
        assert loads(dumps(value)) == value

    def test_mixed_key_types(self):
        value = {1: "int", "1": "str"}
        assert loads(dumps(value)) == value


class TestCanonical:
    def test_dict_order_does_not_matter(self):
        a = dumps({"x": 1, "y": 2})
        b = dumps({"y": 2, "x": 1})
        assert a == b

    def test_identical_states_identical_bytes(self):
        state = {"counts": {"w1": 3, "w2": 1}, "vt": 233_000}
        assert dumps(state) == dumps(dict(state))

    def test_different_states_differ(self):
        assert dumps({"a": 1}) != dumps({"a": 2})


class TestErrors:
    def test_unserializable_value_rejected(self):
        with pytest.raises(StateError):
            dumps({"bad": object()})

    def test_unserializable_key_rejected(self):
        with pytest.raises(StateError):
            dumps({object(): 1})

    def test_set_rejected(self):
        with pytest.raises(StateError):
            dumps({1, 2, 3})


def test_checkpoint_size():
    blob = dumps({"a": 1})
    assert checkpoint_size(blob) == len(blob) > 0


class TestPlainDictFastPath:
    """Str-keyed dicts skip the tagged ``{"__t__": "d"}`` wrapper (the
    serializer hot path); tagging is reserved for ambiguous shapes."""

    def test_plain_str_dict_stays_plain_on_the_wire(self):
        blob = dumps({"b": 2, "a": 1})
        assert blob == b'{"a":1,"b":2}'  # no wrapper, keys sorted

    def test_plain_dict_is_canonical_across_insertion_order(self):
        forward = {"x": 1, "y": {"n": [1, 2]}, "z": 3}
        backward = dict(reversed(list(forward.items())))
        assert dumps(forward) == dumps(backward)
        assert loads(dumps(forward)) == forward

    def test_tag_key_collision_takes_the_wrapped_path(self):
        # A user dict that *contains* the tag key must not be mistaken
        # for serializer framing when decoded.
        tricky = {"__t__": "d", "v": [1, 2]}
        blob = dumps(tricky)
        assert loads(blob) == tricky

    def test_bool_keys_are_not_str_keys(self):
        # bool is an int subclass, and type(True) is not str: both take
        # the tagged path and survive with their types intact.
        restored = loads(dumps({True: "t"}))
        assert restored == {True: "t"}
        assert type(list(restored)[0]) is bool

    def test_legacy_tagged_str_dict_still_decodes(self):
        # Blobs written before the fast path wrapped *every* dict; the
        # decoder must keep reading them (old checkpoints, old peers).
        legacy = b'{"__t__":"d","v":[["a",1],["b",2]]}'
        assert loads(legacy) == {"a": 1, "b": 2}

    def test_nested_mixed_shapes(self):
        value = {
            "plain": {"k": (1, b"\x00\xff")},
            "tagged": {0: "int-keyed", ("t", 1): "tuple-keyed"},
        }
        assert loads(dumps(value)) == value
