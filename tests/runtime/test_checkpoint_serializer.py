"""Unit tests for canonical checkpoint serialization."""

import pytest

from repro.errors import StateError
from repro.runtime.checkpoint import checkpoint_size, dumps, loads


class TestRoundtrip:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -5, 2**62, 3.25, "text", b"\x00\xffbytes",
        [1, 2, 3], (1, 2), {"a": 1}, {}, [], (),
    ])
    def test_scalar_and_container_roundtrip(self, value):
        assert loads(dumps(value)) == value

    def test_tuple_preserved_as_tuple(self):
        assert isinstance(loads(dumps((1, 2))), tuple)
        assert isinstance(loads(dumps([1, 2])), list)

    def test_nested_structures(self):
        value = {"cells": {"m": {"k": [1, (2, 3), b"x"]}},
                 "pending": [(0, 100, "p")]}
        assert loads(dumps(value)) == value

    def test_int_keys_preserved(self):
        value = {1: "a", 2: "b"}
        restored = loads(dumps(value))
        assert restored == value
        assert all(isinstance(k, int) for k in restored)

    def test_tuple_keys_preserved(self):
        value = {(1, "x"): 5}
        assert loads(dumps(value)) == value

    def test_mixed_key_types(self):
        value = {1: "int", "1": "str"}
        assert loads(dumps(value)) == value


class TestCanonical:
    def test_dict_order_does_not_matter(self):
        a = dumps({"x": 1, "y": 2})
        b = dumps({"y": 2, "x": 1})
        assert a == b

    def test_identical_states_identical_bytes(self):
        state = {"counts": {"w1": 3, "w2": 1}, "vt": 233_000}
        assert dumps(state) == dumps(dict(state))

    def test_different_states_differ(self):
        assert dumps({"a": 1}) != dumps({"a": 2})


class TestErrors:
    def test_unserializable_value_rejected(self):
        with pytest.raises(StateError):
            dumps({"bad": object()})

    def test_unserializable_key_rejected(self):
        with pytest.raises(StateError):
            dumps({object(): 1})

    def test_set_rejected(self):
        with pytest.raises(StateError):
            dumps({1, 2, 3})


def test_checkpoint_size():
    blob = dumps({"a": 1})
    assert checkpoint_size(blob) == len(blob) > 0
