"""Tests for the determinism-verification tool."""

import pytest

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.core.component import Component, on_message
from repro.core.cost import fixed_cost
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import single_engine_placement
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, us
from repro.tools.verify_determinism import verify_determinism


def good_factory():
    app = build_wordcount_app(2)
    dep = Deployment(app, single_engine_placement(app.component_names()),
                     engine_config=EngineConfig(jitter=NormalTickJitter()),
                     control_delay=us(10), birth_of=birth_of, master_seed=3)
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


class TestCleanComponentPasses:
    def test_wordcount_is_deterministic(self):
        report = verify_determinism(good_factory, until=ms(400))
        assert report.deterministic, report.summary()
        assert report.outputs_compared > 300
        assert set(report.trials) == {"repeat", "heavy-jitter",
                                      "aggressive-silence"}
        assert "deterministic" in report.summary()


class _Cheater(Component):
    """A component that reads hidden global state — forbidden, and the
    kind of bug the verifier exists to catch (the payload depends on how
    often the process-global counter was bumped, which tracks *real*
    scheduling, not virtual time)."""

    clock = [0]  # process-global: shared across instances = cheating

    def setup(self):
        self.out = self.output_port("out")

    @on_message("input", cost=fixed_cost(us(50)))
    def handle(self, payload):
        _Cheater.clock[0] += 1
        self.out.send({"stamp": _Cheater.clock[0],
                       "birth": payload["birth"]})


def cheating_factory():
    app = Application("cheat")
    app.add_component("cheater", _Cheater)
    app.external_input("in", "cheater", "input")
    app.external_output("cheater", "out", "sink")
    dep = Deployment(app, single_engine_placement(app.component_names()),
                     engine_config=EngineConfig(jitter=NormalTickJitter()),
                     birth_of=birth_of, master_seed=3)
    dep.add_poisson_producer("in", lambda rng, i, now: {"birth": now},
                             mean_interarrival=ms(1))
    return dep


class TestCheaterCaught:
    def test_global_state_detected(self):
        _Cheater.clock[0] = 0
        report = verify_determinism(cheating_factory, until=ms(100))
        assert not report.deterministic
        assert any(d.trial == "repeat" for d in report.divergences)
        assert "NON-DETERMINISTIC" in report.summary()
        assert report.divergences[0].sink == "sink"


class TestExtraTrials:
    def test_custom_perturbation(self):
        seen = []

        def note(deployment):
            seen.append(True)

        report = verify_determinism(
            good_factory, until=ms(200),
            extra_trials={"noted": note},
        )
        assert seen == [True]
        assert "noted" in report.trials
        assert report.deterministic
