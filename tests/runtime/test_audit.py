"""Divergence-auditor tests: detect, heal, raise, defer — in a real
pipeline deployment, with untracked corruption injected mid-run.

Also covers the bounded mid-call checkpoint retry (``checkpoint.retries``
/ ``checkpoint.stalls``) that keeps a stuck component from turning the
checkpoint timer into a silent hot loop.
"""

import pytest

from repro.apps.callgraph import build_callgraph_app, request_factory
from repro.apps.pipeline import build_pipeline_app, reading_factory
from repro.apps.wordcount import birth_of
from repro.errors import DivergenceError, StateError
from repro.runtime import checkpoint as cpser
from repro.runtime.app import Deployment
from repro.runtime.audit import CORRUPTION_KEY, corrupt_component_state
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.kernel import ms, us


def build(audit="heal", audit_every=1, master_seed=7):
    """Pipeline on two engines; parser+enricher share the audited one."""
    app = build_pipeline_app(window=5)
    dep = Deployment(
        app,
        Placement({"parser": "E1", "enricher": "E1", "aggregator": "E2"}),
        engine_config=EngineConfig(checkpoint_interval=ms(10),
                                   audit=audit, audit_every=audit_every),
        master_seed=master_seed,
        birth_of=birth_of,
    )
    dep.add_poisson_producer("readings", reading_factory(),
                             mean_interarrival=ms(1))
    return dep


class TestCleanRuns:
    def test_clean_run_audits_clean(self):
        dep = build(audit="heal")
        dep.run(until=ms(200))
        auditor = dep.engine("E1").auditor
        assert auditor.checks > 5
        assert auditor.divergences == 0
        assert auditor.heals == 0
        assert dep.engine("E1").incarnation_epoch == 0
        assert dep.metrics.counter("audit.checks") == (
            dep.engine("E1").auditor.checks
            + dep.engine("E2").auditor.checks
        )

    def test_raise_mode_is_quiet_without_corruption(self):
        dep = build(audit="raise")
        dep.run(until=ms(200))
        assert dep.engine("E1").auditor.divergences == 0

    def test_audit_every_thins_the_checks(self):
        dep = build(audit="heal", audit_every=3)
        dep.run(until=ms(200))
        engine = dep.engine("E1")
        assert engine.auditor.checks >= 1
        assert engine.auditor.checks <= engine._cp_seq // 3 + 1


class TestHealMode:
    def test_untracked_corruption_detected_and_healed(self):
        dep = build(audit="heal")
        dep.run(until=ms(50))
        planted = corrupt_component_state(dep.engine("E1"), "enricher")
        assert planted == "enricher.devices"
        assert CORRUPTION_KEY in dep.runtime("enricher").component.devices
        dep.run(until=ms(200))
        auditor = dep.engine("E1").auditor
        assert auditor.divergences == 1
        assert auditor.heals == 1
        assert dep.engine("E1").incarnation_epoch == 1
        assert dep.metrics.counter("audit.heals") == 1
        assert dep.metrics.counter("audit.healed_components") == 1
        # The foreign key is gone from live state after the heal.
        assert CORRUPTION_KEY not in dep.runtime("enricher").component.devices

    def test_healed_run_is_byte_identical_to_clean_twin(self):
        clean = build(audit="heal")
        clean.run(until=ms(250))
        healed = build(audit="heal")
        healed.run(until=ms(50))
        corrupt_component_state(healed.engine("E1"), "enricher")
        healed.run(until=ms(250))
        assert healed.engine("E1").auditor.heals == 1
        assert cpser.dumps(healed.consumer("sink").payloads()) == \
            cpser.dumps(clean.consumer("sink").payloads())

    def test_heal_restarts_chain_so_replica_rebuild_matches_live(self):
        # After a heal the next capture is forced FULL, so the shipped
        # chain restarts from healed state: the replica's materialized
        # view must equal the live engine at the capture boundary.
        dep = build(audit="heal")
        dep.run(until=ms(50))
        corrupt_component_state(dep.engine("E1"), "enricher")
        dep.run(until=ms(120))
        # Step past the 10ms tick grid so no scheduled capture races the
        # manual one inside the short delivery window below.
        dep.run(until=ms(123))
        engine = dep.engine("E1")
        assert engine.auditor.heals == 1
        cp_seq = engine.capture_checkpoint()
        live = {name: rt.snapshot(incremental=False)
                for name, rt in engine.runtimes.items()}
        dep.run(until=dep.sim.now + ms(2))  # let the blob reach the replica
        replica = dep.replicas["E1"]
        assert replica.last_cp_seq == cp_seq
        assert cpser.dumps(replica.materialize()) == cpser.dumps(live)

    def test_value_cell_fallback_corruption_also_healed(self):
        # A flipped ValueCell is only *detectable* while the cell is
        # quiescent: once the component writes it again, the corruption
        # becomes tracked computation and ships in the next delta (the
        # documented detection limit).  So: drain traffic, then corrupt.
        app = build_pipeline_app(window=5)
        dep = Deployment(
            app,
            Placement({"parser": "E1", "enricher": "E1",
                       "aggregator": "E2"}),
            engine_config=EngineConfig(checkpoint_interval=ms(10),
                                       audit="heal"),
            master_seed=7, birth_of=birth_of,
        )
        dep.add_poisson_producer("readings", reading_factory(),
                                 mean_interarrival=ms(1), max_messages=40)
        dep.run(until=ms(100))  # workload finished and drained
        planted = corrupt_component_state(dep.engine("E1"), "parser")
        assert planted.startswith("parser.")
        dep.run(until=ms(200))
        assert dep.engine("E1").auditor.heals == 1


class TestRaiseMode:
    def test_corruption_raises_structured_divergence_error(self):
        dep = build(audit="raise")
        dep.run(until=ms(50))
        corrupt_component_state(dep.engine("E1"), "enricher")
        with pytest.raises(DivergenceError) as exc_info:
            dep.run(until=ms(200))
        err = exc_info.value
        assert err.engine_id == "E1"
        assert err.components == ("enricher",)
        assert err.cp_seq >= 0
        assert dep.engine("E1").auditor.divergences == 1
        assert dep.engine("E1").auditor.heals == 0


class TestDeferredHeal:
    def test_heal_deferred_while_handler_in_flight(self):
        dep = build(audit="heal")
        dep.run(until=ms(50))
        engine = dep.engine("E1")
        corrupt_component_state(engine, "enricher")
        import types

        from repro.core.message import DataMessage

        rt = dep.runtime("parser")
        # A busy single-segment handler: busy_info set, mid_call False.
        wid = next(iter(rt.in_wires))
        rt._busy = types.SimpleNamespace(
            generator=None, awaiting_reply=False,
            message=DataMessage(wid, 999_999, dep.sim.now, {"x": 1}),
        )
        try:
            assert engine.auditor.audit_once() == "deferred"
        finally:
            rt._busy = None
        assert engine.auditor.deferred == 1
        assert engine.auditor.heals == 0
        # Detection stood; once the handler clears, the heal lands.
        assert engine.auditor.audit_once() == "healed"
        assert engine.auditor.heals == 1


class TestCorruptComponentState:
    def test_unknown_component_raises(self):
        dep = build(audit="heal")
        dep.run(until=ms(20))
        with pytest.raises(StateError):
            corrupt_component_state(dep.engine("E1"), "ghost")

    def test_counts_corruptions_metric(self):
        dep = build(audit="heal")
        dep.run(until=ms(20))
        corrupt_component_state(dep.engine("E1"), "enricher")
        assert dep.metrics.counter("chaos.corruptions") == 1


class TestCheckpointRetryCap:
    def test_stuck_mid_call_counts_retries_then_stalls(self):
        # A 100ms round trip (2 x 50ms links) pins the frontend mid-call
        # across many 1ms checkpoint intervals: retries must be counted
        # and capped into stalls, never a silent hot loop.
        app = build_callgraph_app()
        dep = Deployment(
            app, Placement({"frontend": "E1", "directory": "E2"}),
            engine_config=EngineConfig(checkpoint_interval=ms(1),
                                       checkpoint_max_retries=4),
            default_link=LinkParams(delay=Constant(ms(50))),
            control_delay=us(5), birth_of=birth_of,
        )
        dep.start()
        dep.ingress("requests").offer({"key": "k", "birth": 0})
        dep.run(until=ms(60))
        assert dep.runtime("frontend").mid_call
        assert dep.metrics.counter("checkpoint.retries") >= 4
        assert dep.metrics.counter("checkpoint.stalls") >= 1
        # Once the call completes, checkpoints flow again.
        dep.run(until=ms(250))
        assert not dep.runtime("frontend").mid_call
        assert dep.metrics.counter("checkpoints_captured") > 0
