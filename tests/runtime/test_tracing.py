"""Tests for execution tracing and hold diagnosis."""

import pytest

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.core.component import Component, on_message
from repro.core.cost import fixed_cost
from repro.core.message import DataMessage, SilenceAdvance
from repro.core.silence_policy import LazySilencePolicy
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import single_engine_placement
from repro.runtime.tracing import (
    ExecutionTracer,
    TraceEvent,
    explain_hold,
    render_hold_report,
)
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, us

from tests.helpers import Hub, wire


def traced_deployment(seed=0):
    app = build_wordcount_app(2)
    dep = Deployment(app, single_engine_placement(app.component_names()),
                     engine_config=EngineConfig(jitter=NormalTickJitter()),
                     control_delay=us(10), birth_of=birth_of,
                     master_seed=seed)
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


class TestExecutionTracer:
    def test_records_dispatch_and_complete(self):
        dep = traced_deployment()
        tracer = ExecutionTracer()
        tracer.attach(dep)
        dep.run(until=ms(30))
        dispatches = tracer.events(kind="dispatch")
        completes = tracer.events(kind="complete")
        assert len(dispatches) > 20
        assert len(completes) > 20
        assert {e.component for e in dispatches} >= {"sender1", "merger"}

    def test_filtering(self):
        dep = traced_deployment()
        tracer = ExecutionTracer()
        tracer.attach(dep)
        dep.run(until=ms(30))
        merger_only = tracer.events(component="merger")
        assert merger_only
        assert all(e.component == "merger" for e in merger_only)

    def test_capacity_bound(self):
        tracer = ExecutionTracer(capacity=10)
        for i in range(25):
            tracer.record(TraceEvent(i, "c", "dispatch"))
        assert len(tracer) == 10
        assert tracer.events()[0].real_time == 15

    def test_dump_renders(self):
        dep = traced_deployment()
        tracer = ExecutionTracer()
        tracer.attach(dep)
        dep.run(until=ms(10))
        text = tracer.dump(limit=5)
        assert "dispatch" in text or "complete" in text

    def test_tracing_does_not_perturb_execution(self):
        plain = traced_deployment()
        plain.run(until=ms(200))
        traced = traced_deployment()
        ExecutionTracer().attach(traced)
        traced.run(until=ms(200))
        want = [(s, p["total"]) for s, _v, p, _t in
                plain.consumer("sink").effective_outputs]
        got = [(s, p["total"]) for s, _v, p, _t in
               traced.consumer("sink").effective_outputs]
        assert got == want

    def test_monotonic_index_assigned_on_record(self):
        tracer = ExecutionTracer(capacity=10)
        for i in range(25):
            tracer.record(TraceEvent(i, "c", "dispatch"))
        indices = [e.index for e in tracer.events()]
        # The ring dropped the first 15 events, but indices keep
        # counting: post-hoc order survives eviction.
        assert indices == list(range(15, 25))

    def test_dump_load_roundtrip(self, tmp_path):
        dep = traced_deployment()
        tracer = ExecutionTracer()
        tracer.attach(dep)
        dep.run(until=ms(20))
        path = tmp_path / "trace.bin"
        tracer.dump(path=str(path))
        loaded = ExecutionTracer.load(str(path))
        assert loaded.capacity == tracer.capacity
        assert loaded.events() == tracer.events()
        # A reloaded tracer keeps numbering where the original left off.
        loaded.record(TraceEvent(0, "x", "dispatch"))
        assert loaded.events()[-1].index == tracer._next_index

    def test_load_rejects_unknown_format(self, tmp_path):
        from repro.errors import TartError
        from repro.runtime import checkpoint as cpser

        path = tmp_path / "bad.bin"
        path.write_bytes(cpser.dumps({"format": 99, "capacity": 1,
                                      "next_index": 0, "events": []}))
        with pytest.raises(TartError):
            ExecutionTracer.load(str(path))

    def test_holds_recorded_under_lazy_policy(self):
        app = build_wordcount_app(2)
        dep = Deployment(app,
                         single_engine_placement(app.component_names()),
                         engine_config=EngineConfig(
                             jitter=NormalTickJitter(),
                             policy_factory=LazySilencePolicy),
                         control_delay=us(10), birth_of=birth_of)
        tracer = ExecutionTracer()
        tracer.attach(dep)
        factory = sentence_factory()
        for i in (1, 2):
            dep.add_poisson_producer(f"ext{i}", factory,
                                     mean_interarrival=ms(1))
        dep.run(until=ms(100))
        assert tracer.events(component="merger", kind="hold")


class Recorder(Component):
    def setup(self):
        self.seen = self.state.value("seen", [])

    @on_message("input", cost=fixed_cost(us(100)))
    def handle(self, payload):
        self.seen.set(self.seen.get() + [payload])


class TestExplainHold:
    def _held_merger(self):
        hub = Hub()
        merger = hub.add(Recorder("m"), policy=LazySilencePolicy())
        hub.connect(wire(1, "data", dst="m"), None, "m")
        hub.connect(wire(2, "data", dst="m"), None, "m")
        return hub, merger

    def test_idle_component(self):
        hub, merger = self._held_merger()
        report = explain_hold(merger)
        assert not report["holding"]
        assert "no pending" in report["reason"]
        assert "idle" in render_hold_report(report) or "no pending" in \
            render_hold_report(report)

    def test_holding_identifies_blockers(self):
        hub, merger = self._held_merger()
        merger.on_data(DataMessage(1, 0, us(100), "x"))
        report = explain_hold(merger)
        assert report["holding"]
        assert report["candidate"]["wire"] == 1
        (blocker,) = report["blocking_wires"]
        assert blocker["wire"] == 2
        assert blocker["shortfall"] == us(100) + 1
        text = render_hold_report(report)
        assert "HOLDING" in text and "wire 2" in text

    def test_dispatchable_candidate(self):
        hub, merger = self._held_merger()
        merger.on_silence(SilenceAdvance(2, us(1_000)))
        merger.on_data(DataMessage(1, 0, us(100), "x"))
        hub.run()  # processes
        merger.on_data(DataMessage(1, 1, us(2_000), "held-again?"))
        report = explain_hold(merger)
        # Wire 2's horizon (1ms) is below 2ms: held again.
        assert report["holding"]

    def test_busy_component_reported(self):
        hub, merger = self._held_merger()
        merger.on_silence(SilenceAdvance(2, us(1_000)))
        merger.on_data(DataMessage(1, 0, us(100), "x"))
        assert merger.busy_info is not None
        report = explain_hold(merger)
        assert report["busy"]
        assert "executing" in render_hold_report(report)

    def test_candidate_carries_repcl_when_tracer_attached(self):
        from repro.vt.repcl import ReplayClockTracer

        hub, merger = self._held_merger()
        ReplayClockTracer().attach_runtime(merger, "e0")
        merger.on_data(DataMessage(1, 0, us(100), "x"))
        report = explain_hold(merger)
        assert report["holding"]
        assert set(report["candidate"]["repcl"]) == {"e", "o", "c"}
        text = render_hold_report(report)
        assert "candidate repcl" in text

    def test_json_render_is_machine_readable(self):
        import json

        hub, merger = self._held_merger()
        merger.on_data(DataMessage(1, 0, us(100), "x"))
        report = explain_hold(merger)
        doc = json.loads(render_hold_report(report, as_json=True))
        assert doc["holding"] is True
        assert doc["candidate"]["wire"] == 1
        assert doc["blocking_wires"][0]["wire"] == 2
